"""The wormhole (WH) predictor.

Albericio et al. (MICRO 2014) observed that some branches encapsulated in
multidimensional loops are correlated with the outcomes of the *same*
branch in neighbouring inner-loop iterations of the *previous outer-loop
iteration*.  The wormhole predictor tracks a handful of such branches: each
entry records a very long local history of its branch and, knowing the
inner loop's constant trip count ``Ni`` (supplied by the loop predictor),
retrieves ``Out[N-1][M]`` and ``Out[N-1][M-1]`` as bits ``Ni-1`` and ``Ni``
of that history.  A tiny array of saturating counters indexed by those bits
provides the prediction, which overrides the main predictor only at high
confidence (Section 2.2.2, Figure 2 of the paper).

The paper uses WH as the prior-art comparison for the IMLI components: WH
captures the same correlation as IMLI-OH but needs per-entry long local
histories (unmanageable speculatively) and only works for loops with a
constant trip count that are executed on every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.bits import mask
from repro.predictors.loop import LoopPredictor
from repro.trace.branch import BranchRecord

__all__ = ["WormholePredictorConfig", "WormholePredictor"]


@dataclass(frozen=True)
class WormholePredictorConfig:
    """Geometry of the wormhole side predictor."""

    entries: int = 7
    local_history_bits: int = 128
    counter_bits: int = 5
    confidence_threshold: int = 5
    usefulness_bits: int = 4


class _WormholeEntry:
    """One tracked branch: tag, long local history, correlation counters."""

    __slots__ = ("pc", "history", "history_length", "counters", "usefulness")

    def __init__(self, pc: int, counter_count: int) -> None:
        self.pc = pc
        self.history = 0
        self.history_length = 0
        self.counters = [0] * counter_count
        self.usefulness = 0


class WormholePredictor:
    """Side predictor exploiting outer-iteration correlation in loop nests.

    Parameters
    ----------
    loop_predictor:
        The loop predictor used to obtain the (constant) trip count of the
        inner-most loop currently executing.  Following Section 3.3 of the
        paper, only the trip count is consumed; the loop predictor's own
        direction prediction is not.
    config:
        Structure sizes.
    """

    def __init__(
        self,
        loop_predictor: LoopPredictor,
        config: Optional[WormholePredictorConfig] = None,
    ) -> None:
        self.config = config or WormholePredictorConfig()
        self.loop_predictor = loop_predictor
        self.entries: Dict[int, _WormholeEntry] = {}
        self._counter_max = (1 << (self.config.counter_bits - 1)) - 1
        self._counter_min = -(1 << (self.config.counter_bits - 1))
        self._usefulness_max = (1 << self.config.usefulness_bits) - 1
        # PC of the most recently seen backward conditional branch: the
        # back-edge of the loop currently executing, used to query the loop
        # predictor for the trip count of the loop enclosing a body branch.
        self._current_loop_pc: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def _counter_index(self, entry: _WormholeEntry, trip_count: int) -> Optional[int]:
        """Index of the correlation counter for the current prediction.

        Bits ``trip_count - 1`` and ``trip_count`` of the entry's local
        history hold ``Out[N-1][M]`` and ``Out[N-1][M-1]`` respectively (bit
        0 is the most recent outcome).
        """
        if trip_count < 1:
            return None
        if entry.history_length < trip_count + 1:
            return None
        if trip_count + 1 > self.config.local_history_bits:
            return None
        same_iteration = (entry.history >> (trip_count - 1)) & 1
        previous_iteration = (entry.history >> trip_count) & 1
        return (same_iteration << 1) | previous_iteration

    def predict(self, record: BranchRecord) -> Optional[bool]:
        """Return a high-confidence wormhole prediction or ``None``."""
        if not record.is_conditional or record.is_backward:
            return None
        entry = self.entries.get(record.pc)
        if entry is None or self._current_loop_pc is None:
            return None
        trip_count = self.loop_predictor.trip_count_for(self._current_loop_pc)
        if trip_count is None:
            return None
        counter_index = self._counter_index(entry, trip_count)
        if counter_index is None:
            return None
        counter = entry.counters[counter_index]
        if abs(2 * counter + 1) < 2 * self.config.confidence_threshold:
            return None
        return counter >= 0

    # ------------------------------------------------------------------ #
    # Update
    # ------------------------------------------------------------------ #

    def update(self, record: BranchRecord, main_mispredicted: bool) -> None:
        """Observe a resolved conditional branch.

        ``main_mispredicted`` tells the predictor whether the main (non-WH)
        prediction for this branch was wrong, which is the allocation
        trigger of the original design.
        """
        if not record.is_conditional:
            return
        if record.is_backward:
            # Track the inner-most loop currently executing.
            self._current_loop_pc = record.pc
            return

        entry = self.entries.get(record.pc)
        trip_count = (
            self.loop_predictor.trip_count_for(self._current_loop_pc)
            if self._current_loop_pc is not None
            else None
        )

        if entry is None:
            if main_mispredicted and trip_count is not None:
                self._allocate(record.pc)
                entry = self.entries.get(record.pc)
            if entry is None:
                return

        if trip_count is not None:
            counter_index = self._counter_index(entry, trip_count)
            if counter_index is not None:
                self._train_counter(entry, counter_index, record.taken)

        # Record the outcome in the entry's long local history.
        entry.history = ((entry.history << 1) | int(record.taken)) & mask(
            self.config.local_history_bits
        )
        if entry.history_length < self.config.local_history_bits:
            entry.history_length += 1

    def _train_counter(self, entry: _WormholeEntry, index: int, taken: bool) -> None:
        value = entry.counters[index]
        predicted = value >= 0
        if predicted == taken:
            if entry.usefulness < self._usefulness_max:
                entry.usefulness += 1
        elif entry.usefulness > 0:
            entry.usefulness -= 1
        if taken:
            if value < self._counter_max:
                entry.counters[index] = value + 1
        elif value > self._counter_min:
            entry.counters[index] = value - 1

    def _allocate(self, pc: int) -> None:
        if len(self.entries) < self.config.entries:
            self.entries[pc] = _WormholeEntry(pc, counter_count=4)
            return
        # Replace the least useful entry, but only if it has decayed to zero
        # usefulness; otherwise decay everyone (prevents thrashing).
        victim_pc = min(self.entries, key=lambda key: self.entries[key].usefulness)
        victim = self.entries[victim_pc]
        if victim.usefulness == 0:
            del self.entries[victim_pc]
            self.entries[pc] = _WormholeEntry(pc, counter_count=4)
        else:
            for entry in self.entries.values():
                if entry.usefulness > 0:
                    entry.usefulness -= 1

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        cfg = self.config
        entry_bits = (
            64  # full tag / PC
            + cfg.local_history_bits
            + 4 * cfg.counter_bits
            + cfg.usefulness_bits
        )
        return cfg.entries * entry_bits
