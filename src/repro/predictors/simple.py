"""Simple baseline predictors: static, bimodal, gshare and perceptron.

These predictors predate the TAGE/GEHL designs the paper builds on.  They
serve three purposes in the library: sanity baselines for the benchmark
harness, reference points in the examples, and simple building blocks whose
behaviour the test suite can verify analytically.
"""

from __future__ import annotations

from typing import List

from repro.common.bits import hash_pc, log2_exact, mask
from repro.common.counters import UnsignedCounterArray
from repro.common.history import GlobalHistory
from repro.predictors.base import BranchPredictor
from repro.trace.branch import CONDITIONAL_CODE, BranchRecord

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "PerceptronPredictor",
    "StaticBackwardTakenPredictor",
]


class AlwaysTakenPredictor(BranchPredictor):
    """Predict taken for every branch (the weakest possible baseline)."""

    name = "always-taken"

    def predict(self, record: BranchRecord) -> bool:
        return True

    def update(self, record: BranchRecord, prediction: bool) -> None:
        pass

    def storage_bits(self) -> int:
        return 0


class StaticBackwardTakenPredictor(BranchPredictor):
    """Static BTFN heuristic: backward branches taken, forward not taken."""

    name = "static-btfn"

    def predict(self, record: BranchRecord) -> bool:
        return record.is_backward

    def update(self, record: BranchRecord, prediction: bool) -> None:
        pass

    def storage_bits(self) -> int:
        return 0


class BimodalPredictor(BranchPredictor):
    """Per-PC table of 2-bit saturating counters (Smith, 1981)."""

    name = "bimodal"

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        self.index_bits = log2_exact(entries)
        self.table = UnsignedCounterArray(entries, counter_bits)

    def _index(self, pc: int) -> int:
        return hash_pc(pc, self.index_bits)

    def predict(self, record: BranchRecord) -> bool:
        return self.table.predict(self._index(record.pc))

    def update(self, record: BranchRecord, prediction: bool) -> None:
        self.table.update(self._index(record.pc), record.taken)

    def predict_update(
        self, pc: int, target: int, taken: bool, kind: int = 0, gap: int = 0
    ) -> bool:
        """Combined predict-and-update fast path (hash the PC only once)."""
        table = self.table
        width = self.index_bits
        value = pc ^ (pc >> width) ^ (pc >> (2 * width))
        index = value & ((1 << width) - 1)
        values = table.values
        counter = values[index]
        prediction = counter >= table.midpoint
        if taken:
            if counter < table.maximum:
                values[index] = counter + 1
        elif counter > 0:
            values[index] = counter - 1
        return prediction

    def observe_pc(self, pc: int) -> None:
        pass

    def predict_update_block(self, pcs, targets, takens, kinds, gaps) -> int:
        """Column-block fast path: consume a whole block, return mispredicts.

        The bimodal step is stateless across branches apart from its own
        counter table, so the engine's per-branch dispatch (kind test,
        bound-method call) can be folded into one tight loop over the
        columns here.  Non-conditional rows are skipped outright --
        ``observe_pc`` is a no-op for this predictor.  Bit-identical to
        calling :meth:`predict_update` per conditional row by inspection:
        the per-row arithmetic is the same statements.
        """
        table = self.table
        width = self.index_bits
        index_mask = (1 << width) - 1
        values = table.values
        midpoint = table.midpoint
        maximum = table.maximum
        shift2 = 2 * width
        mispredictions = 0
        for pc, taken, kind in zip(pcs, takens, kinds):
            if kind != CONDITIONAL_CODE:
                continue
            index = (pc ^ (pc >> width) ^ (pc >> shift2)) & index_mask
            counter = values[index]
            if (counter >= midpoint) != taken:
                mispredictions += 1
            if taken:
                if counter < maximum:
                    values[index] = counter + 1
            elif counter > 0:
                values[index] = counter - 1
        return mispredictions

    def storage_bits(self) -> int:
        return self.table.storage_bits()


class GSharePredictor(BranchPredictor):
    """Global-history predictor indexing a counter table with PC xor history."""

    name = "gshare"

    def __init__(
        self, entries: int = 4096, history_length: int = 12, counter_bits: int = 2
    ) -> None:
        self.index_bits = log2_exact(entries)
        if history_length <= 0:
            raise ValueError(f"history length must be positive, got {history_length}")
        self.history_length = history_length
        self.table = UnsignedCounterArray(entries, counter_bits)
        self.history = GlobalHistory(history_length)

    def _index(self, pc: int) -> int:
        history = self.history.value(self.history_length) & mask(self.index_bits)
        return hash_pc(pc, self.index_bits) ^ history

    def predict(self, record: BranchRecord) -> bool:
        return self.table.predict(self._index(record.pc))

    def update(self, record: BranchRecord, prediction: bool) -> None:
        self.table.update(self._index(record.pc), record.taken)
        self.history.push(record.taken)

    def storage_bits(self) -> int:
        return self.table.storage_bits() + self.history_length


class PerceptronPredictor(BranchPredictor):
    """Global-history perceptron predictor (Jimenez and Lin, 2001).

    Each branch (hashed PC) owns a weight vector over the last
    ``history_length`` global outcomes plus a bias weight; the prediction is
    the sign of the dot product and training uses the classic
    threshold-gated perceptron rule.
    """

    name = "perceptron"

    def __init__(
        self,
        entries: int = 256,
        history_length: int = 24,
        weight_bits: int = 8,
    ) -> None:
        self.index_bits = log2_exact(entries)
        if history_length <= 0:
            raise ValueError(f"history length must be positive, got {history_length}")
        self.history_length = history_length
        self.weight_bits = weight_bits
        self.weight_max = (1 << (weight_bits - 1)) - 1
        self.weight_min = -(1 << (weight_bits - 1))
        # weights[i] is the weight vector of entry i: bias followed by one
        # weight per history position.
        self.weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(entries)
        ]
        self.history = GlobalHistory(history_length)
        # Training threshold from the original paper: 1.93 * h + 14.
        self.threshold = int(1.93 * history_length + 14)
        self._last_sum = 0
        self._last_index = 0

    def _dot_product(self, pc: int) -> int:
        weights = self.weights[hash_pc(pc, self.index_bits)]
        total = weights[0]
        history_bits = self.history.bits
        for position in range(self.history_length):
            direction = 1 if (history_bits >> position) & 1 else -1
            total += weights[position + 1] * direction
        return total

    def predict(self, record: BranchRecord) -> bool:
        self._last_index = hash_pc(record.pc, self.index_bits)
        self._last_sum = self._dot_product(record.pc)
        return self._last_sum >= 0

    def update(self, record: BranchRecord, prediction: bool) -> None:
        outcome = 1 if record.taken else -1
        if prediction != record.taken or abs(self._last_sum) <= self.threshold:
            weights = self.weights[self._last_index]
            weights[0] = self._clip(weights[0] + outcome)
            history_bits = self.history.bits
            for position in range(self.history_length):
                direction = 1 if (history_bits >> position) & 1 else -1
                weights[position + 1] = self._clip(
                    weights[position + 1] + outcome * direction
                )
        self.history.push(record.taken)

    def _clip(self, value: int) -> int:
        return min(max(value, self.weight_min), self.weight_max)

    def storage_bits(self) -> int:
        per_entry = (self.history_length + 1) * self.weight_bits
        return len(self.weights) * per_entry + self.history_length
