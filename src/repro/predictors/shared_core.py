"""Shared-core execution of a batch of composite predictors.

Most sweep grids over the paper's configurations vary only corrector and
sidecar knobs (``oh_update_delay``, IMLI components, loop/wormhole) around
an identical TAGE or GEHL core.  PR 5's batched engine already traverses
the trace once per batch, but still ran every member's full
``predict_update`` per branch -- and on TAGE-class grids the core is ~98%
of that work.

This module executes such a batch with **one core step and N head steps
per branch**:

* ``tage-gsc`` groups share one :class:`~repro.core.component.SharedState`
  and one :class:`~repro.predictors.tage.TAGEEngine`; each member becomes
  a head consisting of a fresh
  :class:`~repro.predictors.statistical_corrector.StatisticalCorrector`
  (with that member's extra components) plus its loop/wormhole sidecars.
* ``gehl`` groups share one :class:`SharedState`; each member's whole
  adder tree is its head.  Sharing the state still wins: the folded
  history registers are shape-deduplicated pure functions of the global
  history, so their per-branch maintenance is paid once per group instead
  of once per member.

Results are bit-identical to solo execution *by construction*, not by
tolerance:

* the shared state and the TAGE engine evolve as pure functions of the
  branch stream -- ``SharedState.update_conditional_fields`` and
  ``TAGEEngine.train_fields`` never read corrector or sidecar state, and
  the TAGE allocation RNG stream does not depend on the final prediction;
* heads only *read* the shared state, which is frozen while the heads of
  one branch run, and write only their own tables;
* ``TAGEEngine.train_fields`` and ``StatisticalCorrector.train_fields``
  touch disjoint state, so running the N corrector trainings before the
  single TAGE training is the same as interleaving them per member;
* the loop/wormhole sidecars never touch the shared state at all (they
  consume only branch fields and their own tables).

Grouping is planned by :func:`plan_groups` from the
:class:`~repro.predictors.composites.SharedCoreInfo` attached by
:func:`repro.predictors.composites.build`.  Only *pristine* (never
stepped) predictors are grouped -- the group builds fresh cores and
heads, so a trained member's state would be silently discarded otherwise.
Group members' original instances are left untouched (and therefore
untrained) by design; the simulation results come from the group's own
cores and heads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import (
    SharedCoreInfo,
    _MutableBranchView,
    _head_components,
    _imli_hashed_global,
    _local_table,
    _sidecar_parts,
)
from repro.predictors.adder import AdderTree
from repro.predictors.components import BiasComponent, GlobalHistoryComponent
from repro.predictors.statistical_corrector import (
    CorrectorContext,
    StatisticalCorrector,
)
from repro.predictors.tage import TAGEEngine, TAGEPrediction
from repro.predictors.tage_gsc import TAGEGSCConfig
from repro.core.component import NeuralComponent, SharedState

__all__ = ["plan_groups", "is_pristine"]


def is_pristine(predictor: BranchPredictor) -> bool:
    """True when ``predictor`` has observably never stepped.

    Checked on the shared state of the main predictor: the global history
    length increments on every conditional update (until capacity) and the
    path history accumulates on every observed PC, so all-zero history
    state plus an unset TAGE prediction proves the instance has seen no
    branch.  Predictors without a shared state are never pristine for
    grouping purposes.
    """
    main = getattr(predictor, "main", predictor)
    state = getattr(main, "state", None)
    if state is None:
        return False
    try:
        return (
            state.global_history.length == 0
            and state.global_history.bits == 0
            and state.path_history.bits == 0
            and state.imli.count == 0
            and state.tage_prediction is None
        )
    except AttributeError:
        return False


class _Head:
    """One batch member's private (non-core) machinery over a shared state."""

    __slots__ = ("corrector", "adder", "scratch", "loop", "wormhole", "use_loop", "view")

    def __init__(self) -> None:
        self.corrector: Optional[StatisticalCorrector] = None
        self.adder: Optional[AdderTree] = None
        self.scratch = CorrectorContext()
        self.loop = None
        self.wormhole = None
        self.use_loop = False
        self.view = _MutableBranchView()


def _attach_sidecars(head: _Head, info: SharedCoreInfo) -> None:
    parts = _sidecar_parts(info.options, info.sizes)
    if parts is None:
        return
    head.loop, head.wormhole, head.use_loop = parts


def _sidecar_step(
    head: _Head, pc: int, target: int, taken: bool, gap: int,
    main_prediction: bool,
) -> bool:
    """Run a head's loop/wormhole sidecars; mirrors the solo fast path.

    Keeps the reference order (loop predict, wormhole predict, loop
    update, wormhole update) and the override policy of
    :class:`~repro.predictors.composites.SidecarPredictor`.
    """
    prediction = main_prediction
    view = head.view
    view.pc = pc
    view.target = target
    view.taken = taken
    view.instruction_gap = gap
    loop = head.loop
    wormhole = head.wormhole
    if loop is not None and head.use_loop:
        loop_prediction = loop.predict(view)
        if loop_prediction is not None:
            prediction = loop_prediction
    if wormhole is not None:
        wormhole_prediction = wormhole.predict(view)
        if wormhole_prediction is not None:
            prediction = wormhole_prediction
    if loop is not None:
        loop.update(view)
    if wormhole is not None:
        wormhole.update(view, main_mispredicted=main_prediction != taken)
    return prediction


def _plan_shared_indices(heads, components_of):
    """Plan cross-head sharing of global-history table indices.

    Over one shared state, every exact
    :class:`~repro.predictors.components.GlobalHistoryComponent` with the
    same geometry computes identical table indices for every branch (the
    folded registers are deduplicated on the state), so the group hashes
    them once per branch.  Returns ``(index_fns, assignments)``:
    ``index_fns[gid]`` is a ``compute_indices(pc, state)`` callable per
    distinct geometry, and ``assignments[i]`` is ``(component, gid)`` for
    head ``i`` -- ``(None, -1)`` when the head has no shareable component.
    """
    index_fns = []
    slot_by_geometry: Dict[tuple, int] = {}
    assignments = []
    for head in heads:
        found = None
        gid = -1
        for component in components_of(head):
            # Exact type only: subclasses mix extra fields into the index.
            if type(component) is GlobalHistoryComponent:
                geometry = component.shared_index_geometry()
                slot = slot_by_geometry.get(geometry)
                if slot is None:
                    slot = len(index_fns)
                    slot_by_geometry[geometry] = slot
                    index_fns.append(component.compute_indices)
                found = component
                gid = slot
                break
        assignments.append((found, gid))
    return index_fns, assignments


class _TageGscGroup:
    """One shared TAGE core fanned into N statistical-corrector heads."""

    kind = "tage-gsc"

    def __init__(self, members: Sequence[Tuple[int, SharedCoreInfo]]) -> None:
        self.indices = [index for index, _ in members]
        self.counts = [0] * len(members)
        first = members[0][1]
        config = TAGEGSCConfig(tage=first.sizes.tage, corrector=first.sizes.corrector)
        history_capacity = max(
            config.history_capacity, config.tage.max_history + 1
        )
        self.state = SharedState(
            history_capacity=history_capacity,
            path_capacity=config.path_capacity,
            imli_counter_bits=config.imli_counter_bits,
            local_history_table=_local_table(first.options, first.sizes),
        )
        self.tage = TAGEEngine(self.state, config.tage)
        num_tables = config.tage.num_tables
        self._tage_scratch = TAGEPrediction(
            indices=[0] * num_tables, tags=[0] * num_tables
        )
        self.heads: List[_Head] = []
        for _, info in members:
            head = _Head()
            head.corrector = StatisticalCorrector(
                self.state,
                info.sizes.corrector,
                extra_components=_head_components(info.options, info.sizes),
            )
            if info.options.imli_global_tables:
                head.corrector.adder.components.append(
                    _imli_hashed_global(info.options, info.sizes, self.state)
                )
            _attach_sidecars(head, info)
            self.heads.append(head)
        # Per-branch work is dominated by attribute chains and repeated
        # hashing, so the head loop runs over prebound tuples, and the
        # global-history table indices -- identical for every head of one
        # geometry over the shared state -- are hashed once per branch by
        # ``_plan_shared_indices`` and fanned into the heads.
        self._index_fns, assignments = _plan_shared_indices(
            self.heads, lambda head: head.corrector.adder.components
        )
        self._head_steps = [
            (
                head.corrector.predict_into_shared,
                head.corrector.predict_into,
                head.corrector.train_fields,
                head.scratch,
                head if (head.loop is not None or head.wormhole is not None) else None,
                comp,
                gid,
            )
            for head, (comp, gid) in zip(self.heads, assignments)
        ]
        self._tage_predict = self.tage.predict_into
        self._tage_train = self.tage.train_fields
        self._state_update = self.state.update_conditional_fields

    def step_count(self, pc: int, target: int, taken: bool, gap: int) -> None:
        """Hot-lane step: run the branch, bump per-head mispredict counts."""
        state = self.state
        tage_ctx = self._tage_predict(pc, self._tage_scratch)
        tage_prediction = tage_ctx.prediction
        state.tage_prediction = tage_prediction
        shared = [fn(pc, state) for fn in self._index_fns]
        counts = self.counts
        slot = 0
        for predict_shared, predict, train_fields, scratch, sidecar, comp, gid in (
            self._head_steps
        ):
            if comp is not None:
                sc_ctx = predict_shared(pc, tage_prediction, scratch, comp, shared[gid])
            else:
                sc_ctx = predict(pc, tage_prediction, scratch)
            prediction = sc_ctx.final_prediction
            train_fields(pc, target, taken, sc_ctx)
            if sidecar is not None:
                prediction = _sidecar_step(sidecar, pc, target, taken, gap, prediction)
            counts[slot] += prediction != taken
            slot += 1
        self._tage_train(pc, taken, tage_ctx)
        self._state_update(pc, target, taken)

    def step_list(self, pc: int, target: int, taken: bool, gap: int) -> List[bool]:
        """General step: run the branch, return per-head final predictions."""
        state = self.state
        tage_ctx = self._tage_predict(pc, self._tage_scratch)
        tage_prediction = tage_ctx.prediction
        state.tage_prediction = tage_prediction
        shared = [fn(pc, state) for fn in self._index_fns]
        predictions: List[bool] = []
        for predict_shared, predict, train_fields, scratch, sidecar, comp, gid in (
            self._head_steps
        ):
            if comp is not None:
                sc_ctx = predict_shared(pc, tage_prediction, scratch, comp, shared[gid])
            else:
                sc_ctx = predict(pc, tage_prediction, scratch)
            prediction = sc_ctx.final_prediction
            train_fields(pc, target, taken, sc_ctx)
            if sidecar is not None:
                prediction = _sidecar_step(sidecar, pc, target, taken, gap, prediction)
            predictions.append(prediction)
        self._tage_train(pc, taken, tage_ctx)
        self._state_update(pc, target, taken)
        return predictions

    def observe(self, pc: int) -> None:
        """Non-conditional branch: advance the shared path history once."""
        self.state.observe_pc(pc)


class _GehlGroup:
    """One shared fetch state fanned into N GEHL adder-tree heads."""

    kind = "gehl"

    def __init__(self, members: Sequence[Tuple[int, SharedCoreInfo]]) -> None:
        self.indices = [index for index, _ in members]
        self.counts = [0] * len(members)
        first = members[0][1]
        gehl = first.sizes.gehl
        self.state = SharedState(
            history_capacity=gehl.history_capacity,
            path_capacity=gehl.path_capacity,
            imli_counter_bits=gehl.imli_counter_bits,
            local_history_table=_local_table(first.options, first.sizes),
        )
        self.heads: List[_Head] = []
        for _, info in members:
            sizes = info.sizes.gehl
            components: List[NeuralComponent] = [
                BiasComponent(
                    entries=sizes.bias_entries,
                    counter_bits=sizes.counter_bits,
                    use_tage_prediction=False,
                ),
                GlobalHistoryComponent(
                    state=self.state,
                    history_lengths=sizes.history_lengths(),
                    entries=sizes.table_entries,
                    counter_bits=sizes.counter_bits,
                ),
            ]
            components.extend(_head_components(info.options, info.sizes))
            if info.options.imli_global_tables:
                components.append(
                    _imli_hashed_global(info.options, info.sizes, self.state)
                )
            head = _Head()
            head.adder = AdderTree(
                components, initial_threshold=sizes.initial_threshold
            )
            _attach_sidecars(head, info)
            self.heads.append(head)
        self._index_fns, assignments = _plan_shared_indices(
            self.heads, lambda head: head.adder.components
        )
        self._head_steps = [
            (
                head.adder.compute_with_shared,
                head.adder.train_fields,
                head if (head.loop is not None or head.wormhole is not None) else None,
                comp,
                gid,
            )
            for head, (comp, gid) in zip(self.heads, assignments)
        ]
        self._state_update = self.state.update_conditional_fields

    def step_count(self, pc: int, target: int, taken: bool, gap: int) -> None:
        """Hot-lane step: run the branch, bump per-head mispredict counts."""
        state = self.state
        shared = [fn(pc, state) for fn in self._index_fns]
        counts = self.counts
        slot = 0
        for compute_shared, train_fields, sidecar, comp, gid in self._head_steps:
            total, selections = compute_shared(
                pc, state, comp, shared[gid] if comp is not None else None
            )
            train_fields(pc, target, taken, total, selections, state)
            prediction = total >= 0
            if sidecar is not None:
                prediction = _sidecar_step(sidecar, pc, target, taken, gap, prediction)
            counts[slot] += prediction != taken
            slot += 1
        self._state_update(pc, target, taken)

    def step_list(self, pc: int, target: int, taken: bool, gap: int) -> List[bool]:
        """General step: run the branch, return per-head final predictions."""
        state = self.state
        shared = [fn(pc, state) for fn in self._index_fns]
        predictions: List[bool] = []
        for compute_shared, train_fields, sidecar, comp, gid in self._head_steps:
            total, selections = compute_shared(
                pc, state, comp, shared[gid] if comp is not None else None
            )
            train_fields(pc, target, taken, total, selections, state)
            prediction = total >= 0
            if sidecar is not None:
                prediction = _sidecar_step(sidecar, pc, target, taken, gap, prediction)
            predictions.append(prediction)
        self._state_update(pc, target, taken)
        return predictions

    def observe(self, pc: int) -> None:
        """Non-conditional branch: advance the shared path history once."""
        self.state.observe_pc(pc)


_GROUP_KINDS = {"tage-gsc": _TageGscGroup, "gehl": _GehlGroup}


def plan_groups(
    predictors: Sequence[BranchPredictor],
) -> Optional[Tuple[list, List[int]]]:
    """Partition a batch into shared-core groups and solo members.

    Returns ``(groups, solo_indices)`` where each group carries the batch
    ``indices`` of its members, or ``None`` when no group of at least two
    members forms (the caller then keeps its flat per-predictor path,
    paying no grouping overhead).

    A member joins a group only when it advertises a
    :class:`~repro.predictors.composites.SharedCoreInfo`, has never been
    stepped (:func:`is_pristine`) and shares its core key with at least
    one other member; everything else stays solo and is executed through
    its ordinary fast-path protocol.
    """
    by_key: Dict[tuple, List[Tuple[int, SharedCoreInfo]]] = {}
    solos: List[int] = []
    for index, predictor in enumerate(predictors):
        info = getattr(predictor, "shared_core", None)
        if (
            info is None
            or info.key[0] not in _GROUP_KINDS
            or not is_pristine(predictor)
        ):
            solos.append(index)
            continue
        by_key.setdefault(info.key, []).append((index, info))
    groups = []
    for key, members in by_key.items():
        if len(members) < 2:
            solos.extend(index for index, _ in members)
            continue
        groups.append(_GROUP_KINDS[key[0]](members))
    if not groups:
        return None
    solos.sort()
    return groups, solos
