"""Branch predictors.

The package is organised bottom-up:

* :mod:`repro.predictors.base` -- the :class:`BranchPredictor` interface.
* :mod:`repro.predictors.simple` -- static, bimodal, gshare and perceptron
  baselines.
* :mod:`repro.predictors.adder` and :mod:`repro.predictors.components` --
  the adder-tree machinery shared by GEHL and the statistical corrector.
* :mod:`repro.predictors.gehl`, :mod:`repro.predictors.tage`,
  :mod:`repro.predictors.statistical_corrector`,
  :mod:`repro.predictors.tage_gsc` -- the two base predictor families of the
  paper.
* :mod:`repro.predictors.loop`, :mod:`repro.predictors.wormhole` -- the side
  predictors (loop exit predictor and the prior-art wormhole predictor).
* :mod:`repro.predictors.composites` -- every named configuration evaluated
  in the paper (``tage-gsc``, ``tage-gsc+imli``, ``gehl+l`` ...).
"""

from repro.predictors.adder import AdderTree
from repro.predictors.base import BranchPredictor
from repro.predictors.components import (
    BiasComponent,
    GlobalHistoryComponent,
    IMLICountHashedGlobalComponent,
    LocalHistoryComponent,
    geometric_history_lengths,
)
from repro.predictors.composites import (
    CONFIGURATIONS,
    CompositeOptions,
    SidecarPredictor,
    SizeProfile,
    build,
    build_named,
    configuration_names,
    factory,
)
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.loop import LoopPredictor, LoopPredictorConfig
from repro.predictors.simple import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    PerceptronPredictor,
    StaticBackwardTakenPredictor,
)
from repro.predictors.statistical_corrector import (
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)
from repro.predictors.tage import TAGEConfig, TAGEEngine, TAGEPredictor
from repro.predictors.tage_gsc import TAGEGSCConfig, TAGEGSCPredictor
from repro.predictors.wormhole import WormholePredictor, WormholePredictorConfig

__all__ = [
    "AdderTree",
    "AlwaysTakenPredictor",
    "BiasComponent",
    "BimodalPredictor",
    "BranchPredictor",
    "CONFIGURATIONS",
    "CompositeOptions",
    "GEHLConfig",
    "GEHLPredictor",
    "GSharePredictor",
    "GlobalHistoryComponent",
    "IMLICountHashedGlobalComponent",
    "LocalHistoryComponent",
    "LoopPredictor",
    "LoopPredictorConfig",
    "PerceptronPredictor",
    "SidecarPredictor",
    "SizeProfile",
    "StaticBackwardTakenPredictor",
    "StatisticalCorrector",
    "StatisticalCorrectorConfig",
    "TAGEConfig",
    "TAGEEngine",
    "TAGEGSCConfig",
    "TAGEGSCPredictor",
    "TAGEPredictor",
    "WormholePredictor",
    "WormholePredictorConfig",
    "build",
    "build_named",
    "configuration_names",
    "factory",
    "geometric_history_lengths",
]
