"""The adder tree shared by GEHL and the statistical corrector.

GEHL-style neural predictors compute the sum of small signed counters read
from several component tables and predict the sign of the sum.  Training
uses the classic threshold rule: the selected counters are moved toward the
outcome when the prediction was wrong *or* the magnitude of the sum was
below an (adaptively adjusted) confidence threshold.

The :class:`AdderTree` here owns the components, the summation and the
adaptive threshold; :class:`~repro.predictors.gehl.GEHLPredictor` and
:class:`~repro.predictors.statistical_corrector.StatisticalCorrector` are
thin layers on top of it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.component import CounterSelection, NeuralComponent, SharedState
from repro.trace.branch import BranchRecord

__all__ = ["AdderTree"]


class AdderTree:
    """Sums counters from a set of :class:`NeuralComponent` inputs.

    Parameters
    ----------
    components:
        The adder-tree inputs (global-history tables, bias tables, IMLI
        components, local-history tables ...).
    initial_threshold:
        Starting value of the adaptive training/confidence threshold.
    threshold_counter_bits:
        Width of the saturating counter that drives threshold adaptation
        (the ``TC`` counter of O-GEHL).
    """

    def __init__(
        self,
        components: Sequence[NeuralComponent],
        initial_threshold: int = 8,
        threshold_counter_bits: int = 7,
    ) -> None:
        if not components:
            raise ValueError("an adder tree needs at least one component")
        if initial_threshold < 0:
            raise ValueError(
                f"initial threshold must be non-negative, got {initial_threshold}"
            )
        self.components: List[NeuralComponent] = list(components)
        self.threshold = initial_threshold
        self._threshold_counter = 0
        self._threshold_counter_max = (1 << (threshold_counter_bits - 1)) - 1
        self._threshold_counter_min = -(1 << (threshold_counter_bits - 1))
        self._threshold_counter_bits = threshold_counter_bits

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def compute(
        self, pc: int, state: SharedState
    ) -> Tuple[int, List[List[CounterSelection]]]:
        """Return ``(sum, per-component selections)`` for branch ``pc``.

        Each selected counter ``c`` contributes ``2*c + 1`` to the sum (the
        standard centring that makes a zero counter lean weakly taken), so
        the sign of the sum is the prediction and its magnitude the
        confidence.
        """
        total = 0
        all_selections: List[List[CounterSelection]] = []
        for component in self.components:
            selections = component.select(pc, state)
            for table, index in selections:
                total += 2 * table.values[index] + 1
            all_selections.append(selections)
        return total, all_selections

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def train(
        self,
        record: BranchRecord,
        total: int,
        all_selections: List[List[CounterSelection]],
        state: SharedState,
        force: bool = False,
    ) -> None:
        """Apply the threshold training rule for one resolved branch.

        ``force`` trains the counters regardless of the threshold test; the
        statistical corrector uses it when the *final* (post-correction)
        prediction was wrong even though the adder tree itself looked
        confident.
        """
        taken = record.taken
        adder_prediction = total >= 0
        mispredicted = adder_prediction != taken
        if force or mispredicted or abs(total) <= self.threshold:
            for component, selections in zip(self.components, all_selections):
                component.train(record.pc, taken, selections, state)
            self._adapt_threshold(mispredicted, total)
        for component in self.components:
            component.on_outcome(record, state)

    def _adapt_threshold(self, mispredicted: bool, total: int) -> None:
        """O-GEHL style dynamic threshold fitting.

        Mispredictions push the threshold up (train more aggressively);
        correct-but-low-confidence predictions push it back down, keeping
        the number of threshold-triggered updates roughly balanced.
        """
        if mispredicted:
            self._threshold_counter += 1
            if self._threshold_counter >= self._threshold_counter_max:
                self._threshold_counter = 0
                self.threshold += 1
        elif abs(total) <= self.threshold:
            self._threshold_counter -= 1
            if self._threshold_counter <= self._threshold_counter_min:
                self._threshold_counter = 0
                if self.threshold > 0:
                    self.threshold -= 1

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        """Storage of every component plus the threshold machinery."""
        bits = sum(component.storage_bits() for component in self.components)
        # Adaptive threshold register and its adaptation counter.
        return bits + 8 + self._threshold_counter_bits

    def speculative_state_bits(self) -> int:
        """Per-checkpoint state required by the components."""
        return sum(component.speculative_state_bits() for component in self.components)

    def component_storage_breakdown(self) -> List[Tuple[str, int]]:
        """Per-component storage report ``[(name, bits), ...]``."""
        return [
            (component.name, component.storage_bits())
            for component in self.components
        ]
