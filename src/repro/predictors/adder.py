"""The adder tree shared by GEHL and the statistical corrector.

GEHL-style neural predictors compute the sum of small signed counters read
from several component tables and predict the sign of the sum.  Training
uses the classic threshold rule: the selected counters are moved toward the
outcome when the prediction was wrong *or* the magnitude of the sum was
below an (adaptively adjusted) confidence threshold.

The :class:`AdderTree` here owns the components, the summation and the
adaptive threshold; :class:`~repro.predictors.gehl.GEHLPredictor` and
:class:`~repro.predictors.statistical_corrector.StatisticalCorrector` are
thin layers on top of it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.component import CounterSelection, NeuralComponent, SharedState
from repro.trace.branch import BranchRecord

__all__ = ["AdderTree"]


class AdderTree:
    """Sums counters from a set of :class:`NeuralComponent` inputs.

    Parameters
    ----------
    components:
        The adder-tree inputs (global-history tables, bias tables, IMLI
        components, local-history tables ...).
    initial_threshold:
        Starting value of the adaptive training/confidence threshold.
    threshold_counter_bits:
        Width of the saturating counter that drives threshold adaptation
        (the ``TC`` counter of O-GEHL).
    """

    def __init__(
        self,
        components: Sequence[NeuralComponent],
        initial_threshold: int = 8,
        threshold_counter_bits: int = 7,
    ) -> None:
        if not components:
            raise ValueError("an adder tree needs at least one component")
        if initial_threshold < 0:
            raise ValueError(
                f"initial threshold must be non-negative, got {initial_threshold}"
            )
        self.components: List[NeuralComponent] = list(components)
        # Components whose on_outcome hook actually does something; resolved
        # lazily (and re-resolved whenever the component list grows, since
        # callers may append components after construction).
        self._outcome_components: Optional[List[NeuralComponent]] = None
        self._outcome_scan_size = -1
        self.threshold = initial_threshold
        self._threshold_counter = 0
        self._threshold_counter_max = (1 << (threshold_counter_bits - 1)) - 1
        self._threshold_counter_min = -(1 << (threshold_counter_bits - 1))
        self._threshold_counter_bits = threshold_counter_bits

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def compute(
        self, pc: int, state: SharedState
    ) -> Tuple[int, List[List[CounterSelection]]]:
        """Return ``(sum, per-component selections)`` for branch ``pc``.

        Each selected counter ``c`` contributes ``2*c + 1`` to the sum (the
        standard centring that makes a zero counter lean weakly taken), so
        the sign of the sum is the prediction and its magnitude the
        confidence.
        """
        total = 0
        all_selections: List[List[CounterSelection]] = []
        append = all_selections.append
        for component in self.components:
            selections, contribution = component.select_sum(pc, state)
            total += contribution
            append(selections)
        return total, all_selections

    def compute_with_shared(
        self,
        pc: int,
        state: SharedState,
        shared_component: Optional[NeuralComponent],
        shared_indices: Optional[List[int]],
    ) -> Tuple[int, List[List[CounterSelection]]]:
        """:meth:`compute`, reusing precomputed indices for one component.

        The shared-core batch executor hashes a
        :class:`~repro.predictors.components.GlobalHistoryComponent`'s
        table indices once per group of predictors and hands them to each
        member's adder tree here; every other component computes as usual.
        With ``shared_component=None`` this is exactly :meth:`compute`.
        """
        total = 0
        all_selections: List[List[CounterSelection]] = []
        append = all_selections.append
        for component in self.components:
            if component is shared_component:
                selections, contribution = component.select_sum_at(shared_indices)
            else:
                selections, contribution = component.select_sum(pc, state)
            total += contribution
            append(selections)
        return total, all_selections

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def train(
        self,
        record: BranchRecord,
        total: int,
        all_selections: List[List[CounterSelection]],
        state: SharedState,
        force: bool = False,
    ) -> None:
        """Apply the threshold training rule for one resolved branch.

        ``force`` trains the counters regardless of the threshold test; the
        statistical corrector uses it when the *final* (post-correction)
        prediction was wrong even though the adder tree itself looked
        confident.
        """
        self.train_fields(
            record.pc, record.target, record.taken, total, all_selections, state, force
        )

    def train_fields(
        self,
        pc: int,
        target: int,
        taken: bool,
        total: int,
        all_selections: List[List[CounterSelection]],
        state: SharedState,
        force: bool = False,
    ) -> None:
        """Field-based form of :meth:`train` (the per-branch hot path)."""
        adder_prediction = total >= 0
        mispredicted = adder_prediction != taken
        if force or mispredicted or abs(total) <= self.threshold:
            for component, selections in zip(self.components, all_selections):
                component.train(pc, taken, selections, state)
            self._adapt_threshold(mispredicted, total)
        outcome_components = self._outcome_components
        if outcome_components is None or self._outcome_scan_size != len(self.components):
            outcome_components = self._scan_outcome_components()
        for component in outcome_components:
            component.on_outcome_fields(pc, target, taken, state)

    def _scan_outcome_components(self) -> List[NeuralComponent]:
        """Resolve which components need the per-branch outcome hook.

        A component that overrides the record-based ``on_outcome`` without
        overriding ``on_outcome_fields`` would be silently skipped on both
        call paths (the record path delegates to the field path), so that
        is rejected loudly here.
        """
        outcome_components = []
        base_fields_hook = NeuralComponent.on_outcome_fields
        base_record_hook = NeuralComponent.on_outcome
        for component in self.components:
            kind = type(component)
            if kind.on_outcome_fields is not base_fields_hook:
                outcome_components.append(component)
            elif kind.on_outcome is not base_record_hook:
                raise TypeError(
                    f"{kind.__name__} overrides on_outcome() but not "
                    "on_outcome_fields(); override on_outcome_fields() so the "
                    "hook runs on both the record and the columnar call paths"
                )
        self._outcome_components = outcome_components
        self._outcome_scan_size = len(self.components)
        return outcome_components

    def _adapt_threshold(self, mispredicted: bool, total: int) -> None:
        """O-GEHL style dynamic threshold fitting.

        Mispredictions push the threshold up (train more aggressively);
        correct-but-low-confidence predictions push it back down, keeping
        the number of threshold-triggered updates roughly balanced.
        """
        if mispredicted:
            self._threshold_counter += 1
            if self._threshold_counter >= self._threshold_counter_max:
                self._threshold_counter = 0
                self.threshold += 1
        elif abs(total) <= self.threshold:
            self._threshold_counter -= 1
            if self._threshold_counter <= self._threshold_counter_min:
                self._threshold_counter = 0
                if self.threshold > 0:
                    self.threshold -= 1

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        """Storage of every component plus the threshold machinery."""
        bits = sum(component.storage_bits() for component in self.components)
        # Adaptive threshold register and its adaptation counter.
        return bits + 8 + self._threshold_counter_bits

    def speculative_state_bits(self) -> int:
        """Per-checkpoint state required by the components."""
        return sum(component.speculative_state_bits() for component in self.components)

    def component_storage_breakdown(self) -> List[Tuple[str, int]]:
        """Per-component storage report ``[(name, bits), ...]``."""
        return [
            (component.name, component.storage_bits())
            for component in self.components
        ]
