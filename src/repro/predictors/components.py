"""Adder-tree components shared by GEHL and the statistical corrector.

These components implement the :class:`~repro.core.component.NeuralComponent`
interface defined in :mod:`repro.core.component`.  Together with the IMLI
components from :mod:`repro.core` they are the inputs of the two adder-tree
predictors used in the paper:

* :class:`BiasComponent` -- per-PC bias tables, optionally hashed with the
  TAGE prediction (the "PC + TAGE prediction" tables of the statistical
  corrector, Figure 5).
* :class:`GlobalHistoryComponent` -- a bank of tables indexed with the PC
  hashed with folded global history of geometric lengths (the body of GEHL
  and of the global-history statistical corrector).
* :class:`LocalHistoryComponent` -- tables indexed with the PC hashed with
  the branch's local history; this is the "+L" local-history component whose
  speculative management the paper argues against (Sections 2.3.2 and 5).
* :class:`IMLICountHashedGlobalComponent` -- global-history tables whose
  index additionally mixes in the IMLI counter, the optional refinement
  mentioned at the end of Section 4.2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.bits import (
    MASK64,
    MIX_FINAL_MULTIPLIER,
    MIX_ROUND_KEY,
    MIX_ROUND_MULTIPLIER,
    log2_exact,
    mask,
    mix_hash,
    mix_hash1,
    mix_hash2,
    mix_hash3,
    mix_hash4,
)
from repro.common.counters import SignedCounterArray
from repro.common.history import FoldedHistory
from repro.core.component import CounterSelection, NeuralComponent, SharedState

__all__ = [
    "BiasComponent",
    "GlobalHistoryComponent",
    "IMLICountHashedGlobalComponent",
    "LocalHistoryComponent",
    "geometric_history_lengths",
]


def geometric_history_lengths(
    count: int, minimum: int, maximum: int
) -> List[int]:
    """Return ``count`` history lengths in geometric progression.

    This is the geometric-history-length scheme of O-GEHL and TAGE: the
    first length is ``minimum``, the last is ``maximum`` and intermediate
    lengths follow a geometric series (rounded, strictly increasing).
    """
    if count <= 0:
        raise ValueError(f"length count must be positive, got {count}")
    if minimum <= 0 or maximum < minimum:
        raise ValueError(
            f"invalid geometric range [{minimum}, {maximum}]"
        )
    if count == 1:
        return [minimum]
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths: List[int] = []
    for position in range(count):
        length = int(round(minimum * (ratio ** position)))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    lengths[-1] = max(lengths[-1], maximum)
    return lengths


class BiasComponent(NeuralComponent):
    """Per-PC bias tables for an adder tree.

    One table is indexed with the hashed PC alone.  When
    ``use_tage_prediction`` is set a second table is indexed with the PC
    hashed together with the current TAGE prediction, which is how the
    statistical corrector lets the TAGE prediction dominate unless other
    components disagree strongly.
    """

    name = "bias"

    def __init__(
        self,
        entries: int = 1024,
        counter_bits: int = 6,
        use_tage_prediction: bool = False,
    ) -> None:
        self.index_bits = log2_exact(entries)
        self.index_mask = mask(self.index_bits)
        self.use_tage_prediction = use_tage_prediction
        self.pc_table = SignedCounterArray(entries, counter_bits)
        self.tage_table = (
            SignedCounterArray(entries, counter_bits) if use_tage_prediction else None
        )

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        index_mask = self.index_mask
        selections: List[CounterSelection] = [
            (self.pc_table, mix_hash1(pc) & index_mask)
        ]
        if self.tage_table is not None:
            tage_bit = 1 if state.tage_prediction else 0
            selections.append(
                (self.tage_table, mix_hash2(pc, tage_bit) & index_mask)
            )
        return selections

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        index_mask = self.index_mask
        pc_table = self.pc_table
        pc_index = mix_hash1(pc) & index_mask
        total = 2 * pc_table.values[pc_index] + 1
        tage_table = self.tage_table
        if tage_table is None:
            return [(pc_table, pc_index)], total
        tage_bit = 1 if state.tage_prediction else 0
        tage_index = mix_hash2(pc, tage_bit) & index_mask
        total += 2 * tage_table.values[tage_index] + 1
        return [(pc_table, pc_index), (tage_table, tage_index)], total

    def storage_bits(self) -> int:
        bits = self.pc_table.storage_bits()
        if self.tage_table is not None:
            bits += self.tage_table.storage_bits()
        return bits


class GlobalHistoryComponent(NeuralComponent):
    """Tables indexed with the PC hashed with folded global history.

    ``history_lengths`` gives one (possibly zero) history length per table;
    a zero length degenerates to a PC-indexed table.  Folded histories are
    registered with the owning predictor's :class:`SharedState` so they stay
    coherent with the global history register at O(1) cost per branch.
    """

    name = "global"

    def __init__(
        self,
        state: SharedState,
        history_lengths: Sequence[int],
        entries: int = 1024,
        counter_bits: int = 6,
        use_path_history: bool = True,
    ) -> None:
        if not history_lengths:
            raise ValueError("at least one history length is required")
        self.index_bits = log2_exact(entries)
        self.index_mask = mask(self.index_bits)
        self.history_lengths = list(history_lengths)
        self.use_path_history = use_path_history
        self.tables = [
            SignedCounterArray(entries, counter_bits) for _ in self.history_lengths
        ]
        self.folded: List[FoldedHistory] = [
            state.new_folded_history(length, self.index_bits)
            for length in self.history_lengths
        ]
        # Per-table hot rows: (table, folded register, path-history mask).
        # The path hash consumes at most 16 path bits, clamped to the path
        # register capacity exactly like PathHistory.value() does.
        path_capacity = state.path_history.capacity
        self._rows = [
            (table, folded, mask(min(length, 16, path_capacity)))
            for table, folded, length in zip(
                self.tables, self.folded, self.history_lengths
            )
        ]

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        path_bits = state.path_history.bits if self.use_path_history else 0
        index_mask = self.index_mask
        return [
            (table, mix_hash3(pc, folded.fold, path_bits & path_mask) & index_mask)
            for table, folded, path_mask in self._rows
        ]

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        # The hottest hash site of the adder-tree predictors: the splitmix
        # rounds of ``mix_hash3(pc, fold, path)`` are inlined with the
        # PC-only first round hoisted out of the per-table loop (it is the
        # same for every table; see bits.mix_pc_round / bits.mix_tail2,
        # whose property tests pin this inline copy to the generic hash).
        # The shared constants are hoisted into locals so the loop body
        # pays LOAD_FAST, not module-global lookups.
        path_bits = state.path_history.bits if self.use_path_history else 0
        index_mask = self.index_mask
        mask64 = MASK64
        multiplier = MIX_ROUND_MULTIPLIER
        key1 = MIX_ROUND_KEY + 1
        key2 = MIX_ROUND_KEY + 2
        final_multiplier = MIX_FINAL_MULTIPLIER
        acc0 = MIX_ROUND_KEY ^ ((pc + MIX_ROUND_KEY) & mask64)
        acc0 = (acc0 * multiplier) & mask64
        acc0 ^= acc0 >> 27
        total = 0
        selections = []
        append = selections.append
        for table, folded, path_mask in self._rows:
            acc = acc0 ^ ((folded.fold + key1) & mask64)
            acc = (acc * multiplier) & mask64
            acc ^= acc >> 27
            acc ^= ((path_bits & path_mask) + key2) & mask64
            acc = (acc * multiplier) & mask64
            acc ^= acc >> 27
            acc = (acc * final_multiplier) & mask64
            index = (acc ^ (acc >> 31)) & index_mask
            append((table, index))
            total += 2 * table.values[index] + 1
        return selections, total

    def shared_index_geometry(self) -> tuple:
        """Hashable geometry key for cross-predictor index sharing.

        Two components with equal keys whose owning predictors share one
        :class:`SharedState` compute identical table indices for every
        branch: the folded registers are shape-deduplicated on the state
        (equal lengths and widths resolve to the *same* fold objects) and
        the path masks derive from the same path register.  The shared-core
        batch executor (:mod:`repro.predictors.shared_core`) uses this to
        hash once per group instead of once per head.  Only exact
        :class:`GlobalHistoryComponent` instances may share -- subclasses
        mix extra fields into the index (see
        :class:`IMLICountHashedGlobalComponent`).
        """
        return (tuple(self.history_lengths), self.index_bits, self.use_path_history)

    def compute_indices(self, pc: int, state: SharedState) -> List[int]:
        """Per-table indices only (the hash half of :meth:`select_sum`)."""
        path_bits = state.path_history.bits if self.use_path_history else 0
        index_mask = self.index_mask
        mask64 = MASK64
        multiplier = MIX_ROUND_MULTIPLIER
        key1 = MIX_ROUND_KEY + 1
        key2 = MIX_ROUND_KEY + 2
        final_multiplier = MIX_FINAL_MULTIPLIER
        acc0 = MIX_ROUND_KEY ^ ((pc + MIX_ROUND_KEY) & mask64)
        acc0 = (acc0 * multiplier) & mask64
        acc0 ^= acc0 >> 27
        indices = []
        append = indices.append
        for _table, folded, path_mask in self._rows:
            acc = acc0 ^ ((folded.fold + key1) & mask64)
            acc = (acc * multiplier) & mask64
            acc ^= acc >> 27
            acc ^= ((path_bits & path_mask) + key2) & mask64
            acc = (acc * multiplier) & mask64
            acc ^= acc >> 27
            acc = (acc * final_multiplier) & mask64
            append((acc ^ (acc >> 31)) & index_mask)
        return indices

    def select_sum_at(self, indices: Sequence[int]) -> tuple:
        """The read half of :meth:`select_sum`, over precomputed indices."""
        total = 0
        selections = []
        append = selections.append
        row = 0
        for table, _folded, _path_mask in self._rows:
            index = indices[row]
            row += 1
            append((table, index))
            total += 2 * table.values[index] + 1
        return selections, total

    def storage_bits(self) -> int:
        return sum(table.storage_bits() for table in self.tables)


class IMLICountHashedGlobalComponent(GlobalHistoryComponent):
    """Global-history tables whose index also mixes in the IMLI counter.

    Section 4.2 of the paper notes that the IMLI-SIC benefit "can be further
    increased by inserting the IMLI counter in the indices of two tables in
    the global history component of the SC"; this component implements that
    refinement (used by the ablation benchmarks).
    """

    name = "global+imli"

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        path_bits = state.path_history.bits if self.use_path_history else 0
        imli_count = state.imli.count
        index_mask = self.index_mask
        return [
            (
                table,
                mix_hash4(pc, folded.fold, path_bits & path_mask, imli_count)
                & index_mask,
            )
            for table, folded, path_mask in self._rows
        ]

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        # Do not inherit the parent's fused three-field hash -- this
        # component mixes in the IMLI counter as a fourth field.
        return NeuralComponent.select_sum(self, pc, state)


class LocalHistoryComponent(NeuralComponent):
    """Tables indexed with the PC hashed with the branch's local history.

    Requires the owning predictor's :class:`SharedState` to carry a
    :class:`~repro.common.history.LocalHistoryTable`.  ``history_lengths``
    selects how many low-order local-history bits each table consumes, so a
    small bank of tables can cover several local correlation distances.
    """

    name = "local"

    def __init__(
        self,
        history_lengths: Sequence[int],
        entries: int = 1024,
        counter_bits: int = 6,
    ) -> None:
        if not history_lengths:
            raise ValueError("at least one local history length is required")
        self.index_bits = log2_exact(entries)
        self.history_lengths = list(history_lengths)
        self.tables = [
            SignedCounterArray(entries, counter_bits) for _ in self.history_lengths
        ]

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        if state.local_histories is None:
            raise RuntimeError(
                "LocalHistoryComponent requires a SharedState with a local history table"
            )
        local_history = state.local_histories.read(pc)
        selections: List[CounterSelection] = []
        for table, length in zip(self.tables, self.history_lengths):
            index = mix_hash(
                pc, local_history & ((1 << length) - 1), width=self.index_bits
            )
            selections.append((table, index))
        return selections

    def storage_bits(self) -> int:
        return sum(table.storage_bits() for table in self.tables)
