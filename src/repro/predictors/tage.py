"""The TAGE predictor (TAgged GEometric history length predictor).

TAGE (Seznec and Michaud, 2006) is the main component of the TAGE-GSC base
predictor used in the paper.  It consists of a bimodal base table plus a set
of partially tagged tables indexed with global (branch + path) history of
geometric lengths.  The longest-history matching table provides the
prediction; allocation on mispredictions steers hard branches toward longer
histories; per-entry useful counters manage replacement.

Two classes are provided:

* :class:`TAGEEngine` -- the predictor proper, operating on a
  :class:`~repro.core.component.SharedState` owned by someone else.  The
  TAGE-GSC composite shares one state object between TAGE and its
  statistical corrector.
* :class:`TAGEPredictor` -- a standalone
  :class:`~repro.predictors.base.BranchPredictor` wrapper that owns its own
  shared state (used for baselines, tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.bits import log2_exact, mask
from repro.common.counters import UnsignedCounterArray
from repro.common.history import FoldedHistory
from repro.core.component import SharedState
from repro.predictors.base import BranchPredictor
from repro.predictors.components import geometric_history_lengths
from repro.trace.branch import BranchRecord

__all__ = ["TAGEConfig", "TAGEEngine", "TAGEPrediction", "TAGEPredictor"]


@dataclass(frozen=True)
class TAGEConfig:
    """Geometry of a TAGE predictor."""

    num_tables: int = 10
    table_entries: int = 512
    tag_bits: int = 10
    counter_bits: int = 3
    useful_bits: int = 2
    min_history: int = 4
    max_history: int = 256
    base_entries: int = 4096
    base_counter_bits: int = 2
    use_alt_counter_bits: int = 4
    useful_reset_period: int = 16384

    def history_lengths(self) -> List[int]:
        """Geometric history lengths, one per tagged table (short to long)."""
        return geometric_history_lengths(
            self.num_tables, self.min_history, self.max_history
        )


@dataclass
class TAGEPrediction:
    """Prediction-time context of the TAGE engine for one branch.

    The engine caches everything the update phase needs: per-table indices
    and tags, the provider and alternate components, and both predictions.
    """

    prediction: bool = True
    alt_prediction: bool = True
    provider: int = -1
    alt_provider: int = -1
    provider_weak: bool = False
    indices: List[int] = field(default_factory=list)
    tags: List[int] = field(default_factory=list)
    base_index: int = 0


class _TaggedTable:
    """One partially tagged TAGE table (counters, tags, useful bits)."""

    __slots__ = ("entries", "counter_max", "counter_min", "useful_max", "ctr", "tag", "useful")

    def __init__(self, entries: int, counter_bits: int, useful_bits: int) -> None:
        self.entries = entries
        self.counter_max = (1 << (counter_bits - 1)) - 1
        self.counter_min = -(1 << (counter_bits - 1))
        self.useful_max = (1 << useful_bits) - 1
        self.ctr = [0] * entries
        self.tag = [0] * entries
        self.useful = [0] * entries

    def update_counter(self, index: int, taken: bool) -> None:
        value = self.ctr[index]
        if taken:
            if value < self.counter_max:
                self.ctr[index] = value + 1
        elif value > self.counter_min:
            self.ctr[index] = value - 1


class TAGEEngine:
    """TAGE prediction and update logic over a shared fetch state."""

    def __init__(self, state: SharedState, config: Optional[TAGEConfig] = None) -> None:
        self.config = config or TAGEConfig()
        self.state = state
        cfg = self.config
        self.index_bits = log2_exact(cfg.table_entries)
        self.base_index_bits = log2_exact(cfg.base_entries)
        self.history_lengths = cfg.history_lengths()
        if self.history_lengths[-1] > state.global_history.capacity:
            raise ValueError(
                "shared global history capacity "
                f"({state.global_history.capacity}) is smaller than the longest "
                f"TAGE history ({self.history_lengths[-1]})"
            )
        self.tables = [
            _TaggedTable(cfg.table_entries, cfg.counter_bits, cfg.useful_bits)
            for _ in range(cfg.num_tables)
        ]
        self.base = UnsignedCounterArray(cfg.base_entries, cfg.base_counter_bits)
        # Precomputed masks for the hot index/tag functions.
        self._index_mask = mask(self.index_bits)
        self._tag_mask = mask(cfg.tag_bits)
        self._base_mask = mask(self.base_index_bits)
        path_capacity = state.path_history.capacity
        self._path_masks = [
            mask(min(length, 16, path_capacity)) for length in self.history_lengths
        ]
        # Folded histories: one fold at index width and one at tag width per
        # tagged table, kept coherent by the shared state.
        self.index_folds: List[FoldedHistory] = [
            state.new_folded_history(length, self.index_bits)
            for length in self.history_lengths
        ]
        self.tag_folds: List[FoldedHistory] = [
            state.new_folded_history(length, cfg.tag_bits)
            for length in self.history_lengths
        ]
        self.tag_folds_alt: List[FoldedHistory] = [
            state.new_folded_history(length, max(cfg.tag_bits - 1, 1))
            for length in self.history_lengths
        ]
        # Per-table hot rows for predict_into: (tag list of the table,
        # index fold, tag fold, alternate tag fold, path mask, table xor).
        self._predict_rows = [
            (
                self.tables[table].tag,
                self.index_folds[table],
                self.tag_folds[table],
                self.tag_folds_alt[table],
                self._path_masks[table],
                table << 3,
            )
            for table in range(cfg.num_tables)
        ]
        # use_alt_on_new_alloc counter: when positive, prefer the alternate
        # prediction for weak (newly allocated) provider entries.
        self._use_alt = 0
        self._use_alt_max = (1 << (cfg.use_alt_counter_bits - 1)) - 1
        self._use_alt_min = -(1 << (cfg.use_alt_counter_bits - 1))
        # Deterministic pseudo-random source for allocation spreading.
        self._allocation_seed = 0x2545F491
        self._updates_since_reset = 0
        self._reset_column = 0

    # ------------------------------------------------------------------ #
    # Index and tag functions
    # ------------------------------------------------------------------ #

    def _table_index(self, pc: int, table: int) -> int:
        folded = self.index_folds[table].fold
        length = self.history_lengths[table]
        path = self.state.path_history.value(min(length, 16))
        value = pc ^ (pc >> (self.index_bits - 2)) ^ folded ^ (path << 1) ^ (table << 3)
        return (value ^ (value >> self.index_bits)) & mask(self.index_bits)

    def _table_tag(self, pc: int, table: int) -> int:
        tag_bits = self.config.tag_bits
        value = pc ^ (pc >> 7) ^ self.tag_folds[table].fold ^ (self.tag_folds_alt[table].fold << 1)
        return (value ^ (value >> tag_bits)) & mask(tag_bits)

    def _base_index(self, pc: int) -> int:
        return (pc ^ (pc >> self.base_index_bits)) & mask(self.base_index_bits)

    def _next_random(self) -> int:
        # xorshift32: cheap, deterministic allocation tie-breaking.
        seed = self._allocation_seed
        seed ^= (seed << 13) & 0xFFFFFFFF
        seed ^= seed >> 17
        seed ^= (seed << 5) & 0xFFFFFFFF
        self._allocation_seed = seed & 0xFFFFFFFF
        return self._allocation_seed

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, pc: int) -> TAGEPrediction:
        """Compute the TAGE prediction and its update context for ``pc``."""
        num_tables = self.config.num_tables
        result = TAGEPrediction(indices=[0] * num_tables, tags=[0] * num_tables)
        return self.predict_into(pc, result)

    def predict_into(self, pc: int, result: TAGEPrediction) -> TAGEPrediction:
        """Fill ``result`` (whose lists must be pre-sized) with the
        prediction context for ``pc``.

        This is the per-branch hot path: the index and tag hash functions
        are inlined with hoisted locals so a reused scratch
        :class:`TAGEPrediction` makes prediction allocation-free.
        """
        index_bits = self.index_bits
        index_mask = self._index_mask
        tag_bits = self.config.tag_bits
        tag_mask = self._tag_mask
        path_bits = self.state.path_history.bits
        rows = self._predict_rows
        tables = self.tables
        indices = result.indices
        tags = result.tags

        pc_index_part = pc ^ (pc >> (index_bits - 2))
        pc_tag_part = pc ^ (pc >> 7)
        base_index = (pc ^ (pc >> self.base_index_bits)) & self._base_mask
        result.base_index = base_index
        base = self.base
        base_prediction = base.values[base_index] >= base.midpoint

        provider = -1
        alt_provider = -1
        # Walk from the longest history down.  Once both the provider and
        # the alternate provider are known, no shorter table's index or tag
        # can be observed by the update phase (training touches the provider
        # entry, allocation only tables *above* the provider), so the walk
        # stops early; entries below it keep stale scratch values that are
        # never read.
        for table in range(len(rows) - 1, -1, -1):
            table_tags, index_fold, tag_fold, alt_fold, path_mask, table_xor = rows[table]
            value = (
                pc_index_part
                ^ index_fold.fold
                ^ ((path_bits & path_mask) << 1)
                ^ table_xor
            )
            index = (value ^ (value >> index_bits)) & index_mask
            indices[table] = index
            value = pc_tag_part ^ tag_fold.fold ^ (alt_fold.fold << 1)
            tag = (value ^ (value >> tag_bits)) & tag_mask
            tags[table] = tag
            if table_tags[index] == tag:
                if provider < 0:
                    provider = table
                else:
                    alt_provider = table
                    break
        result.provider = provider
        result.alt_provider = alt_provider

        if alt_provider >= 0:
            alt_prediction = tables[alt_provider].ctr[indices[alt_provider]] >= 0
        else:
            alt_prediction = base_prediction
        result.alt_prediction = alt_prediction

        if provider >= 0:
            ctr = tables[provider].ctr[indices[provider]]
            # A "weak" provider is a (likely newly allocated) entry whose
            # counter is at one of the two central values.
            provider_weak = ctr == 0 or ctr == -1
            result.provider_weak = provider_weak
            if provider_weak and self._use_alt >= 0:
                result.prediction = alt_prediction
            else:
                result.prediction = ctr >= 0
        else:
            result.provider_weak = False
            result.prediction = base_prediction
        return result

    # ------------------------------------------------------------------ #
    # Update
    # ------------------------------------------------------------------ #

    def train(self, record: BranchRecord, prediction: TAGEPrediction) -> None:
        """Update TAGE state with the resolved outcome of ``record``."""
        self.train_fields(record.pc, record.taken, prediction)

    def train_fields(self, pc: int, taken: bool, prediction: TAGEPrediction) -> None:
        """Field-based equivalent of :meth:`train` (the per-branch hot path)."""
        cfg = self.config
        provider = prediction.provider
        mispredicted = prediction.prediction != taken

        if provider >= 0:
            table = self.tables[provider]
            index = prediction.indices[provider]
            ctr = table.ctr
            useful = table.useful
            alt_prediction = prediction.alt_prediction
            provider_prediction = ctr[index] >= 0
            # Track whether the alternate prediction would have been better
            # for weak providers (use_alt_on_na policy).
            if prediction.provider_weak and provider_prediction != alt_prediction:
                if alt_prediction == taken:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif self._use_alt > self._use_alt_min:
                    self._use_alt -= 1
            # Useful bits: the provider was useful when it disagreed with the
            # alternate prediction and was right.
            if provider_prediction != alt_prediction:
                if provider_prediction == taken:
                    if useful[index] < table.useful_max:
                        useful[index] += 1
                elif useful[index] > 0:
                    useful[index] -= 1
            value = ctr[index]
            if taken:
                if value < table.counter_max:
                    ctr[index] = value + 1
            elif value > table.counter_min:
                ctr[index] = value - 1
            # Keep the base table warm when the provider entry is not yet
            # confidently useful.
            if useful[index] == 0:
                self._update_base(prediction.base_index, taken)
        else:
            self._update_base(prediction.base_index, taken)

        if mispredicted and provider < cfg.num_tables - 1:
            self._allocate(pc, taken, prediction)

        self._updates_since_reset += 1
        if self._updates_since_reset >= cfg.useful_reset_period:
            self._updates_since_reset = 0
            self._decay_useful()

    def _update_base(self, index: int, taken: bool) -> None:
        """Inlined saturating step of the bimodal base table."""
        base = self.base
        values = base.values
        value = values[index]
        if taken:
            if value < base.maximum:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

    def _allocate(self, pc: int, taken: bool, prediction: TAGEPrediction) -> None:
        """Allocate entries in longer-history tables after a misprediction."""
        cfg = self.config
        start = prediction.provider + 1
        # Randomly skip the first candidate table occasionally so allocations
        # spread across history lengths (classic TAGE trick).
        if start < cfg.num_tables - 1 and (self._next_random() & 1):
            start += 1
        allocated = 0
        for table_number in range(start, cfg.num_tables):
            table = self.tables[table_number]
            index = prediction.indices[table_number]
            if table.useful[index] == 0:
                table.tag[index] = prediction.tags[table_number]
                table.ctr[index] = 0 if taken else -1
                table.useful[index] = 0
                allocated += 1
                if allocated >= 1:
                    break
        if allocated == 0:
            # No free entry: age the candidates so a future allocation succeeds.
            for table_number in range(start, cfg.num_tables):
                table = self.tables[table_number]
                index = prediction.indices[table_number]
                if table.useful[index] > 0:
                    table.useful[index] -= 1

    def _decay_useful(self) -> None:
        """Periodically halve useful counters (graceful forgetting)."""
        for table in self.tables:
            useful = table.useful
            for index in range(table.entries):
                if useful[index]:
                    useful[index] >>= 1

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        cfg = self.config
        entry_bits = cfg.counter_bits + cfg.tag_bits + cfg.useful_bits
        tagged_bits = cfg.num_tables * cfg.table_entries * entry_bits
        base_bits = cfg.base_entries * cfg.base_counter_bits
        return tagged_bits + base_bits + cfg.use_alt_counter_bits


class TAGEPredictor(BranchPredictor):
    """Standalone TAGE predictor owning its shared state."""

    def __init__(self, config: Optional[TAGEConfig] = None, name: str = "tage") -> None:
        self.name = name
        config = config or TAGEConfig()
        self.state = SharedState(
            history_capacity=max(1024, config.max_history + 1)
        )
        self.engine = TAGEEngine(self.state, config)
        self._last: Optional[TAGEPrediction] = None
        self._scratch = TAGEPrediction(
            indices=[0] * self.engine.config.num_tables,
            tags=[0] * self.engine.config.num_tables,
        )

    def predict(self, record: BranchRecord) -> bool:
        self._last = self.engine.predict(record.pc)
        return self._last.prediction

    def update(self, record: BranchRecord, prediction: bool) -> None:
        if self._last is None:
            raise RuntimeError("update() called before predict()")
        self.engine.train(record, self._last)
        self.state.update_conditional(record)

    def predict_update(
        self, pc: int, target: int, taken: bool, kind: int = 0, gap: int = 0
    ) -> bool:
        """Combined predict-and-train fast path (see ``docs/PERFORMANCE.md``)."""
        engine = self.engine
        context = engine.predict_into(pc, self._scratch)
        prediction = context.prediction
        engine.train_fields(pc, taken, context)
        self.state.update_conditional_fields(pc, target, taken)
        return prediction

    def observe_unconditional(self, record: BranchRecord) -> None:
        self.state.update_unconditional(record)

    def observe_pc(self, pc: int) -> None:
        self.state.observe_pc(pc)

    def storage_bits(self) -> int:
        return self.engine.storage_bits() + self.state.storage_bits()
