"""The GEHL predictor (GEometric History Length predictor).

GEHL (Seznec, 2005) is the neural-inspired global-history base predictor of
the paper (Section 3.2.2): a set of prediction tables indexed with the
branch PC hashed with global histories of geometric lengths, summed by an
adder tree, with threshold-based training and dynamic threshold fitting.

The paper's configuration uses 17 tables of 2K 6-bit counters and a maximum
history length of 600 (204 Kbits).  The default configuration here is
scaled down to the synthetic workloads (shorter traces, fewer static
branches) but keeps the same structure; the ``GEHLConfig`` dataclass exposes
every knob.

Extra adder-tree components -- the IMLI-SIC and IMLI-OH tables of the paper
(Figure 6), or local-history tables for the FTL-style "+L" configurations --
are passed through ``extra_components``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.history import LocalHistoryTable
from repro.core.component import NeuralComponent, SharedState
from repro.predictors.adder import AdderTree
from repro.predictors.base import BranchPredictor
from repro.predictors.components import (
    BiasComponent,
    GlobalHistoryComponent,
    geometric_history_lengths,
)
from repro.trace.branch import BranchRecord

__all__ = ["GEHLConfig", "GEHLPredictor"]


@dataclass(frozen=True)
class GEHLConfig:
    """Geometry of a GEHL predictor."""

    num_tables: int = 8
    table_entries: int = 1024
    counter_bits: int = 6
    min_history: int = 3
    max_history: int = 200
    bias_entries: int = 1024
    initial_threshold: int = 8
    history_capacity: int = 1024
    path_capacity: int = 32
    imli_counter_bits: int = 10

    def history_lengths(self) -> List[int]:
        """Geometric history lengths, one per history-indexed table."""
        return geometric_history_lengths(
            self.num_tables, self.min_history, self.max_history
        )


@dataclass
class _GEHLContext:
    """Prediction-time context cached between predict() and update()."""

    total: int = 0
    selections: list = field(default_factory=list)


class GEHLPredictor(BranchPredictor):
    """A standalone GEHL predictor with optional extra adder-tree components.

    Parameters
    ----------
    config:
        Table geometry; defaults to the library's scaled-down configuration.
    extra_components:
        Additional :class:`NeuralComponent` inputs (IMLI-SIC, IMLI-OH,
        local-history tables) appended to the adder tree.
    local_history_table:
        When local-history components are used, the shared local history
        table they read; it becomes part of the predictor's shared state so
        it is updated once per branch.
    name:
        Report name for this configuration (defaults to ``"gehl"``).
    """

    def __init__(
        self,
        config: Optional[GEHLConfig] = None,
        extra_components: Sequence[NeuralComponent] = (),
        local_history_table: Optional[LocalHistoryTable] = None,
        name: str = "gehl",
    ) -> None:
        self.name = name
        self.config = config or GEHLConfig()
        self.state = SharedState(
            history_capacity=self.config.history_capacity,
            path_capacity=self.config.path_capacity,
            imli_counter_bits=self.config.imli_counter_bits,
            local_history_table=local_history_table,
        )
        components: List[NeuralComponent] = [
            BiasComponent(
                entries=self.config.bias_entries,
                counter_bits=self.config.counter_bits,
                use_tage_prediction=False,
            ),
            GlobalHistoryComponent(
                state=self.state,
                history_lengths=self.config.history_lengths(),
                entries=self.config.table_entries,
                counter_bits=self.config.counter_bits,
            ),
        ]
        components.extend(extra_components)
        self.adder = AdderTree(
            components, initial_threshold=self.config.initial_threshold
        )
        self._ctx = _GEHLContext()

    def predict(self, record: BranchRecord) -> bool:
        total, selections = self.adder.compute(record.pc, self.state)
        self._ctx.total = total
        self._ctx.selections = selections
        return total >= 0

    def update(self, record: BranchRecord, prediction: bool) -> None:
        self.adder.train(record, self._ctx.total, self._ctx.selections, self.state)
        self.state.update_conditional(record)

    def predict_update(
        self, pc: int, target: int, taken: bool, kind: int = 0, gap: int = 0
    ) -> bool:
        """Combined predict-and-train fast path (see ``docs/PERFORMANCE.md``)."""
        state = self.state
        adder = self.adder
        total, selections = adder.compute(pc, state)
        adder.train_fields(pc, target, taken, total, selections, state)
        state.update_conditional_fields(pc, target, taken)
        return total >= 0

    def observe_unconditional(self, record: BranchRecord) -> None:
        self.state.update_unconditional(record)

    def observe_pc(self, pc: int) -> None:
        self.state.observe_pc(pc)

    def storage_bits(self) -> int:
        return self.adder.storage_bits() + self.state.storage_bits()

    def speculative_state_bits(self) -> int:
        """Per-checkpoint speculative state (history pointers, IMLI, PIPE)."""
        return self.state.checkpoint_bits() + self.adder.speculative_state_bits()
