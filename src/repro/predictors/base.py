"""The branch predictor interface used by the trace-driven simulator.

All predictors in this library -- from the 2-bit bimodal baseline to the
TAGE-GSC + IMLI composite -- implement :class:`BranchPredictor`.  The
simulation engine (:mod:`repro.sim.engine`) drives them with the immediate
update discipline of the CBP championship framework (Section 3 of the
paper): ``predict`` is called for every conditional branch, followed
immediately by ``update`` with the resolved outcome;
``observe_unconditional`` is called for the other branch kinds so that path
history and similar structures can observe them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.trace.branch import BranchRecord

__all__ = ["BranchPredictor"]


class BranchPredictor(ABC):
    """Abstract trace-driven branch predictor.

    Implementations may assume the call sequence the simulator guarantees:
    for every conditional branch, :meth:`predict` is immediately followed by
    :meth:`update` for the same record, so prediction-time context (table
    indices, partial sums) can be cached on the instance between the two
    calls.
    """

    #: Human-readable predictor/configuration name used in reports.
    name: str = "predictor"

    @abstractmethod
    def predict(self, record: BranchRecord) -> bool:
        """Predict the direction of a conditional branch."""

    @abstractmethod
    def update(self, record: BranchRecord, prediction: bool) -> None:
        """Train the predictor with the resolved outcome of ``record``.

        ``prediction`` is the value previously returned by :meth:`predict`
        for this record (some update policies depend on whether the final
        prediction was correct rather than on internal component signals).
        """

    def observe_unconditional(self, record: BranchRecord) -> None:
        """Observe a non-conditional branch (default: ignore it)."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Number of storage bits the predictor configuration models."""

    def storage_kilobits(self) -> float:
        """Storage in Kbits (the unit the paper's tables use)."""
        return self.storage_bits() / 1024.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
