"""The loop (exit) predictor.

The loop predictor (Sherwood and Calder, 2000; implemented in recent Intel
processors) identifies loops with a constant iteration count and predicts
the loop-exit branch: it counts consecutive taken occurrences of a backward
conditional branch and, once the same trip count has been observed several
times, predicts "not taken" exactly on the final iteration.

In this library the loop predictor plays two roles, as in the paper:

* as a side predictor in the "+L" configurations (its confident prediction
  overrides the main predictor), and
* as the supplier of the inner-loop trip count for the wormhole predictor
  (the WH predictor only works for loops whose trip count it knows,
  Section 2.2.2); in the "+WH" configurations its *prediction* is unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.bits import hash_pc, log2_exact, mask
from repro.trace.branch import BranchRecord

__all__ = ["LoopPredictorConfig", "LoopPredictor"]


@dataclass(frozen=True)
class LoopPredictorConfig:
    """Geometry of the loop predictor."""

    entries: int = 16
    tag_bits: int = 10
    iteration_bits: int = 10
    confidence_threshold: int = 3
    max_confidence: int = 7


class _LoopEntry:
    """One loop predictor entry."""

    __slots__ = ("tag", "trip_count", "current_count", "confidence", "valid")

    def __init__(self) -> None:
        self.tag = 0
        self.trip_count = 0
        self.current_count = 0
        self.confidence = 0
        self.valid = False


class LoopPredictor:
    """Direct-mapped, tagged loop exit predictor."""

    def __init__(self, config: Optional[LoopPredictorConfig] = None) -> None:
        self.config = config or LoopPredictorConfig()
        self.index_bits = log2_exact(self.config.entries)
        self.entries: List[_LoopEntry] = [
            _LoopEntry() for _ in range(self.config.entries)
        ]
        self._max_count = (1 << self.config.iteration_bits) - 1

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def _index(self, pc: int) -> int:
        return hash_pc(pc, self.index_bits)

    def _tag(self, pc: int) -> int:
        return (pc >> self.index_bits) & mask(self.config.tag_bits)

    def _lookup(self, pc: int) -> Optional[_LoopEntry]:
        entry = self.entries[self._index(pc)]
        if entry.valid and entry.tag == self._tag(pc):
            return entry
        return None

    # ------------------------------------------------------------------ #
    # Prediction interface
    # ------------------------------------------------------------------ #

    def predict(self, record: BranchRecord) -> Optional[bool]:
        """Return a confident loop prediction for ``record`` or ``None``.

        Only backward conditional branches (loop back-edges) are predicted.
        The prediction is "taken" (continue looping) except on the iteration
        matching the learned trip count, where it is "not taken" (exit).
        """
        if not record.is_conditional or not record.is_backward:
            return None
        entry = self._lookup(record.pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return None
        return entry.current_count + 1 < entry.trip_count

    def trip_count_for(self, pc: int) -> Optional[int]:
        """Confident constant trip count of the loop ending at ``pc``.

        Used by the wormhole predictor to locate outcomes of the previous
        outer-loop iteration inside a long local history.  ``None`` when the
        loop is unknown or its trip count is not (yet) stable.
        """
        entry = self._lookup(pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return None
        return entry.trip_count

    def current_iteration_for(self, pc: int) -> Optional[int]:
        """Number of completed iterations in the current execution of the loop."""
        entry = self._lookup(pc)
        if entry is None:
            return None
        return entry.current_count

    # ------------------------------------------------------------------ #
    # Update interface
    # ------------------------------------------------------------------ #

    def update(self, record: BranchRecord) -> None:
        """Observe the resolved outcome of a (possibly loop-back) branch."""
        if not record.is_conditional or not record.is_backward:
            return
        index = self._index(record.pc)
        tag = self._tag(record.pc)
        entry = self.entries[index]
        if not entry.valid or entry.tag != tag:
            # Allocate only on a loop exit (a not-taken backward branch would
            # immediately give a bogus single-iteration loop); allocating on
            # a taken back-edge lets the entry start counting right away.
            if entry.valid and entry.confidence >= self.config.confidence_threshold:
                return  # keep a confident resident entry
            entry.valid = True
            entry.tag = tag
            entry.trip_count = 0
            entry.current_count = 1 if record.taken else 0
            entry.confidence = 0
            return

        if record.taken:
            if entry.current_count < self._max_count:
                entry.current_count += 1
            return

        # Loop exit observed: the completed trip count is current_count + 1
        # (the exit occurrence itself is the final iteration).
        observed_trip = entry.current_count + 1
        if observed_trip == entry.trip_count:
            if entry.confidence < self.config.max_confidence:
                entry.confidence += 1
        else:
            entry.trip_count = observed_trip
            entry.confidence = 0
        entry.current_count = 0

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def storage_bits(self) -> int:
        cfg = self.config
        entry_bits = (
            cfg.tag_bits
            + 2 * cfg.iteration_bits  # trip count and current count
            + cfg.max_confidence.bit_length()
            + 1  # valid bit
        )
        return cfg.entries * entry_bits
