"""Composite predictor configurations evaluated in the paper.

This module assembles every named configuration of the evaluation section
from the building blocks of the library:

* the two base predictors, ``tage-gsc`` and ``gehl``;
* their IMLI-augmented versions (``+sic``, ``+imli`` = SIC + OH);
* their local-history versions (``+l`` -- the TAGE-SC-L / FTL style
  configurations with local corrector tables and an active loop predictor);
* the combined ``+imli+l`` versions;
* the wormhole-augmented versions (``+wh``) used as the prior-art
  comparison.

The :func:`build` factory and the :data:`CONFIGURATIONS` registry are the
entry points used by the benchmark harness, the examples and the tests.
Two size profiles are provided: ``"default"`` (used by the benchmark
harness) and ``"small"`` (much smaller tables, used by the test suite to
keep runtimes low).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.common.history import LocalHistoryTable
from repro.core.component import NeuralComponent
from repro.core.imli_oh import IMLIOuterHistoryComponent
from repro.core.imli_sic import IMLISameIterationComponent
from repro.predictors.base import BranchPredictor
from repro.predictors.components import IMLICountHashedGlobalComponent, LocalHistoryComponent
from repro.predictors.gehl import GEHLConfig, GEHLPredictor
from repro.predictors.loop import LoopPredictor, LoopPredictorConfig
from repro.predictors.statistical_corrector import StatisticalCorrectorConfig
from repro.predictors.tage import TAGEConfig
from repro.predictors.tage_gsc import TAGEGSCConfig, TAGEGSCPredictor
from repro.predictors.wormhole import WormholePredictor, WormholePredictorConfig
from repro.trace.branch import BranchKind, BranchRecord

__all__ = [
    "CompositeOptions",
    "SharedCoreInfo",
    "SidecarPredictor",
    "SizeProfile",
    "build",
    "build_named",
    "configuration_names",
    "core_key_for",
    "factory",
    "CONFIGURATIONS",
]


# --------------------------------------------------------------------------- #
# Side predictor wrapper
# --------------------------------------------------------------------------- #


class _MutableBranchView:
    """Reusable, mutable record-shaped view used by the fast path.

    The loop and wormhole side predictors consume the record protocol
    (``pc``/``target``/``taken``/``is_conditional``/``is_backward``) but
    never retain the record, so one mutable instance per
    :class:`SidecarPredictor` replaces a fresh
    :class:`~repro.trace.branch.BranchRecord` allocation per branch.  Only
    conditional branches take the fast path, hence the constant
    ``is_conditional``.
    """

    __slots__ = ("pc", "target", "taken", "instruction_gap")

    is_conditional = True
    kind = BranchKind.CONDITIONAL

    def __init__(self) -> None:
        self.pc = 0
        self.target = 0
        self.taken = False
        self.instruction_gap = 0

    @property
    def is_backward(self) -> bool:
        return self.target < self.pc


class SidecarPredictor(BranchPredictor):
    """Wraps a main predictor with loop and/or wormhole side predictors.

    The override policy follows the paper:

    * the wormhole prediction, when confident, overrides everything;
    * the loop prediction overrides the main prediction only when
      ``use_loop_prediction`` is set (the "+L" configurations); in the
      "+WH" configurations the loop predictor is present purely to supply
      trip counts to WH (Section 3.3).
    """

    def __init__(
        self,
        main: BranchPredictor,
        loop_predictor: Optional[LoopPredictor] = None,
        wormhole: Optional[WormholePredictor] = None,
        use_loop_prediction: bool = True,
        name: Optional[str] = None,
    ) -> None:
        self.main = main
        self.loop_predictor = loop_predictor
        self.wormhole = wormhole
        self.use_loop_prediction = use_loop_prediction
        self.name = name or main.name
        self._main_prediction = True
        self._view = _MutableBranchView()
        # The combined-step fast path is exposed (as instance attributes, so
        # ``getattr`` probes see it) only when the wrapped main predictor
        # opts into the fast-path protocol itself.
        if hasattr(main, "predict_update") and hasattr(main, "observe_pc"):
            self.predict_update = self._predict_update_fast
            self.observe_pc = main.observe_pc

    def predict(self, record: BranchRecord) -> bool:
        prediction = self.main.predict(record)
        self._main_prediction = prediction
        if self.loop_predictor is not None and self.use_loop_prediction:
            loop_prediction = self.loop_predictor.predict(record)
            if loop_prediction is not None:
                prediction = loop_prediction
        if self.wormhole is not None:
            wormhole_prediction = self.wormhole.predict(record)
            if wormhole_prediction is not None:
                prediction = wormhole_prediction
        return prediction

    def update(self, record: BranchRecord, prediction: bool) -> None:
        self.main.update(record, self._main_prediction)
        if self.loop_predictor is not None:
            self.loop_predictor.update(record)
        if self.wormhole is not None:
            self.wormhole.update(
                record, main_mispredicted=self._main_prediction != record.taken
            )

    def _predict_update_fast(
        self, pc: int, target: int, taken: bool, kind: int = 0, gap: int = 0
    ) -> bool:
        """Combined predict-and-update fast path.

        The main predictor is trained through its own combined step before
        the side predictors run; that reordering is safe because neither
        side predictor reads the main predictor's state.  The side
        predictors keep their reference-path relative order (both predict,
        then both update).
        """
        main_prediction = self.main.predict_update(pc, target, taken, kind, gap)
        self._main_prediction = main_prediction
        prediction = main_prediction
        view = self._view
        view.pc = pc
        view.target = target
        view.taken = taken
        view.instruction_gap = gap
        loop_predictor = self.loop_predictor
        wormhole = self.wormhole
        if loop_predictor is not None and self.use_loop_prediction:
            loop_prediction = loop_predictor.predict(view)
            if loop_prediction is not None:
                prediction = loop_prediction
        if wormhole is not None:
            wormhole_prediction = wormhole.predict(view)
            if wormhole_prediction is not None:
                prediction = wormhole_prediction
        if loop_predictor is not None:
            loop_predictor.update(view)
        if wormhole is not None:
            wormhole.update(view, main_mispredicted=main_prediction != taken)
        return prediction

    def observe_unconditional(self, record: BranchRecord) -> None:
        self.main.observe_unconditional(record)

    def storage_bits(self) -> int:
        bits = self.main.storage_bits()
        if self.loop_predictor is not None:
            bits += self.loop_predictor.storage_bits()
        if self.wormhole is not None:
            bits += self.wormhole.storage_bits()
        return bits


# --------------------------------------------------------------------------- #
# Size profiles
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SizeProfile:
    """Scaled table geometries for one size profile.

    Custom profiles are registered through
    :meth:`repro.api.registry.Registry.register_profile`; the two built-in
    profiles live in the default registry under the names ``"default"`` and
    ``"small"``.
    """

    tage: TAGEConfig
    corrector: StatisticalCorrectorConfig
    gehl: GEHLConfig
    sic_entries: int
    oh_prediction_entries: int
    local_entries: int
    local_history_lengths: Sequence[int]
    local_table_size: int
    local_table_history_bits: int
    loop_entries: int


#: Backwards-compatible alias (the class was private before the API layer).
_SizeProfile = SizeProfile


_PROFILES: Dict[str, SizeProfile] = {
    "default": SizeProfile(
        tage=TAGEConfig(),
        corrector=StatisticalCorrectorConfig(),
        gehl=GEHLConfig(),
        sic_entries=512,
        oh_prediction_entries=256,
        local_entries=1024,
        local_history_lengths=(6, 11, 16),
        local_table_size=256,
        local_table_history_bits=16,
        loop_entries=16,
    ),
    "small": SizeProfile(
        tage=TAGEConfig(
            num_tables=6,
            table_entries=256,
            base_entries=1024,
            max_history=80,
            useful_reset_period=4096,
        ),
        corrector=StatisticalCorrectorConfig(
            bias_entries=256,
            global_table_entries=256,
            global_history_lengths=(4, 9, 18),
        ),
        gehl=GEHLConfig(
            num_tables=5,
            table_entries=256,
            bias_entries=256,
            max_history=64,
        ),
        sic_entries=256,
        oh_prediction_entries=256,
        local_entries=256,
        local_history_lengths=(5, 10),
        local_table_size=128,
        local_table_history_bits=12,
        loop_entries=16,
    ),
}


# --------------------------------------------------------------------------- #
# Configuration options and builder
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompositeOptions:
    """Feature switches for one composite configuration.

    Attributes
    ----------
    base:
        ``"tage-gsc"`` or ``"gehl"``.
    imli_sic / imli_oh:
        Add the IMLI-SIC / IMLI-OH components to the neural part.
    local:
        Add local-history corrector tables and activate the loop predictor
        (the "+L" configurations of Tables 1 and 2).
    loop:
        Add only the loop predictor as an active side predictor (used to
        reproduce the Section 4.2.2 observation that the loop predictor
        adds little once IMLI-SIC is present).
    wormhole:
        Add the wormhole side predictor (with a loop predictor supplying
        trip counts but not predictions).
    imli_global_tables:
        Number of additional global-history tables whose index also hashes
        the IMLI counter (the optional refinement of Section 4.2; used by
        the ablation benchmarks).
    oh_update_delay:
        Delay, in conditional branches, applied to IMLI history table
        updates (Section 4.3.2 delayed-update experiment).
    """

    base: str = "tage-gsc"
    imli_sic: bool = False
    imli_oh: bool = False
    local: bool = False
    loop: bool = False
    wormhole: bool = False
    imli_global_tables: int = 0
    oh_update_delay: int = 0

    def label(self) -> str:
        """Configuration label used in reports (e.g. ``tage-gsc+imli``)."""
        parts = [self.base]
        if self.imli_sic and self.imli_oh:
            parts.append("imli")
        elif self.imli_sic:
            parts.append("sic")
        elif self.imli_oh:
            parts.append("oh")
        if self.imli_global_tables:
            parts.append("imlihash")
        if self.local:
            parts.append("l")
        elif self.loop:
            parts.append("loop")
        if self.wormhole:
            parts.append("wh")
        return "+".join(parts)


# --------------------------------------------------------------------------- #
# Shared-core decomposition
# --------------------------------------------------------------------------- #
#
# Every composite splits into a *core* -- the structures whose evolution
# depends only on the branch stream -- and a *head* -- everything whose
# behaviour depends on the configuration's corrector/sidecar knobs:
#
# * ``tage-gsc`` core: the :class:`SharedState` (global/path history, folded
#   registers, IMLI counter, optional local-history table) plus the
#   :class:`TAGEEngine`.  The TAGE engine's training
#   (``train_fields(pc, taken, ctx)``) never reads the corrector or the
#   final prediction, and the shared state advances as a pure function of
#   the branch fields, so N configurations with identical core geometry
#   evolve byte-identical cores regardless of their heads.
# * ``gehl`` core: the :class:`SharedState` only (the whole adder tree is
#   head; sharing the state still dedupes the folded-history maintenance
#   across heads, since registered folds are shape-deduplicated pure
#   functions of the global history).
#
# ``core_key_for`` captures exactly the knobs the core depends on;
# everything else (IMLI-SIC/OH, ``oh_update_delay``, corrector sizing,
# loop/wormhole sidecars, IMLI-hashed global tables) is head-only.
# :mod:`repro.predictors.shared_core` uses this decomposition to drive one
# core step and N head steps per branch for a batch of same-key specs.


@dataclass(frozen=True)
class SharedCoreInfo:
    """How a composite predictor decomposes for shared-core batching.

    Attached by :func:`build` to every options-based predictor as the
    ``shared_core`` attribute: the hashable ``key`` groups batch members
    that can share one core, and ``options`` / ``sizes`` let
    :mod:`repro.predictors.shared_core` rebuild the member as a light head
    over a shared core.
    """

    key: tuple
    options: CompositeOptions
    sizes: SizeProfile


def core_key_for(options: CompositeOptions, sizes: SizeProfile) -> tuple:
    """Hashable identity of the core that ``(options, sizes)`` would build.

    Two specs whose keys compare equal evolve byte-identical cores over any
    branch stream, so a batch of them can compute that core once per branch.
    The key covers the base kind, the full base-engine geometry
    (:class:`~repro.predictors.tage.TAGEConfig` /
    :class:`~repro.predictors.gehl.GEHLConfig`, both frozen all-scalar
    dataclasses) and the local-history-table geometry (``None`` without
    ``local`` -- a ``+l`` spec never shares a core with a global-only one,
    since the local table lives in the shared state).  Head-only knobs
    (``imli_sic``, ``imli_oh``, ``oh_update_delay``, ``loop``, ``wormhole``,
    ``imli_global_tables``, corrector sizing) deliberately do not appear.
    """
    local_geometry = (
        (sizes.local_table_size, sizes.local_table_history_bits)
        if options.local
        else None
    )
    if options.base == "tage-gsc":
        return ("tage-gsc", sizes.tage, local_geometry)
    if options.base == "gehl":
        return ("gehl", sizes.gehl, local_geometry)
    raise ValueError(f"unknown base predictor {options.base!r}")


def _head_components(
    options: CompositeOptions, sizes: SizeProfile
) -> List[NeuralComponent]:
    """Fresh extra adder-tree components for one head (no shared state yet)."""
    extra_components: List[NeuralComponent] = []
    if options.imli_sic:
        extra_components.append(
            IMLISameIterationComponent(entries=sizes.sic_entries)
        )
    if options.imli_oh:
        extra_components.append(
            IMLIOuterHistoryComponent(
                prediction_entries=sizes.oh_prediction_entries,
                update_delay=options.oh_update_delay,
            )
        )
    if options.local:
        extra_components.append(
            LocalHistoryComponent(
                history_lengths=list(sizes.local_history_lengths),
                entries=sizes.local_entries,
            )
        )
    return extra_components


def _imli_hashed_global(
    options: CompositeOptions, sizes: SizeProfile, state
) -> IMLICountHashedGlobalComponent:
    """The optional IMLI-hashed global tables, bound to ``state``."""
    entries = (
        sizes.corrector.global_table_entries
        if options.base == "tage-gsc"
        else sizes.gehl.table_entries
    )
    return IMLICountHashedGlobalComponent(
        state=state,
        history_lengths=[9, 18][: options.imli_global_tables],
        entries=entries,
    )


def _local_table(
    options: CompositeOptions, sizes: SizeProfile
) -> Optional[LocalHistoryTable]:
    """The shared local-history table of a ``+l`` configuration (core state)."""
    if not options.local:
        return None
    return LocalHistoryTable(sizes.local_table_size, sizes.local_table_history_bits)


def _sidecar_parts(options: CompositeOptions, sizes: SizeProfile) -> Optional[tuple]:
    """``(loop, wormhole, use_loop_prediction)`` for one head, or ``None``."""
    if not (options.local or options.loop or options.wormhole):
        return None
    loop_predictor = LoopPredictor(LoopPredictorConfig(entries=sizes.loop_entries))
    wormhole = (
        WormholePredictor(loop_predictor, WormholePredictorConfig())
        if options.wormhole
        else None
    )
    return loop_predictor, wormhole, options.local or options.loop


def build(
    options: CompositeOptions, profile: Union[str, SizeProfile] = "default"
) -> BranchPredictor:
    """Build the composite predictor described by ``options``.

    Parameters
    ----------
    options:
        Which base predictor and which side components to assemble.
    profile:
        Size profile: a profile name (``"default"`` for the benchmark
        harness, ``"small"`` for fast unit tests, or any name registered on
        the default registry) or a :class:`SizeProfile` instance.
    """
    if isinstance(profile, SizeProfile):
        sizes = profile
    elif profile in _PROFILES:
        sizes = _PROFILES[profile]
    else:
        raise KeyError(f"unknown size profile {profile!r}; known: {sorted(_PROFILES)}")

    extra_components = _head_components(options, sizes)
    local_table = _local_table(options, sizes)

    label = options.label()
    if options.base == "tage-gsc":
        main = TAGEGSCPredictor(
            config=TAGEGSCConfig(tage=sizes.tage, corrector=sizes.corrector),
            extra_sc_components=extra_components,
            local_history_table=local_table,
            name=label,
        )
        if options.imli_global_tables:
            # The IMLI-hashed global tables need the shared state, so they
            # are appended after the main predictor is built.
            main.corrector.adder.components.append(
                _imli_hashed_global(options, sizes, main.state)
            )
    elif options.base == "gehl":
        main = GEHLPredictor(
            config=sizes.gehl,
            extra_components=extra_components,
            local_history_table=local_table,
            name=label,
        )
        if options.imli_global_tables:
            main.adder.components.append(
                _imli_hashed_global(options, sizes, main.state)
            )
    else:
        raise ValueError(f"unknown base predictor {options.base!r}")

    sidecars = _sidecar_parts(options, sizes)
    if sidecars is None:
        predictor: BranchPredictor = main
    else:
        loop_predictor, wormhole, use_loop_prediction = sidecars
        predictor = SidecarPredictor(
            main,
            loop_predictor=loop_predictor,
            wormhole=wormhole,
            use_loop_prediction=use_loop_prediction,
            name=label,
        )
    predictor.shared_core = SharedCoreInfo(
        key=core_key_for(options, sizes), options=options, sizes=sizes
    )
    return predictor


# --------------------------------------------------------------------------- #
# Named configuration registry
# --------------------------------------------------------------------------- #


def _registry() -> Dict[str, CompositeOptions]:
    configurations: Dict[str, CompositeOptions] = {}
    for base in ("tage-gsc", "gehl"):
        configurations[base] = CompositeOptions(base=base)
        configurations[f"{base}+sic"] = CompositeOptions(base=base, imli_sic=True)
        configurations[f"{base}+oh"] = CompositeOptions(base=base, imli_oh=True)
        configurations[f"{base}+imli"] = CompositeOptions(
            base=base, imli_sic=True, imli_oh=True
        )
        configurations[f"{base}+l"] = CompositeOptions(base=base, local=True)
        configurations[f"{base}+imli+l"] = CompositeOptions(
            base=base, imli_sic=True, imli_oh=True, local=True
        )
        configurations[f"{base}+loop"] = CompositeOptions(base=base, loop=True)
        configurations[f"{base}+sic+loop"] = CompositeOptions(
            base=base, imli_sic=True, loop=True
        )
        configurations[f"{base}+wh"] = CompositeOptions(base=base, wormhole=True)
        configurations[f"{base}+sic+wh"] = CompositeOptions(
            base=base, imli_sic=True, wormhole=True
        )
    # The paper's TAGE-SC-L is TAGE-GSC with local history and the loop
    # predictor activated; the "record" configuration adds the IMLI
    # components on top (Section 5).
    configurations["tage-sc-l"] = CompositeOptions(base="tage-gsc", local=True)
    configurations["tage-sc-l+imli"] = CompositeOptions(
        base="tage-gsc", imli_sic=True, imli_oh=True, local=True
    )
    return configurations


#: The paper's named configurations.  This dict doubles as the option store
#: of the default :class:`repro.api.registry.Registry`, so configurations
#: registered there (``register_configuration``) appear here too and vice
#: versa.  Prefer the registry for new code; this name is kept as a
#: backwards-compatible view.
CONFIGURATIONS: Dict[str, CompositeOptions] = _registry()


def configuration_names() -> List[str]:
    """Names of all registered configurations (options- and builder-based)."""
    from repro.api.registry import default_registry

    return default_registry().names()


def build_named(name: str, profile: str = "default") -> BranchPredictor:
    """Build one of the registered configurations by name.

    Thin shim over :meth:`repro.api.registry.Registry.build` on the default
    registry, kept for backwards compatibility.
    """
    from repro.api.registry import default_registry

    return default_registry().build(name, profile=profile)


def factory(name: str, profile: str = "default") -> Callable[[], BranchPredictor]:
    """Return a zero-argument factory for a registered configuration.

    The simulation runner builds a fresh predictor per trace, so factories
    rather than instances are passed around.
    """
    def _build() -> BranchPredictor:
        return build_named(name, profile=profile)

    return _build
