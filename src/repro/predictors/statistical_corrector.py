"""The (global-history) statistical corrector.

In TAGE-SC-L the statistical corrector (SC) is a small neural predictor
that confirms -- or, rarely, reverts -- the TAGE prediction when TAGE has
statistically mispredicted in similar circumstances (Section 3.2.1 of the
paper, Figure 5).  The corrector used here is the *global history*
statistical corrector (GSC): bias tables indexed with the PC (and with the
PC hashed with the TAGE prediction) plus a few global-history tables.

The IMLI-SIC and IMLI-OH components of the paper, and the local-history
tables of the "+L" configurations, plug into the same adder tree through
``extra_components``.

Decision rule: the corrector sum is computed over all components; when the
corrector disagrees with TAGE *and* the magnitude of its sum exceeds a
small confidence margin, the corrector's sign replaces the TAGE prediction,
otherwise the TAGE prediction stands.  This mirrors the role of the SC in
TAGE-SC-L: it reverts the main prediction only when it is confident, which
in practice happens rarely (TAGE is usually right and the PC+TAGE bias
tables then dominate the sum in TAGE's favour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.component import NeuralComponent, SharedState
from repro.predictors.adder import AdderTree
from repro.predictors.components import BiasComponent, GlobalHistoryComponent
from repro.trace.branch import BranchRecord

__all__ = ["StatisticalCorrectorConfig", "StatisticalCorrector", "CorrectorContext"]


@dataclass(frozen=True)
class StatisticalCorrectorConfig:
    """Geometry of the statistical corrector."""

    bias_entries: int = 1024
    counter_bits: int = 6
    global_table_entries: int = 512
    global_history_lengths: Sequence[int] = (4, 9, 16, 27, 44)
    initial_threshold: int = 6
    #: Minimum |sum| for the corrector to revert the TAGE prediction.
    revert_margin: int = 5

    def __post_init__(self) -> None:
        if not self.global_history_lengths:
            raise ValueError("the corrector needs at least one global history length")
        if self.revert_margin < 0:
            raise ValueError(
                f"revert margin must be non-negative, got {self.revert_margin}"
            )


@dataclass
class CorrectorContext:
    """Prediction-time context cached between predict() and update()."""

    total: int = 0
    selections: list = field(default_factory=list)
    corrector_prediction: bool = True
    final_prediction: bool = True
    reverted: bool = False


class StatisticalCorrector:
    """Global-history statistical corrector over a shared fetch state."""

    def __init__(
        self,
        state: SharedState,
        config: Optional[StatisticalCorrectorConfig] = None,
        extra_components: Sequence[NeuralComponent] = (),
    ) -> None:
        self.config = config or StatisticalCorrectorConfig()
        self.state = state
        components: List[NeuralComponent] = [
            BiasComponent(
                entries=self.config.bias_entries,
                counter_bits=self.config.counter_bits,
                use_tage_prediction=True,
            ),
            GlobalHistoryComponent(
                state=state,
                history_lengths=list(self.config.global_history_lengths),
                entries=self.config.global_table_entries,
                counter_bits=self.config.counter_bits,
            ),
        ]
        components.extend(extra_components)
        self.adder = AdderTree(
            components, initial_threshold=self.config.initial_threshold
        )

    def predict(self, pc: int, tage_prediction: bool) -> CorrectorContext:
        """Compute the corrected prediction for ``pc``.

        ``state.tage_prediction`` must already be set so the bias component
        can index its TAGE-hashed table; it is passed explicitly as well to
        keep the decision logic readable.
        """
        return self.predict_into(pc, tage_prediction, CorrectorContext())

    def predict_into(
        self, pc: int, tage_prediction: bool, context: CorrectorContext
    ) -> CorrectorContext:
        """Fill ``context`` (reusable scratch) with the corrected prediction."""
        total, selections = self.adder.compute(pc, self.state)
        return self._decide(total, selections, tage_prediction, context)

    def predict_into_shared(
        self,
        pc: int,
        tage_prediction: bool,
        context: CorrectorContext,
        shared_component,
        shared_indices,
    ) -> CorrectorContext:
        """:meth:`predict_into` with one component's indices precomputed.

        Used by the shared-core batch executor
        (:mod:`repro.predictors.shared_core`): the global-history table
        indices are identical for every corrector head over one shared
        state, so the group hashes them once and each head only reads its
        own counters.  Bit-identical to :meth:`predict_into`.
        """
        total, selections = self.adder.compute_with_shared(
            pc, self.state, shared_component, shared_indices
        )
        return self._decide(total, selections, tage_prediction, context)

    def _decide(
        self,
        total: int,
        selections: list,
        tage_prediction: bool,
        context: CorrectorContext,
    ) -> CorrectorContext:
        """Apply the confidence-margin revert rule to a computed sum."""
        context.total = total
        context.selections = selections
        corrector_prediction = total >= 0
        context.corrector_prediction = corrector_prediction
        if corrector_prediction != tage_prediction and (
            total if total >= 0 else -total
        ) >= self.config.revert_margin:
            context.final_prediction = corrector_prediction
            context.reverted = True
        else:
            context.final_prediction = tage_prediction
            context.reverted = False
        return context

    def train(self, record: BranchRecord, context: CorrectorContext) -> None:
        """Train the corrector with the resolved outcome."""
        force = context.final_prediction != record.taken
        self.adder.train(
            record, context.total, context.selections, self.state, force=force
        )

    def train_fields(
        self, pc: int, target: int, taken: bool, context: CorrectorContext
    ) -> None:
        """Field-based form of :meth:`train` (the per-branch hot path)."""
        self.adder.train_fields(
            pc,
            target,
            taken,
            context.total,
            context.selections,
            self.state,
            force=context.final_prediction != taken,
        )

    def storage_bits(self) -> int:
        return self.adder.storage_bits()

    def speculative_state_bits(self) -> int:
        return self.adder.speculative_state_bits()

    def component_storage_breakdown(self) -> List[tuple]:
        """Per-component storage report (name, bits)."""
        return self.adder.component_storage_breakdown()
