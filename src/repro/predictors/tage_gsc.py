"""The TAGE-GSC predictor: TAGE backed by a global-history statistical corrector.

This is base predictor #1 of the paper (Section 3.2.1, Figure 4): the exact
TAGE-SC-L structure of the CBP4 winner with the loop predictor and the
local-history corrector components deactivated, leaving only global-history
state.  The IMLI components (and, for the "+L" configurations, the
local-history components) are added to the statistical corrector through
``extra_sc_components``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.history import LocalHistoryTable
from repro.core.component import NeuralComponent, SharedState
from repro.predictors.base import BranchPredictor
from repro.predictors.statistical_corrector import (
    CorrectorContext,
    StatisticalCorrector,
    StatisticalCorrectorConfig,
)
from repro.predictors.tage import TAGEConfig, TAGEEngine, TAGEPrediction
from repro.trace.branch import BranchRecord

__all__ = ["TAGEGSCConfig", "TAGEGSCPredictor"]


@dataclass(frozen=True)
class TAGEGSCConfig:
    """Configuration of the TAGE-GSC composite."""

    tage: TAGEConfig = TAGEConfig()
    corrector: StatisticalCorrectorConfig = StatisticalCorrectorConfig()
    history_capacity: int = 1024
    path_capacity: int = 32
    imli_counter_bits: int = 10


class TAGEGSCPredictor(BranchPredictor):
    """TAGE + global-history statistical corrector.

    Parameters
    ----------
    config:
        Geometry of both the TAGE engine and the corrector.
    extra_sc_components:
        Extra adder-tree inputs for the statistical corrector: the
        IMLI-SIC / IMLI-OH components of the paper or local-history tables.
    local_history_table:
        Shared local history table, required when local-history components
        are among ``extra_sc_components``.
    name:
        Report name of the configuration (defaults to ``"tage-gsc"``).
    """

    def __init__(
        self,
        config: Optional[TAGEGSCConfig] = None,
        extra_sc_components: Sequence[NeuralComponent] = (),
        local_history_table: Optional[LocalHistoryTable] = None,
        name: str = "tage-gsc",
    ) -> None:
        self.name = name
        self.config = config or TAGEGSCConfig()
        history_capacity = max(
            self.config.history_capacity, self.config.tage.max_history + 1
        )
        self.state = SharedState(
            history_capacity=history_capacity,
            path_capacity=self.config.path_capacity,
            imli_counter_bits=self.config.imli_counter_bits,
            local_history_table=local_history_table,
        )
        self.tage = TAGEEngine(self.state, self.config.tage)
        self.corrector = StatisticalCorrector(
            self.state, self.config.corrector, extra_components=extra_sc_components
        )
        self._tage_ctx: Optional[TAGEPrediction] = None
        self._sc_ctx: Optional[CorrectorContext] = None
        num_tables = self.config.tage.num_tables
        self._tage_scratch = TAGEPrediction(
            indices=[0] * num_tables, tags=[0] * num_tables
        )
        self._sc_scratch = CorrectorContext()

    def predict(self, record: BranchRecord) -> bool:
        tage_ctx = self.tage.predict(record.pc)
        self.state.tage_prediction = tage_ctx.prediction
        sc_ctx = self.corrector.predict(record.pc, tage_ctx.prediction)
        self._tage_ctx = tage_ctx
        self._sc_ctx = sc_ctx
        return sc_ctx.final_prediction

    def update(self, record: BranchRecord, prediction: bool) -> None:
        if self._tage_ctx is None or self._sc_ctx is None:
            raise RuntimeError("update() called before predict()")
        self.tage.train(record, self._tage_ctx)
        self.corrector.train(record, self._sc_ctx)
        self.state.update_conditional(record)

    def predict_update(
        self, pc: int, target: int, taken: bool, kind: int = 0, gap: int = 0
    ) -> bool:
        """Combined predict-and-train fast path (see ``docs/PERFORMANCE.md``)."""
        state = self.state
        tage = self.tage
        tage_ctx = tage.predict_into(pc, self._tage_scratch)
        tage_prediction = tage_ctx.prediction
        state.tage_prediction = tage_prediction
        sc_ctx = self.corrector.predict_into(pc, tage_prediction, self._sc_scratch)
        prediction = sc_ctx.final_prediction
        tage.train_fields(pc, taken, tage_ctx)
        self.corrector.train_fields(pc, target, taken, sc_ctx)
        state.update_conditional_fields(pc, target, taken)
        return prediction

    def observe_unconditional(self, record: BranchRecord) -> None:
        self.state.update_unconditional(record)

    def observe_pc(self, pc: int) -> None:
        self.state.observe_pc(pc)

    def storage_bits(self) -> int:
        return (
            self.tage.storage_bits()
            + self.corrector.storage_bits()
            + self.state.storage_bits()
        )

    def speculative_state_bits(self) -> int:
        """Per-checkpoint speculative state (history pointers, IMLI, PIPE)."""
        return self.state.checkpoint_bits() + self.corrector.speculative_state_bits()
