"""The Inner Most Loop Iteration (IMLI) counter.

Section 4.1 of the paper defines the IMLI counter as *the number of times
that the last encountered backward conditional branch has been consecutively
taken*, tracked at instruction fetch time with the heuristic::

    if backward:
        if taken: IMLIcount += 1
        else:     IMLIcount = 0

Backward conditional branches are treated as loop back-edges, so the counter
is (approximately) the iteration index of the dynamically inner-most loop.
The counter is a handful of bits (10 in the paper's configuration) and its
speculative state is checkpointed like the global history head pointer,
which is the key practicality argument of the paper.
"""

from __future__ import annotations

from repro.trace.branch import BranchRecord

__all__ = ["IMLIState"]


class IMLIState:
    """Tracks the Inner Most Loop Iteration counter.

    Parameters
    ----------
    counter_bits:
        Width of the hardware counter.  The count saturates at
        ``2**counter_bits - 1`` (it does not wrap), matching a saturating
        hardware register.
    """

    __slots__ = ("counter_bits", "maximum", "count")

    def __init__(self, counter_bits: int = 10) -> None:
        if counter_bits <= 0:
            raise ValueError(f"counter width must be positive, got {counter_bits}")
        self.counter_bits = counter_bits
        self.maximum = (1 << counter_bits) - 1
        self.count = 0

    def update(self, record: BranchRecord) -> None:
        """Apply the IMLI heuristic for one resolved conditional branch."""
        if not record.is_conditional or not record.is_backward:
            return
        if record.taken:
            if self.count < self.maximum:
                self.count += 1
        else:
            self.count = 0

    def observe(self, is_backward: bool, taken: bool) -> None:
        """Apply the heuristic from raw fields (used by speculative tracking)."""
        if not is_backward:
            return
        if taken:
            if self.count < self.maximum:
                self.count += 1
        else:
            self.count = 0

    def snapshot(self) -> int:
        """Return the counter value for checkpointing."""
        return self.count

    def restore(self, snapshot: int) -> None:
        """Restore a counter value saved by :meth:`snapshot`."""
        if not 0 <= snapshot <= self.maximum:
            raise ValueError(
                f"snapshot {snapshot} outside [0, {self.maximum}] for "
                f"{self.counter_bits}-bit IMLI counter"
            )
        self.count = snapshot

    def reset(self) -> None:
        """Clear the counter."""
        self.count = 0

    def storage_bits(self) -> int:
        """Number of state bits (the checkpointable cost of the counter)."""
        return self.counter_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IMLIState(count={self.count}, bits={self.counter_bits})"
