"""Neural predictor component interface and shared fetch state.

Both base predictors used in the paper -- the GEHL predictor and the
statistical corrector of TAGE-GSC -- are *adder trees*: they sum small
signed counters read from several tables and predict the sign of the sum.
The IMLI-SIC and IMLI-OH contributions of the paper are simply two more
tables feeding that sum, which is why they can be dropped into either
predictor family (Figures 5 and 6).

This module defines the plumbing that makes that composition possible:

* :class:`SharedState` -- the per-predictor fetch-time state every component
  may read: global branch history, global path history, per-table folded
  histories, the IMLI counter, an optional local history table and the TAGE
  prediction (for statistical-corrector bias tables).
* :class:`NeuralComponent` -- the interface of one adder-tree input: select
  counters at prediction time, train them at update time, and perform any
  private bookkeeping once the outcome is known.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.common.counters import SignedCounterArray
from repro.common.history import FoldedHistory, GlobalHistory, LocalHistoryTable, PathHistory
from repro.core.imli import IMLIState
from repro.trace.branch import BranchRecord

__all__ = ["CounterSelection", "NeuralComponent", "SharedState"]

#: A reference to one selected counter: (table, index).
CounterSelection = Tuple[SignedCounterArray, int]


class SharedState:
    """Fetch-time state shared by all components of one predictor.

    The owning predictor creates a single :class:`SharedState`, hands it to
    every component, and calls :meth:`update_conditional` /
    :meth:`update_unconditional` exactly once per dynamic branch *after*
    the components have been trained for that branch.

    Components that use folded global history must register their
    :class:`~repro.common.history.FoldedHistory` registers through
    :meth:`new_folded_history` so the shared state can keep them coherent
    with the global history register.
    """

    def __init__(
        self,
        history_capacity: int = 1024,
        path_capacity: int = 32,
        path_bits_per_branch: int = 2,
        imli_counter_bits: int = 10,
        local_history_table: Optional[LocalHistoryTable] = None,
    ) -> None:
        self.global_history = GlobalHistory(history_capacity)
        self.path_history = PathHistory(path_capacity, path_bits_per_branch)
        self.imli = IMLIState(imli_counter_bits)
        self.local_histories = local_history_table
        self.tage_prediction: Optional[bool] = None
        self._folded: List[FoldedHistory] = []
        # Hot mirror of ``_folded`` for the per-branch update loop: one
        # ``(register, dropped-bit mask, out-position mask, width, width
        # mask)`` row per non-trivial register, so the loop reads
        # precomputed locals instead of five attributes per register.
        # Zero-length folds are excluded (their update is a no-op).
        self._folded_hot: List[tuple] = []
        self._folded_by_shape: dict = {}

    def new_folded_history(self, length: int, width: int) -> FoldedHistory:
        """Create and register a folded view of the global history.

        A registered fold is a pure function of the shared global history,
        so two requests with the same ``(length, width)`` always hold
        identical values; the shared state therefore hands out one register
        per shape and updates it once per branch.  (TAGE's alternate tag
        folds, for example, coincide with its index folds whenever the
        index and alternate-tag widths match.)
        """
        shape = (length, width)
        folded = self._folded_by_shape.get(shape)
        if folded is not None:
            return folded
        folded = FoldedHistory(length, width)
        self._folded_by_shape[shape] = folded
        self._folded.append(folded)
        if length:
            self._folded_hot.append(
                (
                    folded,
                    1 << (length - 1),
                    1 << folded._out_position,
                    width,
                    folded.width_mask,
                )
            )
        return folded

    def update_conditional(self, record: BranchRecord) -> None:
        """Advance all shared histories with a resolved conditional branch."""
        self.update_conditional_fields(record.pc, record.target, record.taken)

    def update_conditional_fields(self, pc: int, target: int, taken: bool) -> None:
        """Field-based equivalent of :meth:`update_conditional`.

        This is the per-branch hot path: the folded-history maintenance is
        inlined (rather than calling :meth:`FoldedHistory.update` per
        register) because a large composite carries several dozen folded
        registers.
        """
        new_bit = 1 if taken else 0
        global_history = self.global_history
        history_bits = global_history.bits
        # Folded histories must observe the dropped bit *before* the global
        # history register shifts.
        for folded, drop_mask, out_mask, width, width_mask in self._folded_hot:
            fold = (folded.fold << 1) | new_bit
            if history_bits & drop_mask:
                fold ^= out_mask
            fold ^= fold >> width
            folded.fold = fold & width_mask
        global_history.bits = ((history_bits << 1) | new_bit) & global_history.capacity_mask
        if global_history.length < global_history.capacity:
            global_history.length += 1
        path_history = self.path_history
        path_history.bits = (
            (path_history.bits << path_history.bits_per_branch)
            | (pc & path_history.branch_mask)
        ) & path_history.capacity_mask
        # IMLI heuristic for a conditional branch (backward means target < pc).
        if target < pc:
            imli = self.imli
            if taken:
                if imli.count < imli.maximum:
                    imli.count += 1
            else:
                imli.count = 0
        if self.local_histories is not None:
            self.local_histories.update(pc, taken)

    def update_unconditional(self, record: BranchRecord) -> None:
        """Advance the path history with a non-conditional branch."""
        self.path_history.push(record.pc)

    def observe_pc(self, pc: int) -> None:
        """Field-based equivalent of :meth:`update_unconditional`."""
        self.path_history.push(pc)

    def storage_bits(self) -> int:
        """State bits held by the shared registers (histories + IMLI)."""
        bits = self.global_history.capacity
        bits += self.path_history.capacity
        bits += self.imli.storage_bits()
        if self.local_histories is not None:
            bits += self.local_histories.storage_bits()
        return bits

    def checkpoint_bits(self) -> int:
        """Bits a misprediction-recovery checkpoint of this state needs.

        Global and path history only need their head pointers checkpointed
        (the registers themselves are circular buffers); the IMLI counter is
        checkpointed in full.  Local histories are *not* checkpointable this
        way -- they require an associative in-flight window search -- which
        is the paper's argument against them (Section 2.3.2).
        """
        global_pointer_bits = max(self.global_history.capacity.bit_length(), 1)
        path_pointer_bits = max(self.path_history.capacity.bit_length(), 1)
        return global_pointer_bits + path_pointer_bits + self.imli.storage_bits()


class NeuralComponent(ABC):
    """One input of an adder-tree (neural) predictor.

    Subclasses provide prediction-table counters selected from the branch PC
    and the :class:`SharedState`.  The owning predictor sums the selected
    counters (together with those of every other component), predicts the
    sign of the sum and trains the selected counters with the standard
    GEHL/statistical-corrector threshold rule.
    """

    #: Human-readable component name used in storage breakdowns.
    name: str = "component"

    @abstractmethod
    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        """Return the counters this component contributes for branch ``pc``."""

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        """Return ``(selections, contribution)`` for branch ``pc``.

        The contribution is the component's centred adder-tree input,
        ``sum(2 * counter + 1)`` over the selected counters.  The default
        derives it from :meth:`select`; hot components override this with a
        fused implementation (the selected counter is already at hand when
        the index has just been computed).  Overrides must stay consistent
        with :meth:`select` -- the adder tree trains through the returned
        selections either way.
        """
        selections = self.select(pc, state)
        total = 0
        for table, index in selections:
            total += 2 * table.values[index] + 1
        return selections, total

    def train(
        self,
        pc: int,
        taken: bool,
        selections: List[CounterSelection],
        state: SharedState,
    ) -> None:
        """Train the counters selected at prediction time.

        The default moves every selected counter one step toward the
        outcome (the saturating-counter step is inlined -- this runs for
        every selected counter of every trained branch); components with
        bespoke training override this.
        """
        if taken:
            for table, index in selections:
                values = table.values
                value = values[index]
                if value < table.maximum:
                    values[index] = value + 1
        else:
            for table, index in selections:
                values = table.values
                value = values[index]
                if value > table.minimum:
                    values[index] = value - 1

    def on_outcome(self, record: BranchRecord, state: SharedState) -> None:
        """Bookkeeping hook invoked once per conditional branch outcome.

        Called after :meth:`train` and before the shared histories advance.
        Delegates to :meth:`on_outcome_fields`; components that maintain
        private structures (for example the IMLI outer-history table)
        override that method so the record-based and field-based call paths
        share one implementation.
        """
        self.on_outcome_fields(record.pc, record.target, record.taken, state)

    def on_outcome_fields(
        self, pc: int, target: int, taken: bool, state: SharedState
    ) -> None:
        """Field-based form of :meth:`on_outcome` (default: no bookkeeping)."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Number of storage bits the component's tables model."""

    def speculative_state_bits(self) -> int:
        """Bits of component state that must be checkpointed per branch.

        Zero for purely table-based components; the IMLI-OH component
        reports its PIPE vector here (Section 4.3.2 of the paper).
        """
        return 0
