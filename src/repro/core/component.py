"""Neural predictor component interface and shared fetch state.

Both base predictors used in the paper -- the GEHL predictor and the
statistical corrector of TAGE-GSC -- are *adder trees*: they sum small
signed counters read from several tables and predict the sign of the sum.
The IMLI-SIC and IMLI-OH contributions of the paper are simply two more
tables feeding that sum, which is why they can be dropped into either
predictor family (Figures 5 and 6).

This module defines the plumbing that makes that composition possible:

* :class:`SharedState` -- the per-predictor fetch-time state every component
  may read: global branch history, global path history, per-table folded
  histories, the IMLI counter, an optional local history table and the TAGE
  prediction (for statistical-corrector bias tables).
* :class:`NeuralComponent` -- the interface of one adder-tree input: select
  counters at prediction time, train them at update time, and perform any
  private bookkeeping once the outcome is known.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.common.counters import SignedCounterArray
from repro.common.history import FoldedHistory, GlobalHistory, LocalHistoryTable, PathHistory
from repro.core.imli import IMLIState
from repro.trace.branch import BranchRecord

__all__ = ["CounterSelection", "NeuralComponent", "SharedState"]

#: A reference to one selected counter: (table, index).
CounterSelection = Tuple[SignedCounterArray, int]


class SharedState:
    """Fetch-time state shared by all components of one predictor.

    The owning predictor creates a single :class:`SharedState`, hands it to
    every component, and calls :meth:`update_conditional` /
    :meth:`update_unconditional` exactly once per dynamic branch *after*
    the components have been trained for that branch.

    Components that use folded global history must register their
    :class:`~repro.common.history.FoldedHistory` registers through
    :meth:`new_folded_history` so the shared state can keep them coherent
    with the global history register.
    """

    def __init__(
        self,
        history_capacity: int = 1024,
        path_capacity: int = 32,
        path_bits_per_branch: int = 2,
        imli_counter_bits: int = 10,
        local_history_table: Optional[LocalHistoryTable] = None,
    ) -> None:
        self.global_history = GlobalHistory(history_capacity)
        self.path_history = PathHistory(path_capacity, path_bits_per_branch)
        self.imli = IMLIState(imli_counter_bits)
        self.local_histories = local_history_table
        self.tage_prediction: Optional[bool] = None
        self._folded: List[FoldedHistory] = []

    def new_folded_history(self, length: int, width: int) -> FoldedHistory:
        """Create and register a folded view of the global history."""
        folded = FoldedHistory(length, width)
        self._folded.append(folded)
        return folded

    def update_conditional(self, record: BranchRecord) -> None:
        """Advance all shared histories with a resolved conditional branch."""
        new_bit = int(record.taken)
        # Folded histories must observe the dropped bit *before* the global
        # history register shifts.
        for folded in self._folded:
            if folded.length == 0:
                continue
            dropped = self.global_history.bit(folded.length - 1)
            folded.update(new_bit, dropped)
        self.global_history.push(record.taken)
        self.path_history.push(record.pc)
        self.imli.update(record)
        if self.local_histories is not None:
            self.local_histories.update(record.pc, record.taken)

    def update_unconditional(self, record: BranchRecord) -> None:
        """Advance the path history with a non-conditional branch."""
        self.path_history.push(record.pc)

    def storage_bits(self) -> int:
        """State bits held by the shared registers (histories + IMLI)."""
        bits = self.global_history.capacity
        bits += self.path_history.capacity
        bits += self.imli.storage_bits()
        if self.local_histories is not None:
            bits += self.local_histories.storage_bits()
        return bits

    def checkpoint_bits(self) -> int:
        """Bits a misprediction-recovery checkpoint of this state needs.

        Global and path history only need their head pointers checkpointed
        (the registers themselves are circular buffers); the IMLI counter is
        checkpointed in full.  Local histories are *not* checkpointable this
        way -- they require an associative in-flight window search -- which
        is the paper's argument against them (Section 2.3.2).
        """
        global_pointer_bits = max(self.global_history.capacity.bit_length(), 1)
        path_pointer_bits = max(self.path_history.capacity.bit_length(), 1)
        return global_pointer_bits + path_pointer_bits + self.imli.storage_bits()


class NeuralComponent(ABC):
    """One input of an adder-tree (neural) predictor.

    Subclasses provide prediction-table counters selected from the branch PC
    and the :class:`SharedState`.  The owning predictor sums the selected
    counters (together with those of every other component), predicts the
    sign of the sum and trains the selected counters with the standard
    GEHL/statistical-corrector threshold rule.
    """

    #: Human-readable component name used in storage breakdowns.
    name: str = "component"

    @abstractmethod
    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        """Return the counters this component contributes for branch ``pc``."""

    def train(
        self,
        pc: int,
        taken: bool,
        selections: List[CounterSelection],
        state: SharedState,
    ) -> None:
        """Train the counters selected at prediction time.

        The default moves every selected counter one step toward the
        outcome; components with bespoke training override this.
        """
        for table, index in selections:
            table.update(index, taken)

    def on_outcome(self, record: BranchRecord, state: SharedState) -> None:
        """Bookkeeping hook invoked once per conditional branch outcome.

        Called after :meth:`train` and before the shared histories advance.
        Components that maintain private structures (for example the IMLI
        outer-history table) override this.
        """

    @abstractmethod
    def storage_bits(self) -> int:
        """Number of storage bits the component's tables model."""

    def speculative_state_bits(self) -> int:
        """Bits of component state that must be checkpointed per branch.

        Zero for purely table-based components; the IMLI-OH component
        reports its PIPE vector here (Section 4.3.2 of the paper).
        """
        return 0
