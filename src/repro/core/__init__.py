"""The paper's primary contribution: IMLI-based predictor components.

* :mod:`repro.core.imli` -- the Inner Most Loop Iteration counter itself.
* :mod:`repro.core.imli_sic` -- the IMLI-SIC (Same Iteration Correlation)
  prediction table.
* :mod:`repro.core.imli_oh` -- the IMLI-OH (Outer History) component: IMLI
  history table, PIPE vector and prediction table.
* :mod:`repro.core.component` -- the adder-tree component interface and the
  shared fetch-time state (histories, IMLI counter) these components plug
  into; the GEHL predictor and the TAGE-GSC statistical corrector in
  :mod:`repro.predictors` are built on the same interface.
* :mod:`repro.core.speculative` -- checkpoint-based speculative management
  of the IMLI state (the practicality argument of the paper).
"""

from repro.core.component import CounterSelection, NeuralComponent, SharedState
from repro.core.imli import IMLIState
from repro.core.imli_oh import IMLIOuterHistoryComponent
from repro.core.imli_sic import IMLISameIterationComponent
from repro.core.speculative import (
    IMLICheckpoint,
    SpeculativeIMLITracker,
    checkpoint_cost_bits,
)

__all__ = [
    "CounterSelection",
    "IMLICheckpoint",
    "IMLIOuterHistoryComponent",
    "IMLISameIterationComponent",
    "IMLIState",
    "NeuralComponent",
    "SharedState",
    "SpeculativeIMLITracker",
    "checkpoint_cost_bits",
]
