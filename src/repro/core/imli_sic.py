"""The IMLI-SIC (Same Iteration Correlation) predictor component.

Section 4.2 of the paper: some hard-to-predict branches encapsulated in
loops repeat (or nearly repeat) their behaviour for the same iteration
number of the inner-most loop, i.e. ``Out[N][M] == Out[N-1][M]``.  A single
prediction table indexed with a hash of the branch PC and the IMLI counter
captures this correlation.  The paper uses a 512-entry table of (6-bit)
counters added to the statistical corrector of TAGE-GSC or to the GEHL
adder tree.

The component has no per-branch speculative state of its own: the only
speculative state it depends on is the IMLI counter itself, which is
checkpointed by the owning predictor (a few tens of bits).
"""

from __future__ import annotations

from typing import List

from repro.common.bits import log2_exact, mask, mix_hash2
from repro.common.counters import SignedCounterArray
from repro.core.component import CounterSelection, NeuralComponent, SharedState

__all__ = ["IMLISameIterationComponent"]


class IMLISameIterationComponent(NeuralComponent):
    """Prediction table indexed with ``hash(PC, IMLIcount)``.

    Parameters
    ----------
    entries:
        Number of table entries (power of two).  The paper's configuration
        uses 512 entries.
    counter_bits:
        Width of the signed prediction counters (6 in the paper).
    """

    name = "imli-sic"

    def __init__(self, entries: int = 512, counter_bits: int = 6) -> None:
        self.index_bits = log2_exact(entries)
        self.index_mask = mask(self.index_bits)
        self.table = SignedCounterArray(entries, counter_bits)

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        return [(self.table, mix_hash2(pc, state.imli.count) & self.index_mask)]

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        table = self.table
        index = mix_hash2(pc, state.imli.count) & self.index_mask
        return [(table, index)], 2 * table.values[index] + 1

    def storage_bits(self) -> int:
        return self.table.storage_bits()
