"""Speculative-state management for the IMLI components.

The practicality argument of the paper (Sections 2.3 and 4.2.1/4.3.2) is
that the IMLI components, unlike local-history components and the wormhole
predictor, need only a *tiny checkpoint* per in-flight branch to recover
from mispredictions:

* the IMLI counter itself (10 bits), and
* the IMLI-OH PIPE vector (16 bits),

exactly like the global-history head pointer, whereas local-history
components require an associative search of the in-flight branch window on
every fetch cycle.

This module provides:

* :class:`IMLICheckpoint` -- an immutable snapshot of the speculative IMLI
  state taken at prediction time.
* :class:`SpeculativeIMLITracker` -- a fetch-time model that advances a
  *speculative* IMLI counter from predicted directions, checkpoints it per
  branch, and restores it when a misprediction is discovered.  The
  simulator in :mod:`repro.sim.checkpointing` uses it to demonstrate that
  checkpoint-based recovery reproduces the committed IMLI sequence.
* :func:`checkpoint_cost_bits` -- the per-checkpoint storage cost used in
  the storage/speculation report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.imli import IMLIState
from repro.core.imli_oh import IMLIOuterHistoryComponent

__all__ = [
    "IMLICheckpoint",
    "SpeculativeIMLITracker",
    "checkpoint_cost_bits",
]


@dataclass(frozen=True)
class IMLICheckpoint:
    """Snapshot of the speculative IMLI state for one in-flight branch."""

    imli_count: int
    pipe: Optional[Tuple[int, ...]] = None

    def bits(self, imli_counter_bits: int = 10) -> int:
        """Storage bits of this checkpoint."""
        pipe_bits = len(self.pipe) if self.pipe is not None else 0
        return imli_counter_bits + pipe_bits


def checkpoint_cost_bits(
    imli: IMLIState, outer_history: Optional[IMLIOuterHistoryComponent] = None
) -> int:
    """Bits that must be checkpointed per in-flight branch for IMLI state."""
    bits = imli.storage_bits()
    if outer_history is not None:
        bits += outer_history.speculative_state_bits()
    return bits


class SpeculativeIMLITracker:
    """Fetch-time speculative IMLI counter with checkpoint/restore.

    The tracker mirrors what the front end of a superscalar processor would
    do: the speculative counter advances using *predicted* branch
    directions, a checkpoint is associated with every in-flight branch, and
    when a branch resolves as mispredicted the checkpoint taken at its
    prediction is restored and the counter is advanced with the *correct*
    outcome of the resolving branch.
    """

    def __init__(
        self,
        counter_bits: int = 10,
        outer_history: Optional[IMLIOuterHistoryComponent] = None,
    ) -> None:
        self.speculative = IMLIState(counter_bits)
        self.outer_history = outer_history

    @property
    def count(self) -> int:
        """Current speculative IMLI counter value."""
        return self.speculative.count

    def checkpoint(self) -> IMLICheckpoint:
        """Take a checkpoint *before* the current branch is speculated."""
        pipe = (
            self.outer_history.snapshot_pipe()
            if self.outer_history is not None
            else None
        )
        return IMLICheckpoint(imli_count=self.speculative.count, pipe=pipe)

    def speculate(self, is_backward: bool, predicted_taken: bool) -> None:
        """Advance the speculative counter with a predicted direction."""
        self.speculative.observe(is_backward, predicted_taken)

    def recover(
        self, checkpoint: IMLICheckpoint, is_backward: bool, actual_taken: bool
    ) -> None:
        """Repair the speculative state after a misprediction.

        ``checkpoint`` is the snapshot taken when the mispredicted branch
        was fetched; the counter is restored to it and then advanced with
        the branch's *actual* outcome, exactly as hardware would resume
        fetch on the correct path.
        """
        self.speculative.restore(checkpoint.imli_count)
        if self.outer_history is not None and checkpoint.pipe is not None:
            self.outer_history.restore_pipe(checkpoint.pipe)
        self.speculative.observe(is_backward, actual_taken)

    def checkpoint_bits(self) -> int:
        """Size in bits of one checkpoint produced by this tracker."""
        return checkpoint_cost_bits(self.speculative, self.outer_history)
