"""The IMLI-OH (Outer History) predictor component.

Section 4.3 of the paper: for a branch B in the inner loop of a
two-dimensional loop nest, the outcome ``Out[N][M]`` is sometimes
correlated with the outcomes of the *same branch* in neighbouring inner
iterations of the *previous outer iteration*, ``Out[N-1][M]`` and
``Out[N-1][M-1]`` -- the correlation targeted by the wormhole predictor.

IMLI-OH recovers those two outcomes with two small structures:

* The **IMLI history table** (1 Kbit in the paper): outcome of branch B is
  stored at address ``(B * 64) + IMLIcount``, i.e. the table holds, per
  tracked branch, one outcome per inner-loop iteration number.  When
  predicting ``Out[N][M]``, the entry at ``(B, M)`` still holds
  ``Out[N-1][M]`` because the current outer iteration has not reached it
  yet.
* The **PIPE vector** (Previous Inner iteration in Previous External
  iteration, 16 bits): before the entry at ``(B, M)`` is overwritten with
  the new outcome, its old value is staged into ``PIPE[B]`` so that on the
  *next* inner iteration it still provides ``Out[N-1][M-1]`` even though the
  history table entry was already overwritten.

The IMLI-OH prediction table (256 entries in the paper) is indexed with the
PC hashed with the two recovered outcome bits and feeds the same adder tree
as IMLI-SIC.

Speculative state: only the 16-bit PIPE vector (plus the IMLI counter
handled by the owning predictor) needs checkpointing.  Precise speculative
management of the history table is not required; the paper validates this
with a delayed-update experiment which :class:`IMLIOuterHistoryComponent`
reproduces through its ``update_delay`` parameter.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.common.bits import hash_pc, log2_exact, mask, mix_hash3
from repro.common.counters import SignedCounterArray
from repro.core.component import CounterSelection, NeuralComponent, SharedState

__all__ = ["IMLIOuterHistoryComponent"]


class IMLIOuterHistoryComponent(NeuralComponent):
    """IMLI outer-history tracking plus its prediction table.

    Parameters
    ----------
    prediction_entries:
        Entries of the IMLI-OH prediction table (256 in the paper).
    counter_bits:
        Width of the signed prediction counters (6 in the paper).
    tracked_branches:
        Number of distinct branch slots in the IMLI history table (16 in
        the paper -- the PIPE vector has one bit per slot).
    iterations_per_branch:
        Inner-loop iteration numbers tracked per branch slot (64 in the
        paper; ``tracked_branches * iterations_per_branch`` is the history
        table size in bits, 1 Kbit in the paper).
    update_delay:
        Number of subsequent conditional branches after which a branch's
        write into the IMLI history table becomes visible.  ``0`` models
        immediate update; the paper's experiment uses 63 to model a very
        large instruction window (Section 4.3.2).
    """

    name = "imli-oh"

    def __init__(
        self,
        prediction_entries: int = 256,
        counter_bits: int = 6,
        tracked_branches: int = 16,
        iterations_per_branch: int = 64,
        update_delay: int = 0,
    ) -> None:
        if update_delay < 0:
            raise ValueError(f"update delay must be non-negative, got {update_delay}")
        self.prediction_index_bits = log2_exact(prediction_entries)
        self.prediction_index_mask = mask(self.prediction_index_bits)
        self.branch_index_bits = log2_exact(tracked_branches)
        self._branch_index_mask = mask(self.branch_index_bits)
        self.iterations_per_branch = iterations_per_branch
        self.tracked_branches = tracked_branches
        self.table = SignedCounterArray(prediction_entries, counter_bits)
        # One outcome bit per (branch slot, inner iteration number).
        self.history = [0] * (tracked_branches * iterations_per_branch)
        # PIPE vector: one staged bit per branch slot.
        self.pipe = [0] * tracked_branches
        self.update_delay = update_delay
        # Pending history-table writes: (cell, outcome, due_tick).  The PIPE
        # vector is always updated immediately -- it is speculative,
        # checkpointed state, not a commit-time table (Section 4.3.2).
        self._pending: Deque[Tuple[int, int, int]] = deque()
        self._tick = 0

    # ------------------------------------------------------------------ #
    # Outer-history recovery
    # ------------------------------------------------------------------ #

    def _slot(self, pc: int) -> int:
        return hash_pc(pc, self.branch_index_bits)

    def _cell(self, slot: int, imli_count: int) -> int:
        return slot * self.iterations_per_branch + (imli_count % self.iterations_per_branch)

    def recovered_outcomes(self, pc: int, imli_count: int) -> Tuple[int, int]:
        """Return ``(Out[N-1][M], Out[N-1][M-1])`` for branch ``pc``.

        ``Out[N-1][M]`` comes from the IMLI history table, ``Out[N-1][M-1]``
        from the PIPE vector (see the module docstring for why).
        """
        slot = self._slot(pc)
        previous_outer_same = self.history[self._cell(slot, imli_count)]
        previous_outer_previous = self.pipe[slot]
        return previous_outer_same, previous_outer_previous

    # ------------------------------------------------------------------ #
    # NeuralComponent interface
    # ------------------------------------------------------------------ #

    def select(self, pc: int, state: SharedState) -> List[CounterSelection]:
        slot = self._slot(pc)
        same = self.history[
            slot * self.iterations_per_branch
            + (state.imli.count % self.iterations_per_branch)
        ]
        index = mix_hash3(pc, same, 2 * self.pipe[slot]) & self.prediction_index_mask
        return [(self.table, index)]

    def select_sum(self, pc: int, state: SharedState) -> tuple:
        width = self.branch_index_bits
        slot = (pc ^ (pc >> width) ^ (pc >> (2 * width))) & self._branch_index_mask
        same = self.history[
            slot * self.iterations_per_branch
            + (state.imli.count % self.iterations_per_branch)
        ]
        index = mix_hash3(pc, same, 2 * self.pipe[slot]) & self.prediction_index_mask
        table = self.table
        return [(table, index)], 2 * table.values[index] + 1

    def on_outcome_fields(
        self, pc: int, target: int, taken: bool, state: SharedState
    ) -> None:
        """Record the resolved outcome in the outer-history structures.

        Backward conditional branches (loop back-edges) are not recorded:
        their outcomes are almost always "taken", they are already covered
        by the loop predictor / IMLI-SIC, and recording them would only
        pollute the rows of the loop-body branches IMLI-OH targets.
        """
        self._tick += 1
        if self._pending:
            self._drain_pending()
        if target < pc:
            return
        width = self.branch_index_bits
        slot = (pc ^ (pc >> width) ^ (pc >> (2 * width))) & self._branch_index_mask
        cell = slot * self.iterations_per_branch + (
            state.imli.count % self.iterations_per_branch
        )
        outcome = 1 if taken else 0
        # Stage the previous-outer-iteration outcome into the PIPE vector
        # before the cell is overwritten with the current outcome.  This is
        # the speculative, checkpointed part of the state and is never
        # delayed.
        self.pipe[slot] = self.history[cell]
        if self.update_delay == 0:
            self.history[cell] = outcome
        else:
            self._pending.append((cell, outcome, self._tick + self.update_delay))

    def _drain_pending(self) -> None:
        while self._pending and self._pending[0][2] <= self._tick:
            cell, outcome, _ = self._pending.popleft()
            self.history[cell] = outcome

    def storage_bits(self) -> int:
        prediction_bits = self.table.storage_bits()
        history_bits = len(self.history)
        pipe_bits = len(self.pipe)
        return prediction_bits + history_bits + pipe_bits

    def speculative_state_bits(self) -> int:
        """The PIPE vector is the only per-checkpoint state (16 bits)."""
        return len(self.pipe)

    # ------------------------------------------------------------------ #
    # Checkpointing helpers used by repro.core.speculative
    # ------------------------------------------------------------------ #

    def snapshot_pipe(self) -> Tuple[int, ...]:
        """Return a copy of the PIPE vector for checkpointing."""
        return tuple(self.pipe)

    def restore_pipe(self, snapshot: Tuple[int, ...]) -> None:
        """Restore a PIPE vector saved by :meth:`snapshot_pipe`."""
        if len(snapshot) != len(self.pipe):
            raise ValueError(
                f"PIPE snapshot has {len(snapshot)} bits, expected {len(self.pipe)}"
            )
        self.pipe = list(snapshot)
