"""Synthetic benchmark workloads.

The paper evaluates on the CBP3 and CBP4 championship trace sets (2 x 40
traces).  Those traces are not redistributable and contain billions of
branches, so this package provides the substitute described in DESIGN.md:
parameterised program *kernels* whose branch streams exhibit exactly the
correlation structures the paper analyses, composed into two named suites
("cbp4like" and "cbp3like") whose member names mirror the traces the paper
highlights (``SPEC2K6-04``, ``SPEC2K6-12``, ``MM-4``, ``CLIENT02``,
``MM07``, ``WS03``, ``WS04`` ...).

* :mod:`repro.workloads.emitter` -- the :class:`KernelEmitter` that kernels
  use to emit branch records with stable synthetic PCs.
* :mod:`repro.workloads.kernels` -- the kernel classes (nested loops with
  same-iteration correlation, wormhole-style diagonal correlation,
  alternating outer-iteration correlation, local periodic patterns,
  loop-exit codes, biased/correlated/noise mixes).
* :mod:`repro.workloads.suites` -- benchmark and suite definitions plus the
  generators that turn them into :class:`~repro.trace.trace.Trace` objects.
"""

from repro.workloads.emitter import KernelEmitter
from repro.workloads.kernels import (
    AlternatingOuterKernel,
    BiasedMixKernel,
    GlobalCorrelatedKernel,
    Kernel,
    LocalPeriodicKernel,
    LoopExitKernel,
    NoiseKernel,
    SameIterationKernel,
    WormholeDiagonalKernel,
)
from repro.workloads.suites import (
    BenchmarkSpec,
    SuiteSpec,
    benchmark_names,
    generate_benchmark,
    generate_suite,
    get_benchmark,
    get_suite,
    suite_names,
)

__all__ = [
    "AlternatingOuterKernel",
    "BenchmarkSpec",
    "BiasedMixKernel",
    "GlobalCorrelatedKernel",
    "Kernel",
    "KernelEmitter",
    "LocalPeriodicKernel",
    "LoopExitKernel",
    "NoiseKernel",
    "SameIterationKernel",
    "SuiteSpec",
    "WormholeDiagonalKernel",
    "benchmark_names",
    "generate_benchmark",
    "generate_suite",
    "get_benchmark",
    "get_suite",
    "suite_names",
]
