"""Emission of branch records with stable synthetic program counters.

Workload kernels describe programs ("for each row, for each column, test a
condition ...").  The :class:`KernelEmitter` turns the control-flow events
of such a program into :class:`~repro.trace.branch.BranchRecord` objects
with *stable* PCs: every distinct ``label`` string used by a kernel maps to
one synthetic instruction address, so that the same static branch always
shows up at the same PC, just like in a real trace.

Backward conditional branches (loop back-edges) receive a target below
their own PC, which is what the IMLI heuristic and the loop predictor key
on.  Forward branches receive a target above their own PC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.branch import BranchKind, BranchRecord

__all__ = ["KernelEmitter"]

# Synthetic instruction addresses are spaced widely apart so that hashed
# predictor indices do not collide in degenerate ways for tiny programs.
_PC_STRIDE = 64
_FORWARD_TARGET_OFFSET = 24
_BACKWARD_TARGET_OFFSET = 40


class KernelEmitter:
    """Collects branch records emitted by workload kernels.

    Parameters
    ----------
    base_pc:
        First synthetic instruction address handed out.  Different kernels
        inside one benchmark use different ``base_pc`` values so their
        static branches do not alias.
    instruction_gap:
        Number of non-branch instructions assumed between consecutive
        branches (feeds the MPKI denominator).
    """

    def __init__(self, base_pc: int = 0x10000, instruction_gap: int = 4) -> None:
        if base_pc < 0:
            raise ValueError(f"base pc must be non-negative, got {base_pc}")
        if instruction_gap < 0:
            raise ValueError(
                f"instruction gap must be non-negative, got {instruction_gap}"
            )
        self.base_pc = base_pc
        self.instruction_gap = instruction_gap
        self.records: List[BranchRecord] = []
        self._pcs: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.records)

    def pc_for(self, label: str) -> int:
        """Return (allocating if needed) the PC associated with ``label``."""
        pc = self._pcs.get(label)
        if pc is None:
            pc = self.base_pc + len(self._pcs) * _PC_STRIDE
            self._pcs[label] = pc
        return pc

    def branch(self, label: str, taken: bool) -> None:
        """Emit a forward conditional branch (an ``if`` test)."""
        pc = self.pc_for(label)
        self.records.append(
            BranchRecord(
                pc=pc,
                target=pc + _FORWARD_TARGET_OFFSET,
                taken=taken,
                kind=BranchKind.CONDITIONAL,
                instruction_gap=self.instruction_gap,
            )
        )

    def loop_branch(self, label: str, taken: bool) -> None:
        """Emit a backward conditional branch (a loop back-edge).

        ``taken`` means the loop continues for another iteration; a
        not-taken outcome is the loop exit.
        """
        pc = self.pc_for(label)
        self.records.append(
            BranchRecord(
                pc=pc,
                target=max(pc - _BACKWARD_TARGET_OFFSET, 0),
                taken=taken,
                kind=BranchKind.CONDITIONAL,
                instruction_gap=self.instruction_gap,
            )
        )

    def call(self, label: str) -> None:
        """Emit an always-taken call instruction."""
        pc = self.pc_for(label)
        self.records.append(
            BranchRecord(
                pc=pc,
                target=pc + _FORWARD_TARGET_OFFSET,
                taken=True,
                kind=BranchKind.CALL,
                instruction_gap=self.instruction_gap,
            )
        )

    def jump(self, label: str) -> None:
        """Emit an always-taken unconditional direct jump."""
        pc = self.pc_for(label)
        self.records.append(
            BranchRecord(
                pc=pc,
                target=pc + _FORWARD_TARGET_OFFSET,
                taken=True,
                kind=BranchKind.UNCONDITIONAL,
                instruction_gap=self.instruction_gap,
            )
        )

    def drain(self) -> List[BranchRecord]:
        """Return and clear the accumulated records."""
        records = self.records
        self.records = []
        return records
