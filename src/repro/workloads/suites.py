"""Benchmark and suite definitions.

The paper evaluates on the 40 CBP4 traces and the 40 CBP3 traces.  This
module defines two synthetic stand-in suites, ``"cbp4like"`` and
``"cbp3like"``, of 20 named benchmarks each.  Benchmark names mirror the
traces the paper highlights so the reproduced figures read like the
originals:

* ``SPEC2K6-04``, ``WS04`` -- dominated by same-iteration correlation with a
  varying inner trip count: large IMLI-SIC benefit, no wormhole benefit.
* ``SPEC2K6-12``, ``CLIENT02``, ``MM07`` -- hard benchmarks with
  wormhole-style outer-iteration correlation: helped by WH and IMLI-OH
  (and partly IMLI-SIC).
* ``MM-4`` -- a mostly easy benchmark with a small alternating
  outer-iteration kernel: low base MPKI, helped by WH / IMLI-OH only.
* ``WS03`` -- marginal IMLI benefit.
* The remaining benchmarks mix biased, globally-correlated, locally
  periodic, loop-exit and noisy branches so that the IMLI components leave
  them essentially unchanged while local-history components show a small,
  evenly spread benefit (Figures 14 and 15).

Each benchmark is generated deterministically from its seed, so every run
of the test and benchmark suites sees the same traces.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.trace.trace import Trace, load_trace_binary, save_trace_binary
from repro.workloads.emitter import KernelEmitter
from repro.workloads.kernels import Kernel, build_kernel

__all__ = [
    "PhaseSpec",
    "BenchmarkSpec",
    "SuiteSpec",
    "suite_names",
    "get_suite",
    "benchmark_names",
    "get_benchmark",
    "generate_benchmark",
    "generate_suite",
    "trace_cache_dir",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One kernel phase inside a benchmark.

    Attributes
    ----------
    kernel:
        Registry name of the kernel (see
        :func:`repro.workloads.kernels.build_kernel`).
    params:
        Keyword arguments passed to the kernel constructor.
    rounds_per_cycle:
        How many rounds of this kernel are emitted per interleaving cycle;
        acts as a weight controlling the phase's share of the trace.
    """

    kernel: str
    params: Mapping[str, object] = field(default_factory=dict)
    rounds_per_cycle: int = 1


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: a seeded composition of kernel phases."""

    name: str
    phases: Tuple[PhaseSpec, ...]
    seed: int
    description: str = ""


@dataclass(frozen=True)
class SuiteSpec:
    """A named, ordered collection of benchmarks."""

    name: str
    benchmarks: Tuple[BenchmarkSpec, ...]

    def names(self) -> List[str]:
        """Benchmark names in suite order."""
        return [benchmark.name for benchmark in self.benchmarks]

    def get(self, benchmark_name: str) -> BenchmarkSpec:
        """Return the benchmark named ``benchmark_name``."""
        for benchmark in self.benchmarks:
            if benchmark.name == benchmark_name:
                return benchmark
        raise KeyError(
            f"benchmark {benchmark_name!r} not in suite {self.name!r}; "
            f"known: {self.names()}"
        )


def _spec(name: str, seed: int, description: str, *phases: PhaseSpec) -> BenchmarkSpec:
    return BenchmarkSpec(name=name, phases=tuple(phases), seed=seed, description=description)


def _phase(kernel: str, rounds: int = 1, **params: object) -> PhaseSpec:
    return PhaseSpec(kernel=kernel, params=params, rounds_per_cycle=rounds)


def _cbp4like_suite() -> SuiteSpec:
    benchmarks = (
        _spec(
            "SPEC2K6-00", 1400, "easy integer code: biased checks and short correlation",
            _phase("biased_mix", 2, branch_count=28),
            _phase("global_correlated", 1, depth=3),
        ),
        _spec(
            "SPEC2K6-02", 1402, "locally periodic branches behind noise",
            _phase("local_periodic", 1, branch_count=4, period=7),
            _phase("biased_mix", 1, branch_count=20),
        ),
        _spec(
            "SPEC2K6-04", 1404,
            "nested loop, same-iteration correlation, varying trip count "
            "(large IMLI-SIC benefit, no wormhole benefit)",
            _phase("same_iteration", 2, max_trip=48, outer_iterations=8,
                   variable_trip=True, noise_branches=2),
            _phase("biased_mix", 1, branch_count=16),
        ),
        _spec(
            "SPEC2K6-06", 1406, "globally correlated control flow",
            _phase("global_correlated", 2, depth=4),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "SPEC2K6-08", 1408, "regular loops with noisy bodies",
            _phase("loop_exit", 1, trip=40, executions_per_round=8),
            _phase("biased_mix", 1, branch_count=20),
        ),
        _spec(
            "SPEC2K6-10", 1410, "data-dependent, hard-to-predict branches",
            _phase("noise", 1, branch_count=6),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "SPEC2K6-12", 1412,
            "hard benchmark with wormhole-style diagonal correlation "
            "(helped by WH, IMLI-OH and IMLI-SIC)",
            _phase("wormhole_diagonal", 2, trip=32, outer_iterations=12, noise_branches=1),
            _phase("same_iteration", 1, max_trip=32, outer_iterations=8,
                   variable_trip=False, noise_branches=2),
            _phase("noise", 1, branch_count=4, executions_per_round=40,
                   taken_probability=0.58),
        ),
        _spec(
            "SPEC2K6-14", 1414, "easy mixed integer code",
            _phase("biased_mix", 2, branch_count=26),
            _phase("global_correlated", 1, depth=2),
        ),
        _spec(
            "SPECFP-01", 1416, "floating point: long regular loops",
            _phase("loop_exit", 2, trip=52, executions_per_round=6),
            _phase("biased_mix", 1, branch_count=14),
        ),
        _spec(
            "SPECFP-02", 1418, "floating point: highly predictable",
            _phase("biased_mix", 3, branch_count=30, minimum_bias=0.9),
            _phase("global_correlated", 1, depth=2),
        ),
        _spec(
            "SERVER-01", 1420, "server code with local periodicity and noise",
            _phase("local_periodic", 1, branch_count=5, period=6),
            _phase("noise", 1, branch_count=3, executions_per_round=30),
            _phase("biased_mix", 1, branch_count=22),
        ),
        _spec(
            "SERVER-02", 1422, "server code, globally correlated",
            _phase("global_correlated", 2, depth=3),
            _phase("local_periodic", 1, branch_count=2, period=5),
            _phase("biased_mix", 1, branch_count=20),
        ),
        _spec(
            "SERVER-03", 1424, "server code, data dependent",
            _phase("noise", 1, branch_count=5, executions_per_round=40),
            _phase("biased_mix", 2, branch_count=24),
        ),
        _spec(
            "CLIENT-01", 1426, "client code with locally periodic branches",
            _phase("local_periodic", 1, branch_count=6, period=9),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "CLIENT-03", 1428, "client code, mixed",
            _phase("biased_mix", 2, branch_count=24),
            _phase("global_correlated", 1, depth=3),
            _phase("noise", 1, branch_count=2, executions_per_round=20),
        ),
        _spec(
            "MM-1", 1430, "multimedia: regular loops",
            _phase("loop_exit", 2, trip=36, executions_per_round=8),
            _phase("biased_mix", 1, branch_count=16),
        ),
        _spec(
            "MM-4", 1432,
            "mostly predictable multimedia kernel with a small alternating "
            "outer-iteration component (low MPKI, helped by WH / IMLI-OH)",
            _phase("biased_mix", 5, branch_count=30, minimum_bias=0.97),
            _phase("global_correlated", 2, depth=2),
            _phase("alternating_outer", 1, trip=24, outer_iterations=12, noise_branches=1),
        ),
        _spec(
            "MM-6", 1434, "multimedia: periodic and loop dominated",
            _phase("local_periodic", 1, branch_count=3, period=5),
            _phase("loop_exit", 1, trip=28, executions_per_round=6),
            _phase("biased_mix", 1, branch_count=14),
        ),
        _spec(
            "WS-01", 1436, "web search: biased plus noise",
            _phase("biased_mix", 2, branch_count=26),
            _phase("noise", 1, branch_count=3, executions_per_round=30),
        ),
        _spec(
            "WS-02", 1438, "web search: globally correlated",
            _phase("global_correlated", 2, depth=3),
            _phase("biased_mix", 1, branch_count=22),
        ),
    )
    return SuiteSpec(name="cbp4like", benchmarks=benchmarks)


def _cbp3like_suite() -> SuiteSpec:
    benchmarks = (
        _spec(
            "CLIENT01", 2400, "client code with locally periodic branches",
            _phase("local_periodic", 1, branch_count=5, period=8),
            _phase("biased_mix", 1, branch_count=20),
        ),
        _spec(
            "CLIENT02", 2402,
            "hard client benchmark with wormhole-style correlation "
            "(helped by WH and IMLI-OH, modest IMLI-SIC benefit)",
            _phase("wormhole_diagonal", 3, trip=36, outer_iterations=10, noise_branches=1),
            _phase("same_iteration", 1, max_trip=24, outer_iterations=6,
                   variable_trip=True, noise_branches=2),
            _phase("noise", 1, branch_count=5, executions_per_round=50,
                   taken_probability=0.6),
        ),
        _spec(
            "CLIENT03", 2404, "client code, mixed easy",
            _phase("biased_mix", 2, branch_count=26),
            _phase("global_correlated", 1, depth=3),
        ),
        _spec(
            "CLIENT04", 2406, "client code with periodic branches and noise",
            _phase("local_periodic", 1, branch_count=4, period=6),
            _phase("noise", 1, branch_count=3, executions_per_round=30),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "INT01", 2408, "integer code, easy",
            _phase("biased_mix", 2, branch_count=28),
            _phase("global_correlated", 1, depth=3),
        ),
        _spec(
            "INT02", 2410, "integer code, data dependent",
            _phase("noise", 1, branch_count=5, executions_per_round=40),
            _phase("biased_mix", 1, branch_count=20),
        ),
        _spec(
            "INT03", 2412, "integer code, loop dominated",
            _phase("loop_exit", 2, trip=44, executions_per_round=6),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "INT04", 2414, "integer code, globally correlated",
            _phase("global_correlated", 3, depth=4),
            _phase("biased_mix", 1, branch_count=16),
        ),
        _spec(
            "INT05", 2416, "integer code with periodic branches",
            _phase("local_periodic", 1, branch_count=4, period=7),
            _phase("biased_mix", 1, branch_count=22),
        ),
        _spec(
            "MM01", 2418, "multimedia: regular loops",
            _phase("biased_mix", 1, branch_count=20),
            _phase("loop_exit", 1, trip=32, executions_per_round=8),
        ),
        _spec(
            "MM02", 2420, "multimedia: periodic and correlated",
            _phase("local_periodic", 1, branch_count=3, period=5),
            _phase("global_correlated", 1, depth=3),
            _phase("biased_mix", 1, branch_count=16),
        ),
        _spec(
            "MM07", 2422,
            "very hard multimedia benchmark combining same-iteration and "
            "wormhole correlation under heavy noise",
            _phase("same_iteration", 2, max_trip=40, outer_iterations=8,
                   variable_trip=False, noise_branches=2),
            _phase("wormhole_diagonal", 2, trip=28, outer_iterations=10, noise_branches=1),
            _phase("noise", 2, branch_count=6, executions_per_round=50,
                   taken_probability=0.52),
        ),
        _spec(
            "MM08", 2424, "multimedia: highly predictable",
            _phase("biased_mix", 3, branch_count=30, minimum_bias=0.9),
            _phase("global_correlated", 1, depth=2),
        ),
        _spec(
            "MM10", 2426, "multimedia: data dependent",
            _phase("noise", 1, branch_count=4, executions_per_round=40),
            _phase("global_correlated", 1, depth=3),
            _phase("biased_mix", 1, branch_count=18),
        ),
        _spec(
            "SERVER01", 2428, "server code with periodic branches",
            _phase("biased_mix", 2, branch_count=24),
            _phase("local_periodic", 1, branch_count=5, period=7),
        ),
        _spec(
            "SERVER02", 2430, "server code, globally correlated",
            _phase("global_correlated", 2, depth=3),
            _phase("biased_mix", 1, branch_count=22),
        ),
        _spec(
            "SERVER03", 2432, "server code, data dependent",
            _phase("noise", 1, branch_count=5, executions_per_round=40),
            _phase("biased_mix", 2, branch_count=26),
        ),
        _spec(
            "WS01", 2434, "web search: mixed easy",
            _phase("biased_mix", 2, branch_count=26),
            _phase("global_correlated", 1, depth=3),
        ),
        _spec(
            "WS03", 2436,
            "web search with a small same-iteration component "
            "(marginal IMLI benefit)",
            _phase("biased_mix", 3, branch_count=26),
            _phase("local_periodic", 1, branch_count=3, period=6),
            _phase("same_iteration", 1, max_trip=20, outer_iterations=4,
                   variable_trip=True, noise_branches=1),
        ),
        _spec(
            "WS04", 2438,
            "web search dominated by same-iteration correlation with a "
            "varying trip count (largest IMLI-SIC benefit, no WH benefit)",
            _phase("same_iteration", 3, max_trip=56, outer_iterations=8,
                   variable_trip=True, noise_branches=2),
            _phase("noise", 1, branch_count=3, executions_per_round=30),
            _phase("biased_mix", 1, branch_count=14),
        ),
    )
    return SuiteSpec(name="cbp3like", benchmarks=benchmarks)


_SUITES: Dict[str, SuiteSpec] = {
    "cbp4like": _cbp4like_suite(),
    "cbp3like": _cbp3like_suite(),
}


def suite_names() -> List[str]:
    """Names of the available suites (``["cbp4like", "cbp3like"]``)."""
    return list(_SUITES)


def get_suite(name: str) -> SuiteSpec:
    """Return the :class:`SuiteSpec` named ``name``."""
    try:
        return _SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; known: {sorted(_SUITES)}") from None


def benchmark_names(suite: str) -> List[str]:
    """Benchmark names of ``suite`` in suite order."""
    return get_suite(suite).names()


def get_benchmark(suite: str, benchmark: str) -> BenchmarkSpec:
    """Return the :class:`BenchmarkSpec` for ``benchmark`` in ``suite``."""
    return get_suite(suite).get(benchmark)


# Distinct PC regions for the phases of one benchmark so static branches of
# different kernels never alias.
_PHASE_PC_STRIDE = 0x40000

# ---------------------------------------------------------------------------
# On-disk generation cache.
#
# Synthetic traces are deterministic in their generator parameters, so the
# first process to generate a benchmark can serialise it (binary trace
# format) for every later process -- repeated benchmark invocations and the
# parallel suite-runner workers then deserialise instead of re-emitting
# kernels.  The cache key covers every input of generate_benchmark plus a
# fingerprint of the generator source files, so editing kernels, the
# emitter or this module automatically invalidates old entries.
# ---------------------------------------------------------------------------

#: Bump when the cache key schema itself changes.
_GENERATOR_VERSION = 1

#: Environment variable controlling the cache: unset = default directory,
#: ``0``/``off`` = disabled, any other value = cache directory to use.
_TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

_generator_fingerprint_cache: Optional[str] = None


def _generator_fingerprint() -> str:
    """Hash of the generator source files, folded into every cache key.

    Any edit to kernel emission, the emitter or this module changes the
    fingerprint, so stale traces can never be served after a behavioural
    change -- no manual version bump required.
    """
    global _generator_fingerprint_cache
    if _generator_fingerprint_cache is None:
        digest = hashlib.sha256()
        here = Path(__file__).parent
        for source in (here / "kernels.py", here / "emitter.py", Path(__file__)):
            try:
                digest.update(source.read_bytes())
            except OSError:
                digest.update(source.name.encode("utf-8"))
        _generator_fingerprint_cache = digest.hexdigest()
    return _generator_fingerprint_cache


def trace_cache_dir() -> Optional[Path]:
    """Directory of the trace generation cache, or ``None`` when disabled."""
    value = os.environ.get(_TRACE_CACHE_ENV)
    if value is not None:
        if value.strip().lower() in ("", "0", "off"):
            return None
        return Path(value)
    path = Path(tempfile.gettempdir()) / f"repro-trace-cache-{os.getuid()}"
    # /tmp is world-writable: refuse a default cache directory that another
    # user pre-created (cache poisoning); an explicitly configured directory
    # is trusted as-is.
    try:
        owner = path.stat().st_uid
    except OSError:
        return path
    if owner != os.getuid():
        return None
    return path


def _cache_key(
    spec: BenchmarkSpec, target_conditional_branches: int, instruction_gap: int
) -> str:
    payload = json.dumps(
        {
            "generator_version": _GENERATOR_VERSION,
            "generator_fingerprint": _generator_fingerprint(),
            "name": spec.name,
            "seed": spec.seed,
            "phases": [
                {
                    "kernel": phase.kernel,
                    "params": {key: phase.params[key] for key in sorted(phase.params)},
                    "rounds": phase.rounds_per_cycle,
                }
                for phase in spec.phases
            ],
            "target": target_conditional_branches,
            "gap": instruction_gap,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_load(path: Path) -> Optional[Trace]:
    try:
        return load_trace_binary(path)
    except (OSError, ValueError, KeyError, EOFError, struct.error):
        return None


def _cache_store(trace: Trace, path: Path) -> None:
    try:
        path.parent.mkdir(mode=0o700, parents=True, exist_ok=True)
        # Write-then-rename so concurrent generators never observe a
        # partially written cache entry.
        scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        save_trace_binary(trace, scratch)
        os.replace(scratch, path)
    except OSError:
        pass


def generate_benchmark(
    spec: BenchmarkSpec,
    target_conditional_branches: int = 20_000,
    instruction_gap: int = 9,
) -> Trace:
    """Generate the trace for ``spec`` (or load it from the on-disk cache).

    Kernel phases are interleaved in a weighted round-robin (each cycle
    emits ``rounds_per_cycle`` rounds of every phase) until the trace holds
    at least ``target_conditional_branches`` conditional branches.  The
    composition is deterministic given the benchmark seed, which is what
    makes the on-disk cache sound: generation parameters fully determine
    the trace.
    """
    if target_conditional_branches <= 0:
        raise ValueError(
            "target conditional branch count must be positive, "
            f"got {target_conditional_branches}"
        )
    cache_dir = trace_cache_dir()
    cache_path: Optional[Path] = None
    if cache_dir is not None:
        key = _cache_key(spec, target_conditional_branches, instruction_gap)
        cache_path = cache_dir / f"{spec.name}-{key[:16]}.rpt"
        if cache_path.is_file():
            cached = _cache_load(cache_path)
            if cached is not None:
                return cached
    trace = _generate_benchmark_uncached(
        spec, target_conditional_branches, instruction_gap
    )
    if cache_path is not None:
        _cache_store(trace, cache_path)
    return trace


def _generate_benchmark_uncached(
    spec: BenchmarkSpec,
    target_conditional_branches: int,
    instruction_gap: int,
) -> Trace:
    kernels: List[Tuple[Kernel, KernelEmitter, int]] = []
    for phase_index, phase in enumerate(spec.phases):
        kernel = build_kernel(
            phase.kernel, seed=spec.seed * 1000 + phase_index, **dict(phase.params)
        )
        # Give each phase instance a unique label prefix and PC region so
        # that two phases using the same kernel class never share PCs.
        kernel.label_prefix = f"{kernel.label_prefix}#{phase_index}"
        emitter = KernelEmitter(
            base_pc=0x10000 + phase_index * _PHASE_PC_STRIDE,
            instruction_gap=instruction_gap,
        )
        kernels.append((kernel, emitter, phase.rounds_per_cycle))

    trace = Trace(
        name=spec.name,
        metadata={
            "suite_seed": str(spec.seed),
            "description": spec.description,
            "target_conditional_branches": str(target_conditional_branches),
        },
    )
    # The trace maintains its conditional count incrementally, so the
    # stop condition is O(1) per cycle instead of a per-record rescan.
    while trace.conditional_count < target_conditional_branches:
        for kernel, emitter, rounds in kernels:
            for _ in range(rounds):
                kernel.emit_round(emitter)
            trace.extend(emitter.drain())
    return trace


def generate_suite(
    suite: str,
    target_conditional_branches: int = 20_000,
    benchmarks: Sequence[str] | None = None,
    instruction_gap: int = 9,
) -> List[Trace]:
    """Generate traces for every benchmark of ``suite`` (or a subset).

    Parameters
    ----------
    suite:
        Suite name, ``"cbp4like"`` or ``"cbp3like"``.
    target_conditional_branches:
        Minimum number of conditional branches per benchmark trace.
    benchmarks:
        Optional subset of benchmark names to generate (in suite order).
    instruction_gap:
        Non-branch instructions between consecutive branches.
    """
    suite_spec = get_suite(suite)
    selected = set(benchmarks) if benchmarks is not None else None
    traces = []
    for benchmark in suite_spec.benchmarks:
        if selected is not None and benchmark.name not in selected:
            continue
        traces.append(
            generate_benchmark(
                benchmark,
                target_conditional_branches=target_conditional_branches,
                instruction_gap=instruction_gap,
            )
        )
    return traces
