"""Workload kernels.

Each kernel models one small program fragment whose branch stream exhibits
a specific, well-understood correlation structure.  The benchmark suites in
:mod:`repro.workloads.suites` compose several kernels into one benchmark.

The kernels map onto the branch classes analysed by the paper:

=========================  ====================================================
Kernel                     Correlation structure (who can predict it)
=========================  ====================================================
SameIterationKernel        ``Out[N][M] == pattern[M]`` in a nested loop with a
                           (possibly varying) inner trip count and noisy loop
                           body.  Captured by IMLI-SIC; *not* captured by the
                           wormhole predictor when the trip count varies.
WormholeDiagonalKernel     ``Out[N][M] == Out[N-1][M-1]`` with a constant trip
                           count.  Captured by IMLI-OH and by the wormhole
                           predictor.
AlternatingOuterKernel     ``Out[N][M] == not Out[N-1][M]``.  Captured by
                           IMLI-OH; missed by IMLI-SIC.
LocalPeriodicKernel        Short per-branch periodic patterns hidden behind
                           noise.  Captured by local-history components.
LoopExitKernel             Constant-trip-count loops with noisy bodies.  The
                           exit is captured by the loop predictor and by
                           IMLI-SIC.
GlobalCorrelatedKernel     Branches correlated with recent global history.
                           Captured by any global-history predictor (TAGE,
                           GEHL, gshare).
BiasedMixKernel            Statically biased branches of varying bias.
NoiseKernel                Data-dependent, effectively random branches; an
                           irreducible MPKI floor.
=========================  ====================================================
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.workloads.emitter import KernelEmitter

__all__ = [
    "Kernel",
    "SameIterationKernel",
    "WormholeDiagonalKernel",
    "AlternatingOuterKernel",
    "LocalPeriodicKernel",
    "LoopExitKernel",
    "GlobalCorrelatedKernel",
    "BiasedMixKernel",
    "NoiseKernel",
]


class Kernel(ABC):
    """A stateful program fragment that emits branch records in rounds.

    A *round* is one natural repetition unit of the kernel (for the nested
    loop kernels, one full execution of the outer loop body).  Kernel state
    (data arrays, phase counters) persists across rounds so that learned
    correlations stay stable throughout the benchmark, just as they would in
    a real program operating on the same data structures.
    """

    #: Prefix used for branch labels so different kernels never share PCs.
    label_prefix: str = "kernel"

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    @abstractmethod
    def emit_round(self, emitter: KernelEmitter) -> None:
        """Emit one round of branch records into ``emitter``."""

    def _label(self, suffix: str) -> str:
        return f"{self.label_prefix}.{suffix}"


def _random_bits(rng: random.Random, count: int) -> List[bool]:
    return [rng.random() < 0.5 for _ in range(count)]


class SameIterationKernel(Kernel):
    """Nested loop whose inner branch outcome depends only on the iteration index.

    The program shape is the one in Figure 1 of the paper::

        for n in range(outer_iterations):
            for m in range(trip_counts[n]):          # trip count may vary
                ...noise branches...
                if pattern[m]: ...                   # the IMLI-SIC target
            # inner loop exits (backward branch not taken)
        # outer loop back-edge

    ``pattern`` is a fixed random bit-vector, so ``Out[N][M] == Out[N-1][M]``
    holds exactly.  The noise branches in the body make the number of global
    paths from the correlator to the target branch explode, which is what
    defeats global-history predictors.  When ``variable_trip`` is true the
    trip count changes every outer iteration, which defeats the wormhole
    predictor and the loop predictor but not IMLI-SIC.
    """

    label_prefix = "sic"

    def __init__(
        self,
        seed: int,
        max_trip: int = 48,
        outer_iterations: int = 8,
        variable_trip: bool = True,
        noise_branches: int = 2,
        noise_bias: float = 0.78,
        pattern_bias: float = 0.5,
    ) -> None:
        super().__init__(seed)
        if max_trip < 4:
            raise ValueError(f"max trip count must be at least 4, got {max_trip}")
        if outer_iterations < 1:
            raise ValueError(
                f"outer iterations must be positive, got {outer_iterations}"
            )
        self.max_trip = max_trip
        self.outer_iterations = outer_iterations
        self.variable_trip = variable_trip
        self.noise_branches = noise_branches
        self.noise_bias = noise_bias
        self.pattern: List[bool] = [
            self.rng.random() < pattern_bias for _ in range(max_trip)
        ]

    def _trip_count(self) -> int:
        if not self.variable_trip:
            return self.max_trip
        low = max(4, int(self.max_trip * 0.7))
        return self.rng.randint(low, self.max_trip)

    def emit_round(self, emitter: KernelEmitter) -> None:
        for outer in range(self.outer_iterations):
            trip = self._trip_count()
            for inner in range(trip):
                for noise_index in range(self.noise_branches):
                    emitter.branch(
                        self._label(f"noise{noise_index}"),
                        self.rng.random() < self.noise_bias,
                    )
                emitter.branch(self._label("target"), self.pattern[inner])
                emitter.loop_branch(self._label("inner_back"), inner < trip - 1)
            emitter.loop_branch(
                self._label("outer_back"), outer < self.outer_iterations - 1
            )


class WormholeDiagonalKernel(Kernel):
    """Nested loop with the diagonal correlation targeted by the wormhole predictor.

    The inner branch tests a matrix element that shifts diagonally from one
    outer iteration to the next, so ``Out[N][M] == Out[N-1][M-1]``.  The trip
    count is constant, which is the case the wormhole predictor requires.
    IMLI-OH recovers the same correlation through the IMLI outer-history
    table and the PIPE vector.
    """

    label_prefix = "wormhole"

    def __init__(
        self,
        seed: int,
        trip: int = 32,
        outer_iterations: int = 12,
        noise_branches: int = 1,
        noise_bias: float = 0.78,
    ) -> None:
        super().__init__(seed)
        if trip < 4:
            raise ValueError(f"trip count must be at least 4, got {trip}")
        self.trip = trip
        self.outer_iterations = outer_iterations
        self.noise_branches = noise_branches
        self.noise_bias = noise_bias
        # Row of outcomes for the previous outer iteration.  Out[N][M] is
        # previous_row[M-1]; a fresh random bit enters at M == 0.
        self.previous_row: List[bool] = _random_bits(self.rng, trip)

    def emit_round(self, emitter: KernelEmitter) -> None:
        for outer in range(self.outer_iterations):
            current_row: List[bool] = [False] * self.trip
            for inner in range(self.trip):
                if inner == 0:
                    outcome = self.rng.random() < 0.5
                else:
                    outcome = self.previous_row[inner - 1]
                current_row[inner] = outcome
                for noise_index in range(self.noise_branches):
                    emitter.branch(
                        self._label(f"noise{noise_index}"),
                        self.rng.random() < self.noise_bias,
                    )
                emitter.branch(self._label("target"), outcome)
                emitter.loop_branch(self._label("inner_back"), inner < self.trip - 1)
            self.previous_row = current_row
            emitter.loop_branch(
                self._label("outer_back"), outer < self.outer_iterations - 1
            )


class AlternatingOuterKernel(Kernel):
    """Nested loop where the inner branch flips every outer iteration.

    ``Out[N][M] == not Out[N-1][M]``: the per-iteration pattern is inverted
    on every pass of the outer loop.  The paper identifies this as the MM-4
    behaviour that IMLI-SIC misses (the per-``M`` counter keeps flipping)
    but IMLI-OH and the wormhole predictor capture.
    """

    label_prefix = "alt"

    def __init__(
        self,
        seed: int,
        trip: int = 24,
        outer_iterations: int = 12,
        noise_branches: int = 1,
        noise_bias: float = 0.82,
    ) -> None:
        super().__init__(seed)
        if trip < 4:
            raise ValueError(f"trip count must be at least 4, got {trip}")
        self.trip = trip
        self.outer_iterations = outer_iterations
        self.noise_branches = noise_branches
        self.noise_bias = noise_bias
        self.pattern: List[bool] = _random_bits(self.rng, trip)
        self.parity = False

    def emit_round(self, emitter: KernelEmitter) -> None:
        for outer in range(self.outer_iterations):
            for inner in range(self.trip):
                outcome = self.pattern[inner] ^ self.parity
                for noise_index in range(self.noise_branches):
                    emitter.branch(
                        self._label(f"noise{noise_index}"),
                        self.rng.random() < self.noise_bias,
                    )
                emitter.branch(self._label("target"), outcome)
                emitter.loop_branch(self._label("inner_back"), inner < self.trip - 1)
            self.parity = not self.parity
            emitter.loop_branch(
                self._label("outer_back"), outer < self.outer_iterations - 1
            )


class LocalPeriodicKernel(Kernel):
    """Branches with short per-branch periodic patterns hidden behind noise.

    Each target branch repeats a fixed pattern of period ``period`` (for
    example ``T T N T N``), while unrelated noisy branches execute in
    between.  A local-history component predicts these branches from their
    own history; global-history predictors are disturbed by the interleaved
    noise.  This is the branch class that motivates local history in
    TAGE-SC-L and FTL (Section 5 of the paper).
    """

    label_prefix = "local"

    def __init__(
        self,
        seed: int,
        branch_count: int = 4,
        period: int = 7,
        iterations_per_round: int = 28,
        noise_branches: int = 1,
        noise_bias: float = 0.8,
    ) -> None:
        super().__init__(seed)
        if branch_count < 1:
            raise ValueError(f"branch count must be positive, got {branch_count}")
        if period < 2:
            raise ValueError(f"period must be at least 2, got {period}")
        self.branch_count = branch_count
        self.period = period
        self.iterations_per_round = iterations_per_round
        self.noise_branches = noise_branches
        self.noise_bias = noise_bias
        self.patterns: List[List[bool]] = []
        for _ in range(branch_count):
            pattern = _random_bits(self.rng, period)
            # Avoid degenerate always-taken / never-taken patterns, which a
            # bimodal table would capture anyway.
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]
            self.patterns.append(pattern)
        self.positions: List[int] = [0] * branch_count

    def emit_round(self, emitter: KernelEmitter) -> None:
        for _ in range(self.iterations_per_round):
            for branch_index in range(self.branch_count):
                for noise_index in range(self.noise_branches):
                    emitter.branch(
                        self._label(f"noise{branch_index}_{noise_index}"),
                        self.rng.random() < self.noise_bias,
                    )
                pattern = self.patterns[branch_index]
                position = self.positions[branch_index]
                emitter.branch(self._label(f"target{branch_index}"), pattern[position])
                self.positions[branch_index] = (position + 1) % self.period
            emitter.loop_branch(self._label("round_back"), True)
        emitter.loop_branch(self._label("round_back"), False)


class LoopExitKernel(Kernel):
    """Loops with a constant trip count and a noisy body.

    The only systematically mispredictable branch (for a global-history
    predictor) is the loop exit, once per loop execution.  A loop predictor
    counts iterations and removes that misprediction; IMLI-SIC does the same
    because the exit always happens at the same IMLI counter value.
    """

    label_prefix = "loopexit"

    def __init__(
        self,
        seed: int,
        trip: int = 40,
        executions_per_round: int = 8,
        noise_branches: int = 1,
        noise_bias: float = 0.88,
    ) -> None:
        super().__init__(seed)
        if trip < 4:
            raise ValueError(f"trip count must be at least 4, got {trip}")
        self.trip = trip
        self.executions_per_round = executions_per_round
        self.noise_branches = noise_branches
        self.noise_bias = noise_bias

    def emit_round(self, emitter: KernelEmitter) -> None:
        for _ in range(self.executions_per_round):
            for inner in range(self.trip):
                for noise_index in range(self.noise_branches):
                    emitter.branch(
                        self._label(f"noise{noise_index}"),
                        self.rng.random() < self.noise_bias,
                    )
                emitter.loop_branch(self._label("back"), inner < self.trip - 1)


class GlobalCorrelatedKernel(Kernel):
    """Branches whose outcome is a function of recent global history.

    A chain of ``depth`` moderately biased, data-dependent "source" branches
    is followed by several "sink" branches whose outcomes are boolean
    functions of the sources (copies, negations, parities).  Any
    global-history predictor with a few bits of history captures the sinks
    exactly; the sources themselves carry the (bounded) data-dependent
    noise.  This populates the large class of branches for which neither
    local history nor IMLI components matter.
    """

    label_prefix = "gcorr"

    def __init__(
        self,
        seed: int,
        depth: int = 2,
        sink_count: int = 4,
        groups_per_round: int = 120,
        source_bias: float = 0.85,
    ) -> None:
        super().__init__(seed)
        if depth < 1:
            raise ValueError(f"depth must be positive, got {depth}")
        if sink_count < 1:
            raise ValueError(f"sink count must be positive, got {sink_count}")
        if not 0.0 < source_bias < 1.0:
            raise ValueError(f"source bias must be in (0, 1), got {source_bias}")
        self.depth = depth
        self.sink_count = sink_count
        self.groups_per_round = groups_per_round
        self.source_bias = source_bias

    def emit_round(self, emitter: KernelEmitter) -> None:
        for _ in range(self.groups_per_round):
            sources: List[bool] = []
            for source_index in range(self.depth):
                outcome = self.rng.random() < self.source_bias
                sources.append(outcome)
                emitter.branch(self._label(f"source{source_index}"), outcome)
            parity = False
            for value in sources:
                parity ^= value
            for sink_index in range(self.sink_count):
                if sink_index % 3 == 0:
                    outcome = parity
                elif sink_index % 3 == 1:
                    outcome = sources[sink_index % self.depth]
                else:
                    outcome = not sources[sink_index % self.depth]
                emitter.branch(self._label(f"sink{sink_index}"), outcome)


class BiasedMixKernel(Kernel):
    """A population of statically biased branches.

    Models the bulk of "easy" branches in real programs: error checks that
    almost never fire, bounds checks, mode flags.  Bimodal counters capture
    these; they mostly dilute MPKI and exercise table capacity.
    """

    label_prefix = "bias"

    def __init__(
        self,
        seed: int,
        branch_count: int = 24,
        executions_per_round: int = 40,
        minimum_bias: float = 0.93,
    ) -> None:
        super().__init__(seed)
        if branch_count < 1:
            raise ValueError(f"branch count must be positive, got {branch_count}")
        if not 0.5 <= minimum_bias <= 1.0:
            raise ValueError(f"minimum bias must be in [0.5, 1], got {minimum_bias}")
        self.branch_count = branch_count
        self.executions_per_round = executions_per_round
        self.biases: List[float] = []
        for _ in range(branch_count):
            bias = self.rng.uniform(minimum_bias, 0.995)
            if self.rng.random() < 0.5:
                bias = 1.0 - bias
            self.biases.append(bias)

    def emit_round(self, emitter: KernelEmitter) -> None:
        for _ in range(self.executions_per_round):
            for branch_index, bias in enumerate(self.biases):
                emitter.branch(
                    self._label(f"b{branch_index}"), self.rng.random() < bias
                )


class NoiseKernel(Kernel):
    """Effectively random, data-dependent branches.

    These set an irreducible misprediction floor and model the
    hard-to-predict, uncorrelated branches present in every real workload.
    """

    label_prefix = "noise"

    def __init__(
        self,
        seed: int,
        branch_count: int = 6,
        executions_per_round: int = 60,
        taken_probability: float = 0.75,
    ) -> None:
        super().__init__(seed)
        if branch_count < 1:
            raise ValueError(f"branch count must be positive, got {branch_count}")
        if not 0.0 < taken_probability < 1.0:
            raise ValueError(
                f"taken probability must be in (0, 1), got {taken_probability}"
            )
        self.branch_count = branch_count
        self.executions_per_round = executions_per_round
        self.taken_probability = taken_probability

    def emit_round(self, emitter: KernelEmitter) -> None:
        for _ in range(self.executions_per_round):
            for branch_index in range(self.branch_count):
                emitter.branch(
                    self._label(f"n{branch_index}"),
                    self.rng.random() < self.taken_probability,
                )


def build_kernel(name: str, seed: int, **params: object) -> Kernel:
    """Construct a kernel by registry name (used by suite specifications)."""
    registry = {
        "same_iteration": SameIterationKernel,
        "wormhole_diagonal": WormholeDiagonalKernel,
        "alternating_outer": AlternatingOuterKernel,
        "local_periodic": LocalPeriodicKernel,
        "loop_exit": LoopExitKernel,
        "global_correlated": GlobalCorrelatedKernel,
        "biased_mix": BiasedMixKernel,
        "noise": NoiseKernel,
    }
    if name not in registry:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(registry)}")
    return registry[name](seed, **params)  # type: ignore[arg-type]


KERNEL_NAMES: Sequence[str] = (
    "same_iteration",
    "wormhole_diagonal",
    "alternating_outer",
    "local_periodic",
    "loop_exit",
    "global_correlated",
    "biased_mix",
    "noise",
)
