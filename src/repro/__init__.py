"""repro: a reproduction of "The Inner Most Loop Iteration counter: a new
dimension in branch history" (Seznec, San Miguel, Albericio -- MICRO 2015).

The library provides, in pure Python:

* the paper's contribution -- the IMLI counter and the IMLI-SIC / IMLI-OH
  predictor components (:mod:`repro.core`);
* every substrate the evaluation depends on -- TAGE, the statistical
  corrector, TAGE-GSC, GEHL, the loop predictor, local-history components
  and the wormhole predictor (:mod:`repro.predictors`);
* a trace-driven simulation framework with MPKI metrics, storage accounting
  and speculative-state modelling (:mod:`repro.sim`);
* synthetic CBP-like benchmark suites standing in for the championship
  traces (:mod:`repro.workloads`, see DESIGN.md for the substitution
  rationale);
* ingestion of external trace files and a chunked on-disk layout that
  streams huge traces through simulation in bounded memory
  (:mod:`repro.ingest`, :mod:`repro.trace.chunked`, ``docs/TRACES.md``);
* the reproduced tables and figures of the evaluation section
  (:mod:`repro.analysis`).

Quick start (declarative API, see ``docs/API.md``)::

    from repro import Experiment

    results = Experiment(
        ["tage-gsc", "tage-gsc+imli"], suite="cbp4like",
        length=5000, profile="small",
    ).run(baseline="tage-gsc")
    print(results.report())

or with the lower-level runner::

    from repro.workloads import generate_suite
    from repro.sim import SuiteRunner

    traces = generate_suite("cbp4like", target_conditional_branches=5000)
    runner = SuiteRunner(traces, profile="small")
    base = runner.run("tage-gsc")
    imli = runner.run("tage-gsc+imli")
    print(base.average_mpki, imli.average_mpki)
"""

from repro.api import (
    CompositeOptions,
    Experiment,
    PredictorSpec,
    Registry,
    ResultSet,
    SizeProfile,
    default_registry,
    register_configuration,
    register_profile,
)
from repro.core import (
    IMLIOuterHistoryComponent,
    IMLISameIterationComponent,
    IMLIState,
    SpeculativeIMLITracker,
)
from repro.predictors import (
    BranchPredictor,
    GEHLPredictor,
    TAGEGSCPredictor,
    TAGEPredictor,
    build_named,
    configuration_names,
)
from repro.dist import Coordinator, DistBackend, Worker
from repro.ingest import IngestError, IngestReport, ingest_trace
from repro.sim import SimulationResult, SuiteRunner, simulate
from repro.store import ResultStore
from repro.trace import (
    BranchKind,
    BranchRecord,
    ChunkedTrace,
    Trace,
    load_any_trace,
    write_chunked_trace,
)
from repro.workloads import generate_benchmark, generate_suite

__version__ = "1.2.0"

__all__ = [
    "BranchKind",
    "BranchPredictor",
    "BranchRecord",
    "ChunkedTrace",
    "CompositeOptions",
    "Coordinator",
    "DistBackend",
    "Experiment",
    "IngestError",
    "IngestReport",
    "GEHLPredictor",
    "IMLIOuterHistoryComponent",
    "IMLISameIterationComponent",
    "IMLIState",
    "PredictorSpec",
    "Registry",
    "ResultSet",
    "ResultStore",
    "SimulationResult",
    "SizeProfile",
    "SpeculativeIMLITracker",
    "SuiteRunner",
    "TAGEGSCPredictor",
    "TAGEPredictor",
    "Trace",
    "Worker",
    "__version__",
    "build_named",
    "configuration_names",
    "default_registry",
    "generate_benchmark",
    "generate_suite",
    "ingest_trace",
    "load_any_trace",
    "register_configuration",
    "register_profile",
    "simulate",
    "write_chunked_trace",
]
