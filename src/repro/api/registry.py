"""Mutable registry of predictor configurations and size profiles.

The paper's configurations used to live in a frozen module-level dict
(:data:`repro.predictors.composites.CONFIGURATIONS`) with two hardcoded
size profiles.  :class:`Registry` makes both first-class and extensible:

* **options-based configurations** map a name to a
  :class:`~repro.predictors.composites.CompositeOptions`, built through the
  composite :func:`~repro.predictors.composites.build` factory;
* **builder-based configurations** map a name to any callable
  ``builder(profile, **overrides) -> BranchPredictor`` -- the hook through
  which user predictors plug in without editing repro source;
* **size profiles** map a name to a
  :class:`~repro.predictors.composites.SizeProfile`.

Registration is decorator-friendly::

    from repro.api import register_configuration, register_profile

    @register_configuration("my-gshare")
    def _build(profile, entries=4096, history_length=12):
        return GSharePredictor(entries=entries, history_length=history_length)

    @register_profile("tiny")
    def _tiny():
        return SizeProfile(...)

The **default registry** (:func:`default_registry`) shares its option and
profile stores with the legacy module-level dicts, so the shims
``CONFIGURATIONS``, ``build_named`` and ``factory`` stay live views of it.
Scoped registries (``Registry.with_defaults()`` or a bare ``Registry()``)
give tests and applications isolated namespaces.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Union

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import (
    CONFIGURATIONS,
    _PROFILES,
    CompositeOptions,
    SizeProfile,
    build,
)

__all__ = [
    "Registry",
    "default_registry",
    "register_configuration",
    "register_profile",
]

#: A builder callable: takes the profile (name or SizeProfile) plus any
#: spec overrides as keyword arguments and returns a fresh predictor.
Builder = Callable[..., BranchPredictor]

ProfileLike = Union[str, SizeProfile]


class Registry:
    """Named predictor configurations and size profiles.

    Parameters
    ----------
    configurations:
        Initial ``name -> CompositeOptions`` mapping, used **by reference**
        (mutations through the registry are visible to the caller's dict).
    profiles:
        Initial ``name -> SizeProfile`` mapping, also used by reference.
    builders:
        Initial ``name -> builder`` mapping (copied).
    """

    #: Process-unique tokens, used by the suite runner's memoisation key
    #: (raw id() could be reused after garbage collection).  A registry
    #: takes a fresh token on every mutation, so cached simulation results
    #: keyed on the token can never outlive the definitions they were
    #: built from.
    _tokens = itertools.count(1)

    def __init__(
        self,
        configurations: Optional[Dict[str, CompositeOptions]] = None,
        profiles: Optional[Dict[str, SizeProfile]] = None,
        builders: Optional[Dict[str, Builder]] = None,
    ) -> None:
        self._options: Dict[str, CompositeOptions] = (
            configurations if configurations is not None else {}
        )
        self._profiles: Dict[str, SizeProfile] = (
            profiles if profiles is not None else {}
        )
        self._builders: Dict[str, Builder] = dict(builders) if builders else {}
        #: Stable identity of this registry instance (never changes).
        self.uid: int = next(Registry._tokens)
        #: Generation counter: takes a fresh value on every mutation, so
        #: caches can detect that results built from this registry are out
        #: of date (see repro.sim.runner).
        self.token: int = self.uid

    @classmethod
    def with_defaults(cls) -> "Registry":
        """A fresh registry pre-populated from the default registry.

        The stores are copies of the default registry's current state --
        the paper's configurations and profiles plus anything registered
        on it since (builder-based configurations included).
        Registrations on the returned registry do not leak into the
        default registry or the legacy module dicts, and vice versa.
        """
        base = default_registry()
        return cls(
            configurations=dict(base._options),
            profiles=dict(base._profiles),
            builders=dict(base._builders),
        )

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    def __contains__(self, name: object) -> bool:
        return name in self._options or name in self._builders

    def names(self) -> List[str]:
        """Names of all registered configurations, in registration order."""
        return list(self._options) + [
            name for name in self._builders if name not in self._options
        ]

    def profile_names(self) -> List[str]:
        """Names of all registered size profiles."""
        return list(self._profiles)

    def options(self, name: str) -> Optional[CompositeOptions]:
        """The :class:`CompositeOptions` behind ``name``.

        Returns ``None`` for builder-based configurations (they have no
        declarative options form); raises :class:`KeyError` for unknown
        names.
        """
        if name in self._options:
            return self._options[name]
        if name in self._builders:
            return None
        raise KeyError(
            f"unknown configuration {name!r}; known: {self.names()}"
        )

    def resolve_profile(self, profile: ProfileLike) -> SizeProfile:
        """Resolve a profile name (or pass through an instance)."""
        if isinstance(profile, SizeProfile):
            return profile
        try:
            return self._profiles[profile]
        except KeyError:
            raise KeyError(
                f"unknown size profile {profile!r}; known: {sorted(self._profiles)}"
            ) from None

    # ----------------------------------------------------------------- #
    # Registration
    # ----------------------------------------------------------------- #

    def register_configuration(
        self,
        name: str,
        configuration: Union[CompositeOptions, Builder, None] = None,
        *,
        overwrite: bool = False,
    ):
        """Register a configuration under ``name``.

        ``configuration`` is either a :class:`CompositeOptions` (declarative)
        or a builder callable ``builder(profile, **overrides)``.  With no
        ``configuration`` the call returns a decorator::

            @registry.register_configuration("my-predictor")
            def _build(profile):
                return MyPredictor(...)
        """
        if configuration is None:
            def _decorator(builder: Builder) -> Builder:
                self.register_configuration(name, builder, overwrite=overwrite)
                return builder

            return _decorator
        if not overwrite and name in self:
            raise ValueError(
                f"configuration {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        replacing = name in self
        if isinstance(configuration, CompositeOptions):
            self._options[name] = configuration
            self._builders.pop(name, None)
        elif callable(configuration):
            self._builders[name] = configuration
            self._options.pop(name, None)
        else:
            raise TypeError(
                "configuration must be a CompositeOptions or a builder "
                f"callable, got {type(configuration).__name__}"
            )
        if replacing:
            self._touch()
        return configuration

    def register_profile(
        self,
        name: str,
        profile: Union[SizeProfile, Callable[[], SizeProfile], None] = None,
        *,
        overwrite: bool = False,
    ):
        """Register a size profile under ``name``.

        ``profile`` is a :class:`SizeProfile` or a zero-argument callable
        returning one (decorator form)::

            @registry.register_profile("tiny")
            def _tiny():
                return SizeProfile(...)
        """
        if profile is None:
            def _decorator(fn: Callable[[], SizeProfile]):
                self.register_profile(name, fn(), overwrite=overwrite)
                return fn

            return _decorator
        if callable(profile) and not isinstance(profile, SizeProfile):
            profile = profile()
        if not isinstance(profile, SizeProfile):
            raise TypeError(
                f"profile must be a SizeProfile, got {type(profile).__name__}"
            )
        if not overwrite and name in self._profiles:
            raise ValueError(
                f"size profile {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        replacing = name in self._profiles
        self._profiles[name] = profile
        if replacing:
            self._touch()
        return profile

    def unregister(self, name: str) -> None:
        """Remove a configuration (options- or builder-based)."""
        found = self._options.pop(name, None) is not None
        found = self._builders.pop(name, None) is not None or found
        if not found:
            raise KeyError(f"unknown configuration {name!r}")
        self._touch()

    def _touch(self) -> None:
        """Take a fresh token, invalidating memoised results built from us.

        Only mutations that replace or remove an existing definition call
        this -- purely additive registrations cannot change what any
        cached result was built from, so they keep caches warm.
        """
        self.token = next(Registry._tokens)

    # ----------------------------------------------------------------- #
    # Building
    # ----------------------------------------------------------------- #

    def build(
        self,
        configuration: Union[str, CompositeOptions],
        profile: ProfileLike = "default",
        **overrides,
    ) -> BranchPredictor:
        """Build a predictor from a name or a :class:`CompositeOptions`.

        ``overrides`` are applied on top of the resolved options
        (``dataclasses.replace``) for options-based configurations, or
        passed as keyword arguments to builder-based ones.  For named
        configurations the predictor's ``name`` is set to the registry
        name.
        """
        if isinstance(configuration, CompositeOptions):
            options = self._apply_overrides(configuration, overrides)
            return build(options, profile=self.resolve_profile(profile))
        name = configuration
        builder = self._builders.get(name)
        if builder is not None:
            predictor = builder(profile, **overrides)
            predictor.name = name
            return predictor
        try:
            options = self._options[name]
        except KeyError:
            raise KeyError(
                f"unknown configuration {name!r}; known: {self.names()}"
            ) from None
        options = self._apply_overrides(options, overrides)
        predictor = build(options, profile=self.resolve_profile(profile))
        predictor.name = name
        return predictor

    @staticmethod
    def _apply_overrides(
        options: CompositeOptions, overrides: Dict[str, object]
    ) -> CompositeOptions:
        if not overrides:
            return options
        valid = set(options.__dataclass_fields__)
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown CompositeOptions override(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(options, **overrides)


#: The process-wide default registry.  Its stores are the legacy module
#: dicts, so ``CONFIGURATIONS`` / ``build_named`` / ``_PROFILES`` remain
#: live views of it.
_DEFAULT_REGISTRY = Registry(configurations=CONFIGURATIONS, profiles=_PROFILES)


def default_registry() -> Registry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def register_configuration(
    name: str,
    configuration: Union[CompositeOptions, Builder, None] = None,
    *,
    overwrite: bool = False,
):
    """Register a configuration on the default registry (decorator-friendly)."""
    return _DEFAULT_REGISTRY.register_configuration(
        name, configuration, overwrite=overwrite
    )


def register_profile(
    name: str,
    profile: Union[SizeProfile, Callable[[], SizeProfile], None] = None,
    *,
    overwrite: bool = False,
):
    """Register a size profile on the default registry (decorator-friendly)."""
    return _DEFAULT_REGISTRY.register_profile(name, profile, overwrite=overwrite)
