"""Declarative public API: predictor specs, the registry, and experiments.

This package is the recommended front door to the library:

* :class:`~repro.api.specs.PredictorSpec` -- a serializable description of
  one predictor variant (base configuration, size profile, parameter
  overrides) with lossless JSON round-trips and grid expansion
  (:meth:`~repro.api.specs.PredictorSpec.sweep`);
* :class:`~repro.api.registry.Registry` -- mutable, decorator-friendly
  registration of configurations and size profiles, replacing the frozen
  module-level ``CONFIGURATIONS`` dict (which remains as a live
  backwards-compatible view of the default registry);
* :class:`~repro.api.experiment.Experiment` /
  :class:`~repro.api.experiment.ResultSet` -- run specs over a workload
  (serially or across a process pool) and analyse / export the results.

See ``docs/API.md`` for a walkthrough.
"""

from repro.api.experiment import Experiment, ResultSet
from repro.api.registry import (
    Registry,
    default_registry,
    register_configuration,
    register_profile,
)
from repro.api.specs import PredictorSpec
from repro.predictors.composites import CompositeOptions, SizeProfile

__all__ = [
    "CompositeOptions",
    "Experiment",
    "PredictorSpec",
    "Registry",
    "ResultSet",
    "SizeProfile",
    "default_registry",
    "register_configuration",
    "register_profile",
]
