"""The experiment facade: specs in, analysable results out.

:class:`Experiment` ties the declarative layer to the simulation stack.
It takes a list of :class:`~repro.api.specs.PredictorSpec` (or registered
configuration names), a workload (a synthetic suite by name, or explicit
traces), and runs everything through one
:class:`~repro.sim.runner.SuiteRunner` -- serially or across a process
pool -- returning a :class:`ResultSet` with per-trace MPKI tables,
baseline deltas and JSON/CSV export::

    experiment = Experiment(
        ["tage-gsc", "tage-gsc+imli"],
        suite="cbp4like", benchmarks=["SPEC2K6-04"], length=3000,
        profile="small", jobs=4,
    )
    results = experiment.run(baseline="tage-gsc")
    print(results.report())
    results.to_csv()
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.api.registry import Registry
from repro.api.specs import PredictorSpec
from repro.sim.metrics import mpki_delta
from repro.sim.runner import ConfigurationRun, SuiteRunner
from repro.store import ResultStore
from repro.trace.chunked import ChunkedTrace, load_any_trace
from repro.trace.trace import Trace

__all__ = ["Experiment", "ResultSet"]

SpecLike = Union[PredictorSpec, str]


@dataclass
class ResultSet:
    """Results of one :class:`Experiment` run.

    Maps every spec label to its :class:`ConfigurationRun` (one
    :class:`~repro.sim.engine.SimulationResult` per trace) and knows how to
    present itself as a table, as baseline deltas, and as JSON / CSV.
    """

    specs: List[PredictorSpec]
    runs: Dict[str, ConfigurationRun]
    trace_names: List[str]
    baseline: Optional[str] = None
    _spec_by_label: Dict[str, PredictorSpec] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._spec_by_label = {spec.label: spec for spec in self.specs}
        if self.baseline is not None and self.baseline not in self.runs:
            raise KeyError(
                f"baseline {self.baseline!r} is not among the run labels "
                f"{self.labels()}"
            )

    # ----------------------------------------------------------------- #
    # Access
    # ----------------------------------------------------------------- #

    def labels(self) -> List[str]:
        """Spec labels, in run order."""
        return list(self.runs)

    def run_for(self, label: str) -> ConfigurationRun:
        """The :class:`ConfigurationRun` for one label."""
        try:
            return self.runs[label]
        except KeyError:
            raise KeyError(
                f"no results for {label!r}; known labels: {self.labels()}"
            ) from None

    def mpki(self, label: str, trace_name: str) -> float:
        """MPKI of ``label`` on ``trace_name``."""
        return self.run_for(label).result_for(trace_name).mpki

    def average_mpki(self, label: str) -> float:
        """Average MPKI of ``label`` over all traces."""
        return self.run_for(label).average_mpki

    def storage_bits(self, label: str) -> int:
        """Storage budget of ``label``."""
        return self.run_for(label).storage_bits

    def baseline_delta(self, label: str) -> Dict[str, float]:
        """Per-trace MPKI reduction of ``label`` relative to the baseline.

        Positive values mean ``label`` mispredicts less than the baseline.
        Includes an ``"AVERAGE"`` entry.
        """
        if self.baseline is None:
            raise ValueError("this result set was produced without a baseline")
        base = self.run_for(self.baseline)
        candidate = self.run_for(label)
        deltas = mpki_delta(base.mpki_by_trace(), candidate.mpki_by_trace())
        deltas["AVERAGE"] = base.average_mpki - candidate.average_mpki
        return deltas

    # ----------------------------------------------------------------- #
    # Presentation / export
    # ----------------------------------------------------------------- #

    def mpki_table(self) -> List[List[object]]:
        """Rows of the per-trace MPKI table (one final ``AVERAGE`` row)."""
        labels = self.labels()
        rows: List[List[object]] = [
            [name] + [self.mpki(label, name) for label in labels]
            for name in self.trace_names
        ]
        rows.append(["AVERAGE"] + [self.average_mpki(label) for label in labels])
        return rows

    def report(self, title: Optional[str] = None) -> str:
        """Human-readable MPKI table (plus baseline deltas when set)."""
        labels = self.labels()
        sections = [
            format_table(
                ["benchmark"] + labels,
                self.mpki_table(),
                title=title or "MPKI per benchmark",
            )
        ]
        if self.baseline is not None:
            delta_labels = [label for label in labels if label != self.baseline]
            if delta_labels:
                deltas = {label: self.baseline_delta(label) for label in delta_labels}
                rows = [
                    [name] + [deltas[label][name] for label in delta_labels]
                    for name in self.trace_names + ["AVERAGE"]
                ]
                sections.append("")
                sections.append(
                    format_table(
                        ["benchmark"] + delta_labels,
                        rows,
                        title=f"MPKI reduction vs {self.baseline}",
                    )
                )
        return "\n".join(sections)

    def to_dict(self) -> Dict[str, Any]:
        """Structured plain-dict form (JSON-safe)."""
        results = []
        for label in self.labels():
            run = self.run_for(label)
            spec = self._spec_by_label.get(label)
            entry: Dict[str, Any] = {
                "label": label,
                "spec": spec.to_dict() if spec is not None else None,
                "average_mpki": run.average_mpki,
                "storage_bits": run.storage_bits,
                "mpki": run.mpki_by_trace(),
                "mispredictions": {
                    result.trace_name: result.mispredictions for result in run.results
                },
            }
            if self.baseline is not None and label != self.baseline:
                entry["delta_vs_baseline"] = self.baseline_delta(label)
            results.append(entry)
        return {
            "traces": list(self.trace_names),
            "baseline": self.baseline,
            "results": results,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON export of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """CSV export: one row per trace, one MPKI column per label.

        A final ``AVERAGE`` row and a ``storage_kbits`` row close the
        table.
        """
        labels = self.labels()
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["benchmark"] + labels)
        for row in self.mpki_table():
            writer.writerow(row)
        writer.writerow(
            ["storage_kbits"] + [self.storage_bits(label) / 1024.0 for label in labels]
        )
        return buffer.getvalue()


class Experiment:
    """Run a set of predictor specs over a workload.

    Parameters
    ----------
    specs:
        :class:`PredictorSpec` objects and/or registered configuration
        names (names are coerced to specs with ``profile``).
    suite:
        Synthetic suite to generate traces from (ignored when ``traces``
        is given).
    traces:
        Explicit traces to evaluate on, instead of a generated suite.
        Entries may be :class:`Trace` /
        :class:`~repro.trace.chunked.ChunkedTrace` objects or ``str`` /
        ``Path`` values naming a trace file or chunked trace directory
        (loaded via :func:`~repro.trace.chunked.load_any_trace`, so
        ingested traces are addressable by path like workloads).
    benchmarks:
        Restrict the generated suite to these benchmark names.
    length:
        Target conditional branches per generated benchmark trace.
    profile:
        Size profile applied when coercing configuration names to specs.
    jobs:
        Worker processes; 1 keeps everything in-process.  Parallel runs
        are bit-identical to serial ones.
    registry:
        Scoped :class:`Registry` to resolve names against (default: the
        process-wide registry).  Scoped registries imply in-process
        simulation, since worker processes cannot see their registrations.
    store:
        Persistent result store: a :class:`~repro.store.ResultStore`, a
        directory path, ``None`` (default -- honour the
        ``REPRO_RESULT_STORE`` environment variable) or ``False`` (no
        store).  Completed ``(spec, trace)`` cells are read from and
        written to the store, so re-running an interrupted or extended
        experiment recomputes only the missing cells (see
        ``docs/API.md``).
    backend:
        Execution backend: ``None`` (default -- in-process, or the local
        process pool when ``jobs > 1``), ``"serial"`` / ``"pool"``
        explicitly, or a :class:`~repro.dist.client.DistBackend` to run
        the experiment's cells on a cluster via a ``repro serve``
        coordinator (see ``docs/DISTRIBUTED.md``).  All backends are
        bit-identical.
    progress:
        Optional ``(done, total)`` callable invoked per completed cell
        (e.g. a :class:`~repro.common.progress.ProgressPrinter`).
    batch:
        Same-trace cell batching (see
        :class:`~repro.sim.runner.SuiteRunner`): ``None``/``True``
        (default) groups cells sharing a trace into one
        :func:`~repro.sim.engine.simulate_many` traversal, an ``int``
        caps the group size, ``False`` restores one simulation per cell.
        Results, store keys and exported bytes are identical either way.
    timings:
        Per-cell timing capture (see ``docs/OBSERVABILITY.md``):
        ``None`` (default) writes ``timings.jsonl`` next to the result
        store when one is configured, a path redirects the artifact,
        ``False`` disables capture.  Timing never affects results.
    """

    def __init__(
        self,
        specs: Iterable[SpecLike],
        *,
        suite: Optional[str] = "cbp4like",
        traces: Optional[Sequence[Union[Trace, ChunkedTrace, str, Path]]] = None,
        benchmarks: Optional[Sequence[str]] = None,
        length: int = 2500,
        profile: str = "default",
        jobs: int = 1,
        registry: Optional[Registry] = None,
        store: Union["ResultStore", str, None, bool] = None,
        backend: Union[str, object, None] = None,
        progress=None,
        batch: Union[bool, int, None] = None,
        timings: Union[str, Path, None, bool] = None,
    ) -> None:
        self.specs = [
            spec
            if isinstance(spec, PredictorSpec)
            else PredictorSpec.from_named(spec, profile=profile)
            for spec in specs
        ]
        if not self.specs:
            raise ValueError("an experiment needs at least one spec")
        seen: Dict[str, PredictorSpec] = {}
        for spec in self.specs:
            previous = seen.setdefault(spec.label, spec)
            if previous != spec:
                raise ValueError(
                    f"two different specs share the label {spec.label!r}; "
                    "give one an explicit name"
                )
        if traces is None and suite is None:
            raise ValueError("an experiment needs either a suite name or traces")
        self.suite = suite
        self.benchmarks = list(benchmarks) if benchmarks is not None else None
        self.length = length
        self.profile = profile
        self.jobs = jobs
        self.registry = registry
        self.store = ResultStore.resolve(store)
        self.backend = backend
        self.progress = progress
        self.batch = batch
        self.timings = timings
        self._traces = (
            [
                load_any_trace(trace) if isinstance(trace, (str, Path)) else trace
                for trace in traces
            ]
            if traces is not None
            else None
        )
        self._runner: Optional[SuiteRunner] = None

    def traces(self) -> List[Trace]:
        """The experiment's traces (generated on first use, then cached)."""
        if self._traces is None:
            from repro.workloads.suites import generate_suite

            self._traces = generate_suite(
                self.suite,
                target_conditional_branches=self.length,
                benchmarks=self.benchmarks,
            )
            if not self._traces:
                raise ValueError(
                    f"suite {self.suite!r} produced no traces for "
                    f"benchmarks {self.benchmarks!r}"
                )
        return self._traces

    def run(
        self,
        baseline: Optional[SpecLike] = None,
        track_per_pc: bool = False,
    ) -> ResultSet:
        """Simulate every spec over every trace and collect the results.

        ``baseline`` (a spec, a label, or a configuration name) enables
        per-trace delta reporting; when it is not already among the specs
        it is added to the run.
        """
        specs = list(self.specs)
        baseline_label: Optional[str] = None
        if baseline is not None:
            if isinstance(baseline, PredictorSpec):
                baseline_spec = baseline
            else:
                existing = next((s for s in specs if s.label == baseline), None)
                baseline_spec = existing or PredictorSpec.from_named(
                    baseline, profile=self.profile
                )
            baseline_label = baseline_spec.label
            existing = next((s for s in specs if s.label == baseline_label), None)
            if existing is None:
                specs.insert(0, baseline_spec)
            elif existing != baseline_spec:
                raise ValueError(
                    f"the baseline shares the label {baseline_label!r} with a "
                    "different spec in the experiment; give one an explicit name"
                )
        runner = self._get_runner()
        runs = runner.run_specs(
            specs, track_per_pc=track_per_pc, registry=self.registry
        )
        return ResultSet(
            specs=specs,
            runs=runs,
            trace_names=runner.trace_names(),
            baseline=baseline_label,
        )

    def _get_runner(self) -> SuiteRunner:
        """The experiment's runner, created on first use and then kept.

        Keeping the runner (and its memoisation cache and worker pool)
        across :meth:`run` calls makes repeated runs of overlapping spec
        sets near-free.
        """
        if self._runner is None:
            self._runner = SuiteRunner(
                self.traces(),
                profile=self.profile,
                max_workers=self.jobs if self.jobs and self.jobs > 1 else None,
                store=self.store if self.store is not None else False,
                backend=self.backend,
                progress=self.progress,
                batch=self.batch,
                timings=self.timings,
            )
        return self._runner

    def close(self) -> None:
        """Shut down the runner's worker pool (no-op when none exists)."""
        if self._runner is not None:
            self._runner.close()
