"""Declarative predictor specifications.

A :class:`PredictorSpec` is the serializable description of one predictor
variant: the base (a registered configuration name or an explicit
:class:`~repro.predictors.composites.CompositeOptions`), the size profile,
and a dict of parameter overrides.  Specs are plain data -- they survive a
lossless ``to_dict``/``from_dict`` (and JSON) round trip, expand into
parameter grids with :meth:`PredictorSpec.sweep`, travel across process
boundaries for the parallel runner, and build fresh predictors on demand::

    spec = PredictorSpec.from_named("tage-gsc+sic", profile="small")
    predictor = spec.build()

    grid = spec.sweep(oh_update_delay=[0, 15, 63])   # -> three specs
    spec == PredictorSpec.from_dict(spec.to_dict())  # lossless
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.api.registry import Registry, default_registry
from repro.predictors.base import BranchPredictor
from repro.predictors.composites import CompositeOptions

__all__ = ["PredictorSpec"]

#: Keys understood by :meth:`PredictorSpec.from_dict`.
_SPEC_KEYS = {"configuration", "options", "profile", "overrides", "name"}


@dataclass(frozen=True)
class PredictorSpec:
    """Declarative description of one predictor variant.

    Attributes
    ----------
    base:
        A registered configuration name (e.g. ``"tage-gsc+imli"``) or an
        explicit :class:`CompositeOptions`.
    profile:
        Size profile name resolved through the registry at build time.
    overrides:
        Parameter overrides: :class:`CompositeOptions` field replacements
        for options-based specs, keyword arguments for builder-based ones.
    name:
        Optional explicit label; when unset the label is derived from the
        base and the overrides.
    """

    base: Union[str, CompositeOptions]
    profile: str = "default"
    overrides: Mapping[str, Any] = field(default_factory=dict)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.base, (str, CompositeOptions)):
            raise TypeError(
                "base must be a configuration name or CompositeOptions, "
                f"got {type(self.base).__name__}"
            )
        object.__setattr__(self, "overrides", dict(self.overrides))

    def __hash__(self) -> int:
        # The generated hash would choke on the dict field; hashing the
        # override *keys* only stays consistent with the generated __eq__
        # (equal dicts have equal key sets) while keeping specs usable in
        # sets and as dict keys.
        return hash((self.base, self.profile, frozenset(self.overrides), self.name))

    # ----------------------------------------------------------------- #
    # Identity
    # ----------------------------------------------------------------- #

    @property
    def label(self) -> str:
        """Display / cache label of this spec.

        The explicit ``name`` when set; otherwise the base name (or the
        options label) with a ``[key=value,...]`` suffix listing the
        overrides.
        """
        if self.name:
            return self.name
        base = self.base if isinstance(self.base, str) else self.base.label()
        if not self.overrides:
            return base
        suffix = ",".join(f"{key}={self.overrides[key]}" for key in sorted(self.overrides))
        return f"{base}[{suffix}]"

    def content(self) -> str:
        """Canonical, label-independent content of this spec.

        A deterministic JSON dump of :meth:`to_dict` minus the display
        ``name``: two specs that build the same predictor the same way have
        equal content regardless of what they are called, and the string is
        stable across processes and sessions (keys are sorted, no hashes of
        live objects).  This is the spec component of the suite runner's
        memoisation key and of persistent result-store keys
        (:mod:`repro.store`).  Note that a *named* spec and its
        :meth:`resolve`-d explicit-options form have different content;
        resolve first when registry-independent identity is wanted.
        """
        data = self.to_dict()
        data.pop("name", None)
        return json.dumps(data, sort_keys=True, default=repr)

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`content`."""
        return hashlib.sha256(self.content().encode("utf-8")).hexdigest()

    # ----------------------------------------------------------------- #
    # Building
    # ----------------------------------------------------------------- #

    def build(self, registry: Optional[Registry] = None) -> BranchPredictor:
        """Build a fresh predictor for this spec."""
        registry = registry or default_registry()
        predictor = registry.build(self.base, profile=self.profile, **self.overrides)
        predictor.name = self.label
        return predictor

    def resolve(self, registry: Optional[Registry] = None) -> "PredictorSpec":
        """Return an equivalent spec whose base is explicit options.

        Named, options-backed bases are materialised (with the current
        label pinned as ``name`` so it survives the loss of the registry
        name); builder-based and already-explicit specs are returned
        unchanged.  A resolved spec is self-contained: its dict form builds
        the same predictor in a worker process that never saw the caller's
        registrations.
        """
        if isinstance(self.base, CompositeOptions):
            return self
        registry = registry or default_registry()
        options = registry.options(self.base)
        if options is None:  # builder-based: cannot be made declarative
            return self
        return replace(self, base=options, name=self.label)

    def sweep(self, **grids: Any) -> List["PredictorSpec"]:
        """Expand a parameter grid into a list of specs.

        Every keyword maps an override name to a list of values (a scalar
        counts as a one-element list); the result is the cartesian product,
        each spec carrying the merged overrides and a derived label::

            PredictorSpec.from_named("tage-gsc+oh").sweep(
                oh_update_delay=[0, 63], imli_sic=[False, True]
            )  # -> 4 specs

        The explicit ``name`` is dropped so each expanded spec gets a
        distinct derived label.
        """
        if not grids:
            return [replace(self, name=None)]
        names = list(grids)
        axes = [
            value if isinstance(value, (list, tuple)) else [value]
            for value in grids.values()
        ]
        specs = []
        for combo in itertools.product(*axes):
            merged = dict(self.overrides)
            merged.update(zip(names, combo))
            specs.append(replace(self, overrides=merged, name=None))
        return specs

    # ----------------------------------------------------------------- #
    # Serialization
    # ----------------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-dict form (JSON-safe)."""
        data: Dict[str, Any] = {}
        if isinstance(self.base, CompositeOptions):
            data["options"] = asdict(self.base)
        else:
            data["configuration"] = self.base
        data["profile"] = self.profile
        if self.overrides:
            data["overrides"] = dict(self.overrides)
        if self.name is not None:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredictorSpec":
        """Inverse of :meth:`to_dict`."""
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown spec key(s) {unknown}; valid keys: {sorted(_SPEC_KEYS)}"
            )
        has_options = "options" in data
        has_name = "configuration" in data
        if has_options == has_name:
            raise ValueError(
                "a spec needs exactly one of 'configuration' (a registered "
                "name) or 'options' (explicit CompositeOptions fields)"
            )
        base: Union[str, CompositeOptions]
        if has_options:
            base = CompositeOptions(**data["options"])
        else:
            base = data["configuration"]
        return cls(
            base=base,
            profile=data.get("profile", "default"),
            overrides=data.get("overrides") or {},
            name=data.get("name"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PredictorSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------------- #
    # Constructors
    # ----------------------------------------------------------------- #

    @classmethod
    def from_named(
        cls,
        name: str,
        profile: str = "default",
        *,
        label: Optional[str] = None,
        **overrides: Any,
    ) -> "PredictorSpec":
        """Spec for a registered configuration name.

        ``label`` sets the spec's explicit display name (the ``name``
        field -- called ``label`` here because the positional argument is
        the configuration name).
        """
        return cls(base=name, profile=profile, overrides=overrides, name=label)
