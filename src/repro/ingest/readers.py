"""Readers for external branch-trace formats.

A reader turns some on-disk representation of a branch trace into a stream
of :class:`RawEvent` objects -- the *unvalidated* intermediate form the
gatekeeper (:mod:`repro.ingest.gatekeeper`) then checks and converts into
:class:`~repro.trace.branch.BranchRecord` instances.  Readers never
validate semantics themselves; they only parse, attributing every event to
its source location (line number or byte offset) so a downstream rejection
can name exactly what was wrong and where.

Two formats ship:

``cbp``
    CBP-championship-style text: one branch per line, ``pc taken
    [target] [kind] [gap]``, ``#`` comments, hex (``0x``) or decimal
    addresses, ``1/0/T/N/y/n`` outcomes.  ``.gz`` inputs are decompressed
    transparently.

``raw``
    A raw binary event stream: little-endian packed records of
    ``<pc:u64, target:u64, taken:u8, kind:u8, gap:u32>`` (26 bytes per
    event), the kind byte using the columnar trace's stable codes.

New formats register with :func:`register_reader`; :func:`resolve_reader`
picks one by name or sniffs the input (``auto``).
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

__all__ = [
    "RawEvent",
    "TraceReader",
    "CBPTextReader",
    "RawBinaryReader",
    "reader_names",
    "register_reader",
    "resolve_reader",
]


@dataclass
class RawEvent:
    """One parsed-but-unvalidated branch event.

    ``kind_code`` uses :data:`repro.trace.branch.KIND_TO_CODE` values;
    ``gap`` is the instruction gap (``None`` when the format does not carry
    one -- the gatekeeper substitutes the pipeline's default).  ``source``
    names where the event came from (``"line 12"`` / ``"offset 104"``) and
    ``raw`` preserves the original text (or a hex excerpt) for error
    attribution.
    """

    pc: int
    taken: bool
    target: Optional[int] = None
    kind_code: int = 0
    gap: Optional[int] = None
    source: str = ""
    raw: str = ""


class TraceReader:
    """Structural interface of a trace reader.

    Subclasses set :attr:`name`, implement :meth:`events` and optionally
    :meth:`sniff` (used by ``auto`` format detection).
    """

    name = "abstract"

    def events(self, path: Path) -> Iterator[RawEvent]:
        """Yield one :class:`RawEvent` per branch in ``path``."""
        raise NotImplementedError

    @classmethod
    def sniff(cls, path: Path) -> bool:
        """Whether this reader thinks it can parse ``path``."""
        return False


def _open_maybe_gzip(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return path.open("rt", encoding="utf-8", errors="replace")


_TAKEN_TOKENS = {
    "1": True, "0": False,
    "t": True, "n": False,
    "y": True,
    "taken": True, "not-taken": False, "nottaken": False,
}

_KIND_TOKENS = {
    "cond": 0, "c": 0, "conditional": 0,
    "uncond": 1, "u": 1, "j": 1, "unconditional": 1,
    "call": 2,
    "ret": 3, "return": 3,
    "ind": 4, "indirect": 4,
}


class CBPTextReader(TraceReader):
    """CBP-style text traces: ``pc taken [target] [kind] [gap]`` per line."""

    name = "cbp"

    def events(self, path: Path) -> Iterator[RawEvent]:
        """Yield events from a (possibly gzipped) CBP-style text file."""
        with _open_maybe_gzip(path) as stream:
            for line_number, raw_line in enumerate(stream, start=1):
                line = raw_line.strip()
                if not line or line.startswith("#") or line.startswith("//"):
                    continue
                yield self._parse_line(line, line_number)

    @staticmethod
    def _parse_line(line: str, line_number: int) -> RawEvent:
        fields = line.split()
        source = f"line {line_number}"
        event = RawEvent(pc=-1, taken=False, source=source, raw=line)
        try:
            event.pc = int(fields[0], 0)
        except ValueError:
            return event  # pc stays -1: the gatekeeper attributes the junk
        if len(fields) < 2:
            event.pc = -1  # a lone pc is malformed, not a valid event
            return event
        taken = _TAKEN_TOKENS.get(fields[1].lower())
        if taken is None:
            event.pc = -1
            return event
        event.taken = taken
        if len(fields) >= 3:
            try:
                event.target = int(fields[2], 0)
            except ValueError:
                event.pc = -1
                return event
        if len(fields) >= 4:
            kind = _KIND_TOKENS.get(fields[3].lower())
            if kind is None:
                event.pc = -1
                return event
            event.kind_code = kind
        if len(fields) >= 5:
            try:
                event.gap = int(fields[4], 0)
            except ValueError:
                event.pc = -1
                return event
        return event

    @classmethod
    def sniff(cls, path: Path) -> bool:
        """True when the first data line parses as ``pc taken ...``."""
        try:
            with _open_maybe_gzip(path) as stream:
                for _ in range(50):
                    line = stream.readline()
                    if not line:
                        break
                    line = line.strip()
                    if not line or line.startswith("#") or line.startswith("//"):
                        continue
                    fields = line.split()
                    if len(fields) < 2:
                        return False
                    int(fields[0], 0)
                    return fields[1].lower() in _TAKEN_TOKENS
        except (OSError, ValueError, UnicodeError):
            return False
        return False


#: Packed layout of one raw binary event (little-endian).
_RAW_EVENT = struct.Struct("<QQBBI")

#: Optional magic prefix of raw binary event streams (written by exporters
#: that want sniffable files); a stream may also start directly with events.
RAW_MAGIC = b"RPRAW1\n"


class RawBinaryReader(TraceReader):
    """Raw binary branch events: ``<pc:u64 target:u64 taken:u8 kind:u8 gap:u32>``."""

    name = "raw"

    #: Events decoded per read (bounds memory on huge inputs).
    BATCH = 65536

    def events(self, path: Path) -> Iterator[RawEvent]:
        """Decode fixed-size packed events in bounded-memory batches."""
        size = _RAW_EVENT.size
        opener = gzip.open if path.suffix == ".gz" else open
        with opener(path, "rb") as stream:
            head = stream.read(len(RAW_MAGIC))
            if head == RAW_MAGIC:
                offset, pending = len(RAW_MAGIC), b""
            else:
                offset, pending = 0, head
            while True:
                block = stream.read(size * self.BATCH)
                data = pending + block
                usable = len(data) - (len(data) % size)
                for start in range(0, usable, size):
                    pc, target, taken, kind, gap = _RAW_EVENT.unpack_from(
                        data, start
                    )
                    yield RawEvent(
                        pc=pc,
                        taken=bool(taken) if taken in (0, 1) else taken,
                        target=target,
                        kind_code=kind,
                        gap=gap,
                        source=f"offset {offset + start}",
                        raw=data[start : start + size].hex(),
                    )
                pending = data[usable:]
                offset += usable
                if not block:
                    break
            if pending:
                yield RawEvent(
                    pc=-1,
                    taken=False,
                    source=f"offset {offset}",
                    raw=pending.hex(),
                )

    @classmethod
    def sniff(cls, path: Path) -> bool:
        """True when the stream starts with :data:`RAW_MAGIC`."""
        try:
            opener = gzip.open if path.suffix == ".gz" else open
            with opener(path, "rb") as stream:
                return stream.read(len(RAW_MAGIC)) == RAW_MAGIC
        except OSError:
            return False


_READERS: Dict[str, Callable[[], TraceReader]] = {}


def register_reader(name: str, factory: Callable[[], TraceReader]) -> None:
    """Register a reader factory under ``name`` (overwrites silently)."""
    _READERS[name] = factory


def reader_names() -> list:
    """Registered reader names (sorted)."""
    return sorted(_READERS)


def resolve_reader(name: str, path: Union[str, Path]) -> TraceReader:
    """Instantiate a reader by name, or sniff the input when ``"auto"``."""
    path = Path(path)
    if name != "auto":
        try:
            return _READERS[name]()
        except KeyError:
            raise ValueError(
                f"unknown trace reader {name!r}; registered: "
                f"{', '.join(reader_names())}"
            ) from None
    for factory in _READERS.values():
        reader = factory()
        if type(reader).sniff(path):
            return reader
    raise ValueError(
        f"could not auto-detect the format of {path}; pass --reader "
        f"({', '.join(reader_names())})"
    )


register_reader(CBPTextReader.name, CBPTextReader)
register_reader(RawBinaryReader.name, RawBinaryReader)
