"""The ingest pipeline: external trace file -> repro trace layout.

``ingest_trace`` wires a reader (:mod:`repro.ingest.readers`), the
gatekeeper (:mod:`repro.ingest.gatekeeper`) and a trace writer into one
streaming pass: events are parsed, validated and appended to a
:class:`~repro.trace.chunked.ChunkedTraceWriter` (or an in-memory trace
for the monolithic layout) one at a time, so converting an arbitrarily
large input costs one chunk of memory.  The returned
:class:`IngestReport` carries everything ``repro ingest`` prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.ingest.gatekeeper import Gatekeeper
from repro.ingest.readers import resolve_reader
from repro.trace.chunked import (
    DEFAULT_CHUNK_BRANCHES,
    ChunkedTrace,
    ChunkedTraceWriter,
)
from repro.trace.trace import Trace, save_trace_binary

__all__ = ["IngestReport", "ingest_trace"]

LAYOUTS = ("chunked", "binary")


@dataclass
class IngestReport:
    """Outcome of one ingest run (what ``repro ingest convert`` reports)."""

    name: str
    input: str
    output: str
    layout: str
    reader: str
    policy: str
    records: int
    conditional: int
    instructions: int
    repaired: int
    skipped: int
    chunks: int
    fingerprint: str
    elapsed_seconds: float
    attributions: List[str] = field(default_factory=list)

    @property
    def branches_per_second(self) -> float:
        """Ingest throughput (0.0 when no time elapsed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.records / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-dict form (the ``ingest convert --json`` output)."""
        return {
            "name": self.name,
            "input": self.input,
            "output": self.output,
            "layout": self.layout,
            "reader": self.reader,
            "policy": self.policy,
            "records": self.records,
            "conditional": self.conditional,
            "instructions": self.instructions,
            "repaired": self.repaired,
            "skipped": self.skipped,
            "chunks": self.chunks,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "branches_per_second": self.branches_per_second,
            "attributions": list(self.attributions),
        }


def ingest_trace(
    input_path: Union[str, Path],
    output_path: Union[str, Path],
    reader: str = "auto",
    name: Optional[str] = None,
    layout: str = "chunked",
    chunk_branches: int = DEFAULT_CHUNK_BRANCHES,
    on_error: str = "reject",
    default_gap: int = 4,
    metadata: Optional[Dict[str, str]] = None,
) -> IngestReport:
    """Convert an external trace into the chunked (or binary) layout.

    Parameters
    ----------
    input_path:
        The external trace file (text, ``.gz`` text, or raw binary).
    output_path:
        Destination: a directory for ``layout="chunked"``, a file for
        ``layout="binary"``.
    reader:
        Reader name (``"cbp"``, ``"raw"``) or ``"auto"`` to sniff.
    name:
        Trace name; defaults to the input file's stem.
    layout:
        ``"chunked"`` (the streaming RPCHUNK1 directory, the default) or
        ``"binary"`` (one monolithic RPTRACE1 file -- requires the whole
        trace in memory, intended for small traces and comparisons).
    chunk_branches:
        Records per chunk for the chunked layout.
    on_error:
        Gatekeeper policy: ``"reject"`` (default), ``"repair"``, ``"skip"``.
    default_gap:
        Instruction gap substituted when the input format carries none.
    metadata:
        Extra metadata recorded in the output (merged over the pipeline's
        own ``ingested-from``/``ingest-reader`` keys).
    """
    input_path = Path(input_path)
    output_path = Path(output_path)
    if layout not in LAYOUTS:
        raise ValueError(
            f"unknown layout {layout!r}; use one of {', '.join(LAYOUTS)}"
        )
    if not input_path.exists():
        raise FileNotFoundError(f"input trace {input_path} does not exist")
    trace_reader = resolve_reader(reader, input_path)
    gatekeeper = Gatekeeper(policy=on_error, default_gap=default_gap)
    trace_name = name or _default_name(input_path)
    trace_metadata = {
        "ingested-from": input_path.name,
        "ingest-reader": trace_reader.name,
    }
    if metadata:
        trace_metadata.update(metadata)

    started = time.perf_counter()
    records = gatekeeper.validate(trace_reader.events(input_path))
    if layout == "chunked":
        writer = ChunkedTraceWriter(
            output_path,
            name=trace_name,
            metadata=trace_metadata,
            chunk_branches=chunk_branches,
        )
        for record in records:
            writer.append(record)
        result: Union[Trace, ChunkedTrace] = writer.close()
        chunks = result.chunk_count
    else:
        trace = Trace(name=trace_name, metadata=trace_metadata)
        for record in records:
            trace.append(record)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        save_trace_binary(trace, output_path)
        result = trace
        chunks = 0
    elapsed = time.perf_counter() - started

    return IngestReport(
        name=trace_name,
        input=str(input_path),
        output=str(output_path),
        layout=layout,
        reader=trace_reader.name,
        policy=on_error,
        records=len(result),
        conditional=result.conditional_count,
        instructions=result.instruction_count,
        repaired=gatekeeper.repaired,
        skipped=gatekeeper.skipped,
        chunks=chunks,
        fingerprint=result.fingerprint(),
        elapsed_seconds=elapsed,
        attributions=list(gatekeeper.attributions),
    )


def _default_name(path: Path) -> str:
    stem = path.stem
    if path.suffix == ".gz":
        stem = Path(stem).stem or stem
    return stem
