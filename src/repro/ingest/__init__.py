"""Real-trace ingestion: external formats -> streaming chunked traces.

The subsystem has three small layers:

* :mod:`repro.ingest.readers` -- format parsers (CBP-style text/gzip, raw
  binary events) behind a :func:`~repro.ingest.readers.register_reader`
  registry, producing attributed :class:`~repro.ingest.readers.RawEvent`
  streams;
* :mod:`repro.ingest.gatekeeper` -- the validation chokepoint with a
  reject / repair / skip policy and per-event source attribution;
* :mod:`repro.ingest.pipeline` -- :func:`ingest_trace`, the streaming
  conversion into the chunked ``RPCHUNK1`` layout
  (:mod:`repro.trace.chunked`) or a monolithic binary trace.

``repro ingest`` (:mod:`repro.cli`) is the command-line face of this
package; ``docs/TRACES.md`` documents the formats and guarantees.
"""

from repro.ingest.gatekeeper import Gatekeeper, IngestError, POLICIES
from repro.ingest.pipeline import IngestReport, ingest_trace
from repro.ingest.readers import (
    CBPTextReader,
    RAW_MAGIC,
    RawBinaryReader,
    RawEvent,
    TraceReader,
    reader_names,
    register_reader,
    resolve_reader,
)

__all__ = [
    "CBPTextReader",
    "Gatekeeper",
    "IngestError",
    "IngestReport",
    "POLICIES",
    "RAW_MAGIC",
    "RawBinaryReader",
    "RawEvent",
    "TraceReader",
    "ingest_trace",
    "reader_names",
    "register_reader",
    "resolve_reader",
]
