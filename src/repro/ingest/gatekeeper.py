"""Gatekeeper validation between trace readers and the trace writers.

Readers (:mod:`repro.ingest.readers`) parse external formats into
:class:`~repro.ingest.readers.RawEvent` streams without judging them; the
gatekeeper is the single place ingest semantics are enforced, so every
reader gets the same policy surface:

``reject``
    Raise :class:`IngestError` on the first bad event, naming the source
    location and the offending content (the default -- an ingested trace
    should be exactly what the input said).

``repair``
    Fix what is unambiguously fixable (a not-taken unconditional branch is
    forced taken, a missing target becomes the fall-through ``pc + 1``, an
    out-of-range gap is clamped) and count the repairs; unfixable events
    still raise.

``skip``
    Drop bad events and count them; the report says how many and shows the
    first few attributions.

Sanity checks cover field ranges (the columnar storage holds signed 64-bit
values), kind codes, taken-flag encoding, and a monotonicity guard on
source attribution so a buggy reader cannot silently interleave streams.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.ingest.readers import RawEvent
from repro.trace.branch import (
    CONDITIONAL_CODE,
    KIND_FROM_CODE,
    BranchRecord,
)

__all__ = [
    "IngestError",
    "Gatekeeper",
    "POLICIES",
]

POLICIES = ("reject", "repair", "skip")

#: Columnar storage is signed 64-bit (`array("q")`).
_MAX_FIELD = 2**63 - 1

#: How many bad-event attributions the report keeps verbatim.
_KEPT_ATTRIBUTIONS = 5


def _source_position(source: str) -> Optional[int]:
    """Numeric position of a ``"line N"`` / ``"offset N"`` attribution."""
    _, _, tail = source.rpartition(" ")
    return int(tail) if tail.isdigit() else None


class IngestError(ValueError):
    """An input event failed validation (carries source attribution)."""

    def __init__(self, message: str, source: str = "", raw: str = "") -> None:
        detail = message
        if source:
            detail = f"{source}: {detail}"
        if raw:
            detail = f"{detail} (input: {raw[:120]!r})"
        super().__init__(detail)
        self.source = source
        self.raw = raw


class Gatekeeper:
    """Validate a :class:`RawEvent` stream into :class:`BranchRecord`\\ s.

    One instance handles one ingest run; the counters (``accepted``,
    ``repaired``, ``skipped``) and ``attributions`` feed the ingest
    report.
    """

    def __init__(
        self, policy: str = "reject", default_gap: int = 4
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown ingest policy {policy!r}; use one of "
                f"{', '.join(POLICIES)}"
            )
        if default_gap < 0:
            raise ValueError(f"default gap must be non-negative, got {default_gap}")
        self.policy = policy
        self.default_gap = default_gap
        self.accepted = 0
        self.repaired = 0
        self.skipped = 0
        self.attributions: List[str] = []

    # ------------------------------------------------------------------ #

    def _problem(self, event: RawEvent, message: str) -> None:
        """Record (skip) or raise one unfixable problem, per policy."""
        if self.policy == "skip":
            self.skipped += 1
            if len(self.attributions) < _KEPT_ATTRIBUTIONS:
                where = event.source or f"event {self.accepted + self.skipped}"
                self.attributions.append(f"{where}: {message}")
            return
        raise IngestError(message, source=event.source, raw=event.raw)

    def _repair(self, event: RawEvent, message: str) -> bool:
        """Whether a fixable problem may be repaired (else treat as problem)."""
        if self.policy == "repair":
            self.repaired += 1
            if len(self.attributions) < _KEPT_ATTRIBUTIONS:
                where = event.source or f"event {self.accepted + self.skipped}"
                self.attributions.append(f"{where}: repaired: {message}")
            return True
        self._problem(event, message)
        return False

    def validate(self, events: Iterable[RawEvent]) -> Iterator[BranchRecord]:
        """Yield validated records, applying the policy to bad events."""
        last_position = -1
        for event in events:
            position = _source_position(event.source)
            if position is not None:
                # Monotonic source order is a *reader* invariant, not an
                # input-quality issue, so it raises under every policy.
                if position < last_position:
                    raise IngestError(
                        f"events out of source order ({event.source} after "
                        f"position {last_position})",
                        source=event.source,
                        raw=event.raw,
                    )
                last_position = position
            record = self._check(event)
            if record is not None:
                self.accepted += 1
                yield record

    def _check(self, event: RawEvent) -> Optional[BranchRecord]:
        if event.pc < 0 or event.pc > _MAX_FIELD:
            self._problem(event, "malformed event (unparseable or pc out of range)")
            return None
        if not 0 <= event.kind_code < len(KIND_FROM_CODE):
            self._problem(event, f"unknown branch kind code {event.kind_code}")
            return None
        taken = event.taken
        if not isinstance(taken, bool):
            if taken in (0, 1):
                taken = bool(taken)
            else:
                if not self._repair(event, f"taken flag {taken!r} coerced to True"):
                    return None
                taken = True
        if event.kind_code != CONDITIONAL_CODE and not taken:
            if not self._repair(
                event, "non-conditional branch marked not-taken; forced taken"
            ):
                return None
            taken = True
        target = event.target
        if target is None:
            target = event.pc + 1
        elif target < 0 or target > _MAX_FIELD:
            if not self._repair(
                event, f"target {target} out of range; using fall-through"
            ):
                return None
            target = event.pc + 1
        gap = event.gap
        if gap is None:
            gap = self.default_gap
        elif gap < 0 or gap > _MAX_FIELD:
            if not self._repair(event, f"instruction gap {gap} clamped to 0"):
                return None
            gap = 0
        return BranchRecord(
            pc=event.pc,
            target=target,
            taken=taken,
            kind=KIND_FROM_CODE[event.kind_code],
            instruction_gap=gap,
        )
