"""Command-line interface.

The CLI exposes the library's main workflows without writing any Python:

``python -m repro list``
    Show the available suites, benchmarks, predictor configurations, size
    profiles and registered experiments (all read dynamically from the
    registries, so user registrations appear too).
``python -m repro simulate``
    Run predictor configurations -- by name and/or from spec JSON files
    (``--spec``) -- over (a subset of) a synthetic suite and print the
    per-benchmark MPKI table.
``python -m repro sweep``
    Expand a parameter grid over a base configuration into a list of
    specs, run them (serially or with ``--jobs``), and print / export the
    resulting MPKI table with deltas against the base.
``python -m repro experiment <id>``
    Regenerate one of the paper's tables/figures (same registry as the
    benchmark harness).
``python -m repro trace``
    Generate one synthetic benchmark trace and write it to a file in the
    library's text format.
``python -m repro ingest``
    Convert external trace files (CBP-style text, raw binary events) into
    the library's formats -- including the chunked on-disk layout that
    streams through simulation in bounded memory -- and validate or
    inspect them (see ``docs/TRACES.md``).  Ingested traces plug into
    ``simulate`` / ``sweep`` / ``serve`` / ``submit`` via ``--trace``.
``python -m repro store``
    Inspect and maintain the persistent result store (``ls`` / ``gc`` /
    ``export`` / ``import``).  ``simulate`` and ``sweep`` read and write
    the store when ``--store DIR`` (or ``REPRO_RESULT_STORE``) names one,
    so an interrupted sweep restarted with ``--resume`` recomputes only
    the missing cells.
``python -m repro serve``
    Start a distributed sweep coordinator: expand a sweep into store
    cells and serve them to ``repro worker`` processes over TCP (or run
    as an idle service accepting ``repro submit`` jobs).
``python -m repro worker``
    Connect to a coordinator, lease cells, simulate them (optionally over
    a local process pool) and upload the results.
``python -m repro submit``
    Send a sweep to a running coordinator and wait for the results.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shlex
import signal
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.api.experiment import Experiment, ResultSet
from repro.api.registry import default_registry
from repro.api.specs import PredictorSpec
from repro.common.progress import ProgressPrinter
from repro.obs.http import DEFAULT_STATUS_PORT, StatusServer
from repro.obs.top import run_top
from repro.sim.runner import ConfigurationRun, SuiteRunner
from repro.store import ResultStore
from repro.trace.chunked import load_any_trace
from repro.trace.trace import save_trace, save_trace_binary
from repro.workloads.suites import (
    benchmark_names,
    generate_benchmark,
    generate_suite,
    get_benchmark,
    suite_names,
)

#: Default TCP port of ``repro serve`` (workers and submitters default to it).
DEFAULT_PORT = 4780

#: Distinct exit codes for the failures an operator scripts around:
#: 2 stays argparse/usage errors, 130 stays SIGINT.
EXIT_BIND_FAILURE = 3  # `repro serve` could not bind its listen port
EXIT_UNREACHABLE = 4  # `repro worker` never reached a coordinator
EXIT_CORRUPTION = 5  # `repro store verify` found corrupt/truncated records

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def _non_negative_float(value: str) -> float:
    parsed = float(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return parsed


def _add_workload_arguments(parser: argparse.ArgumentParser, length: int) -> None:
    parser.add_argument("--suite", default="cbp4like", choices=suite_names())
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names (default: the whole suite)",
    )
    parser.add_argument("--length", type=int, default=length,
                        help="conditional branches per benchmark trace")
    parser.add_argument(
        "--profile", default="small", choices=default_registry().profile_names(),
    )
    parser.add_argument(
        "--jobs", "-j", type=_positive_int, default=1,
        help="worker processes for the simulations (default: 1, in-process)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent result store directory; completed (spec, trace) "
             "cells are reused and new ones persisted "
             "(default: $REPRO_RESULT_STORE when set)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-cell completion (done/total, cells/s, ETA) on stderr",
    )
    _add_trace_argument(parser)
    _add_batch_arguments(parser)


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="append", default=[], metavar="PATH", dest="trace_paths",
        help="simulate over this trace file or chunked trace directory "
             "(repeatable; see 'repro ingest'); replaces the synthetic "
             "suite when given",
    )


def _add_batch_arguments(parser: argparse.ArgumentParser) -> None:
    """``--batch`` / ``--no-batch``: same-trace cell batching escape hatch."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--batch", type=_positive_int, default=None, metavar="N",
        help="max same-trace (spec, trace) cells simulated per batched "
             "traversal (default: engine default); results are identical "
             "at any setting; distributed trace-affinity leases pick the "
             "grant cap up from 'serve' (a grant holds up to "
             "min(worker --batch, serve --batch) cells), and the printed "
             "'repro sweep --resume' command carries this flag forward",
    )
    group.add_argument(
        "--no-batch", action="store_true",
        help="disable same-trace cell batching (one simulation per cell); "
             "propagated by the printed resume command like --batch",
    )


def _batch_option(args: argparse.Namespace):
    """The ``batch=`` value for Experiment from ``--batch``/``--no-batch``."""
    if getattr(args, "no_batch", False):
        return False
    return args.batch


def _grant_limit(args: argparse.Namespace) -> int:
    """Cells per lease grant for serve/worker (1 disables batching)."""
    from repro.sim.runner import DEFAULT_BATCH_CELLS

    if getattr(args, "no_batch", False):
        return 1
    return args.batch if args.batch is not None else DEFAULT_BATCH_CELLS


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default: $REPRO_RESULT_STORE)",
    )


def _add_grid_arguments(
    parser: argparse.ArgumentParser, require_base: bool = True
) -> None:
    """``--base`` / ``--param``: the sweep grid (shared by sweep/serve/submit)."""
    parser.add_argument(
        "--base", required=require_base, default=None,
        help="configuration name (or spec JSON file) the grid is applied to",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="NAME=V1,V2,...",
        help="one grid axis: an override name and its comma-separated values "
             "(repeatable; values are parsed as JSON, falling back to strings)",
    )


def _add_suite_arguments(parser: argparse.ArgumentParser, length: int = 2500) -> None:
    """Workload selection without execution options (serve/submit)."""
    parser.add_argument("--suite", default="cbp4like", choices=suite_names())
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names (default: the whole suite)",
    )
    parser.add_argument("--length", type=int, default=length,
                        help="conditional branches per benchmark trace")
    parser.add_argument(
        "--profile", default="small", choices=default_registry().profile_names(),
    )
    _add_trace_argument(parser)


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", dest="json_output", default=None, metavar="FILE",
        help="write the full result set as JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--csv", dest="csv_output", default=None, metavar="FILE",
        help="write the MPKI table as CSV to FILE ('-' for stdout)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMLI branch predictor paper (MICRO 2015).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list suites, benchmarks, configurations, profiles, experiments"
    )

    simulate = subparsers.add_parser(
        "simulate", help="run predictor configurations over a synthetic suite"
    )
    simulate.add_argument(
        "--configurations", default=None,
        help="comma-separated configuration names "
             "(default: tage-gsc,tage-gsc+imli when no --spec is given)",
    )
    simulate.add_argument(
        "--spec", action="append", default=None, metavar="FILE",
        help="JSON file holding one predictor spec or a list of specs "
             "(repeatable; see docs/API.md for the schema)",
    )
    _add_workload_arguments(simulate, length=2500)

    sweep = subparsers.add_parser(
        "sweep", help="expand a parameter grid into predictor specs and run them"
    )
    _add_grid_arguments(sweep)
    _add_export_arguments(sweep)
    sweep.add_argument(
        "--resume", action="store_true",
        help="require a persistent result store (--store or "
             "$REPRO_RESULT_STORE) so completed (spec, trace) cells are "
             "reused and only missing ones are recomputed; without this "
             "flag a configured store is still used, but its absence is "
             "not an error",
    )
    _add_workload_arguments(sweep, length=2500)

    serve = subparsers.add_parser(
        "serve",
        help="start a distributed sweep coordinator for repro worker processes",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"listen port (default: {DEFAULT_PORT}; 0 picks a free port, "
             "printed on stderr)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=120.0, metavar="SECONDS",
        help="requeue a leased cell when no result arrives within this time "
             "(default: 120; renewing workers extend their leases by "
             "heartbeat, so this bounds crash detection, not cell runtime)",
    )
    serve.add_argument(
        "--journal", nargs="?", const="", default=None, metavar="PATH",
        help="crash-safe journal of admitted jobs: a restarted "
             "`repro serve --journal` re-admits unfinished jobs and, with a "
             "store, resumes exactly where the crash left off (bare flag "
             "derives PATH as journal.jsonl inside --store)",
    )
    serve.add_argument(
        "--max-lease-losses", type=_positive_int, default=3, metavar="N",
        help="quarantine a cell after its lease is lost N times instead of "
             "requeueing it forever (default: 3)",
    )
    _add_grid_arguments(serve, require_base=False)
    _add_suite_arguments(serve)
    _add_export_arguments(serve)
    _add_store_argument(serve)
    serve.add_argument(
        "--progress", action="store_true",
        help="print per-cell completion (done/total, cells/s, ETA) on stderr",
    )
    serve.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="also serve read-only HTTP status endpoints (/status, /jobs, "
             "/workers, /store, /metrics) on this port (0 picks a free "
             "port, printed on stderr; default: off)",
    )
    serve.add_argument(
        "--status-host", default="127.0.0.1", metavar="HOST",
        help="bind address of the status endpoints (default: 127.0.0.1; "
             "the surface is unauthenticated -- widen with care)",
    )
    _add_batch_arguments(serve)

    worker = subparsers.add_parser(
        "worker", help="lease sweep cells from a coordinator and simulate them"
    )
    worker.add_argument(
        "--connect", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help=f"coordinator address (default: 127.0.0.1:{DEFAULT_PORT})",
    )
    worker.add_argument(
        "--jobs", "-j", type=_positive_int, default=1,
        help="concurrent simulations on this worker (default: 1, in-process)",
    )
    worker.add_argument("--name", default=None, help="worker name in coordinator logs")
    worker.add_argument(
        "--connect-retry", type=float, default=10.0, metavar="SECONDS",
        help="keep retrying the initial connect for this long (default: 10)",
    )
    worker.add_argument(
        "--reconnect", type=_non_negative_float, default=None, metavar="SECONDS",
        help="after an abrupt connection loss, keep reconnecting (capped "
             "jittered exponential backoff) for this long before giving up "
             "(default: 30; 0 exits on first disconnect)",
    )
    _add_batch_arguments(worker)
    _add_store_argument(worker)

    submit = subparsers.add_parser(
        "submit", help="send a sweep to a running coordinator and await results"
    )
    submit.add_argument(
        "--connect", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help=f"coordinator address (default: 127.0.0.1:{DEFAULT_PORT})",
    )
    _add_grid_arguments(submit)
    _add_suite_arguments(submit)
    _add_export_arguments(submit)
    submit.add_argument(
        "--progress", action="store_true",
        help="print per-cell completion (done/total, cells/s, ETA) on stderr",
    )

    top = subparsers.add_parser(
        "top", help="live terminal view of a coordinator's status endpoints"
    )
    top.add_argument(
        "--connect", default=f"127.0.0.1:{DEFAULT_STATUS_PORT}",
        metavar="HOST:PORT",
        help="status endpoint address -- the coordinator's "
             f"`serve --status-port` (default: 127.0.0.1:{DEFAULT_STATUS_PORT})",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default: 2)",
    )
    top.add_argument(
        "--iterations", type=_positive_int, default=None, metavar="N",
        help="render N frames and exit (default: poll until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", dest="clear", action="store_false",
        help="append frames instead of clearing the screen between them "
             "(for dumb terminals and log capture)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument("experiment_id", choices=experiment_ids())
    experiment.add_argument("--length", type=int, default=2500)
    experiment.add_argument(
        "--profile", default="small", choices=default_registry().profile_names(),
    )
    experiment.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names to restrict both suites to",
    )
    experiment.add_argument(
        "--jobs", "-j", type=_positive_int, default=1,
        help="worker processes for the simulations (default: 1, in-process)",
    )

    store = subparsers.add_parser(
        "store", help="inspect and maintain the persistent result store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list the stored result cells")
    store_ls.add_argument(
        "--json", dest="json_output", action="store_true",
        help="machine-readable output: one JSON array of cell summaries",
    )
    store_ls.add_argument(
        "--traces", dest="traces_view", action="store_true",
        help="group by trace instead: one row per trace fingerprint in the "
             "store, with the trace names seen and the cell count",
    )
    store_ls.add_argument(
        "--summary", dest="summary_view", action="store_true",
        help="print one line of totals instead (cells, bytes on disk, "
             "distinct specs, distinct traces)",
    )
    _add_store_argument(store_ls)
    store_gc = store_sub.add_parser(
        "gc", help="delete stored cells older than a cut-off"
    )
    store_gc.add_argument(
        "--older-than", required=True, metavar="AGE",
        help="age cut-off, e.g. 30d, 12h, 45m, 90s (bare numbers are seconds)",
    )
    _add_store_argument(store_gc)
    store_export = store_sub.add_parser(
        "export", help="dump every stored record as one JSON document"
    )
    store_export.add_argument(
        "--output", default="-", metavar="FILE",
        help="destination file ('-' for stdout, the default)",
    )
    _add_store_argument(store_export)
    store_import = store_sub.add_parser(
        "import", help="ingest records produced by 'store export' (merge stores)"
    )
    store_import.add_argument(
        "input", nargs="?", default="-", metavar="FILE",
        help="JSON document to ingest ('-' for stdin, the default)",
    )
    _add_store_argument(store_import)
    store_verify = store_sub.add_parser(
        "verify",
        help="scrub every stored record against its embedded checksum "
             "(docs/INTEGRITY.md)",
    )
    store_verify.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt/truncated records into <store>/corrupt/ so "
             "the next sweep recomputes those cells",
    )
    store_verify.add_argument(
        "--json", dest="json_output", action="store_true",
        help="machine-readable output: the full verification report",
    )
    _add_store_argument(store_verify)

    ingest = subparsers.add_parser(
        "ingest",
        help="convert, validate or inspect external trace files (docs/TRACES.md)",
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)
    convert = ingest_sub.add_parser(
        "convert", help="convert an external trace into a library format"
    )
    convert.add_argument("input", help="source trace file (gzip transparently)")
    convert.add_argument(
        "--output", "-o", required=True, metavar="PATH",
        help="destination: a directory for --layout chunked, a file for "
             "--layout binary",
    )
    convert.add_argument(
        "--reader", default="auto",
        help="input format: 'auto' (sniff), or one of the registered "
             "readers (cbp, raw)",
    )
    convert.add_argument(
        "--layout", default="chunked", choices=("chunked", "binary"),
        help="output layout (default: chunked -- streams through "
             "simulation in bounded memory)",
    )
    convert.add_argument(
        "--chunk-branches", type=_positive_int, default=None, metavar="N",
        help="records per chunk of the chunked layout (default: 250000; "
             "part of the trace's identity -- see docs/TRACES.md)",
    )
    convert.add_argument(
        "--name", default=None,
        help="trace name (default: derived from the input file name)",
    )
    convert.add_argument(
        "--on-error", default="reject", choices=("reject", "repair", "skip"),
        help="malformed-event policy: reject the file (default), repair "
             "fixable fields, or skip bad events (counted + attributed)",
    )
    convert.add_argument(
        "--default-gap", type=int, default=4, metavar="N",
        help="instruction gap assumed when the input carries none (default: 4)",
    )
    convert.add_argument(
        "--json", dest="json_output", action="store_true",
        help="print the ingest report as JSON instead of prose",
    )
    validate = ingest_sub.add_parser(
        "validate", help="re-hash a trace file or chunked directory"
    )
    validate.add_argument("path", help="trace file or chunked trace directory")
    inspect = ingest_sub.add_parser(
        "inspect", help="print a trace's identity and shape"
    )
    inspect.add_argument("path", help="trace file or chunked trace directory")
    inspect.add_argument(
        "--json", dest="json_output", action="store_true",
        help="machine-readable output",
    )

    trace = subparsers.add_parser("trace", help="generate one benchmark trace to a file")
    trace.add_argument("--suite", default="cbp4like", choices=suite_names())
    trace.add_argument("--benchmark", required=True)
    trace.add_argument("--length", type=int, default=20000)
    trace.add_argument("--output", required=True, help="output path")
    trace.add_argument(
        "--format", dest="trace_format", default="text", choices=("text", "binary"),
        help="on-disk trace format (default: text)",
    )

    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    return names or None


def _load_spec_file(path: str) -> List[PredictorSpec]:
    """Load one spec, a list of specs, or a ``{"specs": [...]}`` document."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "specs" in data:
        data = data["specs"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a spec object or a list of specs")
    return [PredictorSpec.from_dict(entry) for entry in data]


def _parse_param(raw: str) -> tuple:
    """Parse one ``--param name=v1,v2,...`` grid axis."""
    name, _, values = raw.partition("=")
    if not name or not values:
        raise ValueError(f"--param needs the form NAME=V1,V2,..., got {raw!r}")
    parsed: List[Any] = []
    for token in values.split(","):
        token = token.strip()
        try:
            parsed.append(json.loads(token))
        except json.JSONDecodeError:
            parsed.append(token)
    return name.strip(), parsed


def _canonical_spec(spec: PredictorSpec) -> tuple:
    """Identity of the predictor a spec builds (label-independent).

    Overrides are folded into the resolved options so that an override
    equal to the field's default compares equal to no override at all.
    """
    resolved = spec.resolve()
    if not isinstance(resolved.base, str):
        options = (
            dataclasses.replace(resolved.base, **spec.overrides)
            if spec.overrides
            else resolved.base
        )
        return (options, spec.profile)
    return (resolved.base, tuple(sorted(spec.overrides.items())), spec.profile)


def _error_message(error: BaseException) -> str:
    """Human-readable message (str(KeyError) would add spurious quotes)."""
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


#: Duration suffixes accepted by ``repro store gc --older-than``.
_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def _parse_duration(raw: str) -> float:
    """Parse ``"30d"`` / ``"12h"`` / ``"90s"`` / ``"120"`` into seconds."""
    text = raw.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"invalid duration {raw!r}; use e.g. 30d, 12h, 45m, 90s"
        ) from None
    if value < 0:
        raise ValueError(f"duration must be non-negative, got {raw!r}")
    return value * unit


def _resolve_store(path: Optional[str]) -> Optional[ResultStore]:
    """Store from ``--store`` or ``$REPRO_RESULT_STORE`` (None when neither)."""
    if path is not None:
        return ResultStore(path)
    return ResultStore.from_env()


def _report_store_use(store: Optional[ResultStore]) -> None:
    if store is not None and (store.hits or store.misses):
        shed = (
            f", {store.writes_shed} write(s) SHED (disk critical -- see "
            f"REPRO_DISK_HEADROOM)"
            if store.writes_shed
            else ""
        )
        print(
            f"result store {store.root}: {store.hits} cell(s) reused, "
            f"{store.misses} computed{shed}",
            file=sys.stderr,
        )


def _write_output(text: str, destination: str) -> None:
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {destination}", file=sys.stderr)


def _command_list() -> int:
    registry = default_registry()
    print("suites:")
    for suite in suite_names():
        print(f"  {suite}: {', '.join(benchmark_names(suite))}")
    print()
    print("predictor configurations:")
    print("  " + ", ".join(registry.names()))
    print()
    print("size profiles:")
    print("  " + ", ".join(registry.profile_names()))
    print()
    print("experiments (paper tables/figures):")
    print("  " + ", ".join(experiment_ids()))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    specs: List[PredictorSpec] = []
    for path in args.spec or []:
        try:
            specs.extend(_load_spec_file(path))
        except (OSError, ValueError, TypeError) as error:
            print(f"cannot load specs from {path}: {error}", file=sys.stderr)
            return 2
    configurations = _split(args.configurations)
    if configurations is None and args.configurations is None and not specs:
        configurations = ["tage-gsc", "tage-gsc+imli"]
    specs = [
        PredictorSpec.from_named(name, profile=args.profile)
        for name in configurations or []
    ] + specs
    if not specs:
        print("no configurations selected", file=sys.stderr)
        return 2
    store = _resolve_store(args.store)
    try:
        experiment = Experiment(
            specs,
            suite=args.suite,
            traces=_cli_traces(args),
            benchmarks=_split(args.benchmarks),
            length=args.length,
            profile=args.profile,
            jobs=args.jobs,
            store=store if store is not None else False,
            progress=ProgressPrinter("simulate") if args.progress else None,
            batch=_batch_option(args),
        )
        results = experiment.run()
    except (KeyError, TypeError, ValueError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    print(results.report(title=f"MPKI on {_workload_description(args)}"))
    _report_store_use(store)
    return 0


def _expand_grid_specs(args: argparse.Namespace) -> tuple:
    """``(base_spec, specs)`` of a sweep grid (shared by sweep/serve/submit).

    Raises ``ValueError`` (with a printable message) on bad input.
    """
    if args.base.endswith(".json"):
        try:
            loaded = _load_spec_file(args.base)
        except (OSError, ValueError, TypeError) as error:
            raise ValueError(
                f"cannot load base spec from {args.base}: {error}"
            ) from None
        if len(loaded) != 1:
            raise ValueError(f"{args.base}: --base needs exactly one spec")
        base_spec = loaded[0]
    else:
        base_spec = PredictorSpec.from_named(args.base, profile=args.profile)
    grid: Dict[str, List[Any]] = {}
    for raw in args.param:
        name, values = _parse_param(raw)
        grid[name] = values
    # Dedupe semantically: a grid point that rebuilds the base
    # predictor (identical content, or an override equal to the
    # field's default, e.g. oh_update_delay=0) must not be simulated
    # and reported twice under a second label.
    base_canonical = _canonical_spec(base_spec)
    specs = [base_spec]
    for spec in base_spec.sweep(**grid):
        if _canonical_spec(spec) != base_canonical:
            specs.append(spec)
    return base_spec, specs


def _resume_command(args: argparse.Namespace, store: ResultStore) -> str:
    """The exact ``repro sweep --resume`` line that continues this sweep."""
    parts = ["repro", "sweep", "--base", args.base]
    for raw in args.param:
        parts += ["--param", raw]
    for path in getattr(args, "trace_paths", []) or []:
        parts += ["--trace", path]
    parts += ["--suite", args.suite]
    if args.benchmarks:
        parts += ["--benchmarks", args.benchmarks]
    parts += ["--length", str(args.length), "--profile", args.profile]
    if args.jobs and args.jobs > 1:
        parts += ["--jobs", str(args.jobs)]
    if getattr(args, "no_batch", False):
        parts += ["--no-batch"]
    elif args.batch is not None:
        parts += ["--batch", str(args.batch)]
    parts += ["--store", str(store.root), "--resume"]
    if args.json_output:
        parts += ["--json", args.json_output]
    if args.csv_output:
        parts += ["--csv", args.csv_output]
    return " ".join(shlex.quote(part) for part in parts)


def _command_sweep(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store)
    if args.resume and store is None:
        print(
            "--resume needs a result store: pass --store DIR or set "
            "REPRO_RESULT_STORE",
            file=sys.stderr,
        )
        return 2
    experiment: Optional[Experiment] = None
    try:
        base_spec, specs = _expand_grid_specs(args)
        experiment = Experiment(
            specs,
            suite=args.suite,
            traces=_cli_traces(args),
            benchmarks=_split(args.benchmarks),
            length=args.length,
            profile=args.profile,
            jobs=args.jobs,
            store=store if store is not None else False,
            progress=ProgressPrinter("sweep") if args.progress else None,
            batch=_batch_option(args),
        )
        results = experiment.run(baseline=base_spec)
    except (KeyError, TypeError, ValueError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Completed cells were flushed to the store as they finished;
        # hand the user the exact command that picks the sweep back up.
        if experiment is not None:
            experiment.close()
        print("\nsweep interrupted.", file=sys.stderr)
        if store is not None:
            _report_store_use(store)
            print("resume with:", file=sys.stderr)
            print(f"  {_resume_command(args, store)}", file=sys.stderr)
        else:
            print(
                "no result store was configured, so completed cells were "
                "not preserved; rerun with --store DIR (or set "
                "REPRO_RESULT_STORE) to make sweeps resumable",
                file=sys.stderr,
            )
        return 130
    print(results.report(
        title=f"Sweep over {base_spec.label} on {_workload_description(args)} "
              f"({len(specs)} specs)"
    ))
    if args.json_output:
        _write_output(results.to_json(), args.json_output)
    if args.csv_output:
        _write_output(results.to_csv(), args.csv_output)
    _report_store_use(store)
    return 0


def _log_stderr(message: str) -> None:
    print(message, file=sys.stderr)


def _cli_traces(args: argparse.Namespace) -> Optional[list]:
    """Traces named by repeatable ``--trace`` (None when not given)."""
    paths = getattr(args, "trace_paths", None)
    if not paths:
        return None
    try:
        return [load_any_trace(path) for path in paths]
    except OSError as error:
        raise ValueError(f"cannot load trace: {error}") from None


def _workload_description(args: argparse.Namespace) -> str:
    paths = getattr(args, "trace_paths", None)
    if paths:
        return f"{len(paths)} ingested trace(s)"
    return f"{args.suite} ({args.length} branches per benchmark)"


def _suite_traces(args: argparse.Namespace) -> list:
    explicit = _cli_traces(args)
    if explicit is not None:
        return explicit
    traces = generate_suite(
        args.suite,
        target_conditional_branches=args.length,
        benchmarks=_split(args.benchmarks),
    )
    if not traces:
        raise ValueError(
            f"suite {args.suite!r} produced no traces for "
            f"benchmarks {args.benchmarks!r}"
        )
    return traces


def _sweep_result_set(
    specs: Sequence[PredictorSpec],
    base_spec: PredictorSpec,
    trace_names: Sequence[str],
    runs: Dict[str, "ConfigurationRun"],
) -> ResultSet:
    """Assemble the same :class:`ResultSet` a local ``repro sweep`` builds."""
    return ResultSet(
        specs=list(specs),
        runs={spec.label: runs[spec.label] for spec in specs},
        trace_names=list(trace_names),
        baseline=base_spec.label,
    )


def _print_sweep_results(
    args: argparse.Namespace, results: ResultSet, specs: Sequence[PredictorSpec]
) -> None:
    print(results.report(
        title=f"Sweep over {results.baseline} on {_workload_description(args)} "
              f"({len(specs)} specs)"
    ))
    if args.json_output:
        _write_output(results.to_json(), args.json_output)
    if args.csv_output:
        _write_output(results.to_csv(), args.csv_output)


def _command_serve(args: argparse.Namespace) -> int:
    from repro.dist import Coordinator, JobFailed

    store = _resolve_store(args.store)
    if args.base is None and args.param:
        print("--param needs --base", file=sys.stderr)
        return 2
    journal_path = None
    if args.journal is not None:
        if args.journal:
            journal_path = args.journal
        elif store is not None:
            journal_path = str(Path(store.root) / "journal.jsonl")
        else:
            print(
                "--journal without PATH needs a store to put journal.jsonl "
                "in: pass --store DIR (or --journal PATH)",
                file=sys.stderr,
            )
            return 2
    try:
        coordinator = Coordinator(
            host=args.host,
            port=args.port,
            store=store if store is not None else False,
            lease_timeout=args.lease_timeout,
            batch=_grant_limit(args),
            journal=journal_path,
            max_lease_losses=args.max_lease_losses,
            progress=ProgressPrinter("serve") if args.progress else None,
            log=_log_stderr,
        )
    except ValueError as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    try:
        coordinator.start()
    except OSError as error:
        print(f"cannot listen on {args.host}:{args.port}: {error}", file=sys.stderr)
        return EXIT_BIND_FAILURE
    if coordinator.recovered_jobs:
        print(
            f"journal recovery: re-admitted {len(coordinator.recovered_jobs)} "
            "unfinished job(s)",
            file=sys.stderr,
        )
    status_server = None
    if args.status_port is not None:
        status_server = StatusServer(
            coordinator,
            store=store,
            host=args.status_host,
            port=args.status_port,
        )
        try:
            status_server.start()
        except OSError as error:
            coordinator.shutdown()
            print(
                f"cannot bind status server on "
                f"{args.status_host}:{args.status_port}: {error}",
                file=sys.stderr,
            )
            return EXIT_BIND_FAILURE
        print(f"status endpoint: {status_server.url}/status", file=sys.stderr)
    try:
        if args.base is None:
            # Idle service: accept `repro submit` jobs until Ctrl-C.
            print(
                "serving submitted sweeps; stop with Ctrl-C", file=sys.stderr
            )
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("\ncoordinator stopped.", file=sys.stderr)
            return 0
        try:
            base_spec, specs = _expand_grid_specs(args)
            traces = _suite_traces(args)
            job = coordinator.submit(specs, traces)
        except (KeyError, TypeError, ValueError) as error:
            print(_error_message(error), file=sys.stderr)
            return 2
        print(
            f"sweep job {job.job_id}: {job.total} cell(s); waiting for workers "
            f"(repro worker --connect {args.host}:{coordinator.address[1]})",
            file=sys.stderr,
        )
        try:
            while not job.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            print("\nserve interrupted.", file=sys.stderr)
            if store is not None:
                print(
                    "completed cells are in the store; rerun the same "
                    "`repro serve` command to resume from them",
                    file=sys.stderr,
                )
            return 130
        try:
            runs = job.runs()
        except JobFailed as error:
            print(f"sweep failed: {error}", file=sys.stderr)
            return 1
        results = _sweep_result_set(specs, base_spec, job.trace_names, runs)
        _print_sweep_results(args, results, specs)
        _report_store_use(store)
        return 0
    finally:
        if status_server is not None:
            status_server.close()
        coordinator.shutdown()


def _command_worker(args: argparse.Namespace) -> int:
    from repro.dist import CoordinatorUnreachable, ProtocolError
    from repro.dist.worker import DEFAULT_RECONNECT, make_worker

    store = _resolve_store(args.store)
    try:
        worker = make_worker(
            args.connect,
            jobs=args.jobs,
            store=store if store is not None else False,
            name=args.name,
            connect_retry=args.connect_retry,
            reconnect=(
                args.reconnect if args.reconnect is not None else DEFAULT_RECONNECT
            ),
            batch=_grant_limit(args),
            log=_log_stderr,
        )
    except ValueError as error:
        print(f"worker failed: {_error_message(error)}", file=sys.stderr)
        return 2

    # SIGTERM (the fleet manager's stop signal) drains: finish and upload
    # everything in flight, lease nothing new, exit 0.
    def _drain(signum, frame):
        print(
            "worker received SIGTERM; draining in-flight work before exiting",
            file=sys.stderr,
        )
        worker.request_stop()

    previous = signal.signal(signal.SIGTERM, _drain)
    try:
        completed = worker.run()
    except KeyboardInterrupt:
        print("\nworker stopped; leased cells will be requeued.", file=sys.stderr)
        return 130
    except CoordinatorUnreachable as error:
        print(f"worker failed: {_error_message(error)}", file=sys.stderr)
        return EXIT_UNREACHABLE
    except (OSError, ProtocolError, ValueError) as error:
        print(f"worker failed: {_error_message(error)}", file=sys.stderr)
        return 1
    finally:
        signal.signal(signal.SIGTERM, previous)
    print(f"completed {completed} cell(s)", file=sys.stderr)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.dist import ProtocolError, submit_sweep

    try:
        base_spec, specs = _expand_grid_specs(args)
        traces = _suite_traces(args)
    except (KeyError, TypeError, ValueError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    try:
        cell_results = submit_sweep(
            args.connect,
            specs,
            traces,
            progress=ProgressPrinter("submit") if args.progress else None,
        )
    except KeyboardInterrupt:
        print(
            "\nsubmit interrupted; the job keeps running on the coordinator.",
            file=sys.stderr,
        )
        return 130
    except (OSError, ProtocolError, RuntimeError, ValueError) as error:
        print(f"submit failed: {_error_message(error)}", file=sys.stderr)
        return 1
    try:
        runs = {
            spec.label: ConfigurationRun(
                configuration=spec.label,
                results=[
                    cell_results[(spec.label, index)] for index in range(len(traces))
                ],
            )
            for spec in specs
        }
    except KeyError as error:
        print(
            f"coordinator returned an incomplete job (missing cell {error})",
            file=sys.stderr,
        )
        return 1
    results = _sweep_result_set(
        specs, base_spec, [trace.name for trace in traces], runs
    )
    _print_sweep_results(args, results, specs)
    return 0


def _command_top(args: argparse.Namespace) -> int:
    return run_top(
        args.connect,
        interval=args.interval,
        iterations=args.iterations,
        clear=args.clear,
    )


def _command_experiment(args: argparse.Namespace) -> int:
    subset = _split(args.benchmarks)
    runners = {}
    for suite in suite_names():
        traces = generate_suite(
            suite, target_conditional_branches=args.length, benchmarks=subset
        )
        if traces:
            runners[suite] = SuiteRunner(
                traces, profile=args.profile, max_workers=args.jobs
            )
    if not runners:
        print("no benchmarks selected", file=sys.stderr)
        return 2
    result = run_experiment(args.experiment_id, runners)
    print(result.report())
    return 0


def _command_store(args: argparse.Namespace) -> int:
    store = _resolve_store(args.store)
    if store is None:
        print(
            "no result store: pass --store DIR or set REPRO_RESULT_STORE",
            file=sys.stderr,
        )
        return 2
    if args.store_command == "ls" and getattr(args, "summary_view", False):
        summary = store.summary()
        if args.json_output:
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        print(
            f"{summary['cells']} cell(s), {summary['bytes']} bytes on disk, "
            f"{summary['distinct_specs']} distinct spec(s), "
            f"{summary['distinct_traces']} distinct trace(s) in {summary['root']}"
        )
        return 0
    if args.store_command == "ls" and getattr(args, "traces_view", False):
        return _store_ls_traces(store, args)
    if args.store_command == "ls":
        entries = []
        for record in store.records():
            result = record.get("result", {})
            instructions = int(result.get("instructions", 0))
            mpki = (
                1000.0 * int(result.get("mispredictions", 0)) / instructions
                if instructions > 0
                else None
            )
            entries.append(
                {
                    "key": record.get("key"),
                    "label": record.get("label"),
                    "predictor_name": result.get("predictor_name"),
                    "trace_name": result.get("trace_name"),
                    "trace_fingerprint": record.get("trace_fingerprint"),
                    "mpki": mpki,
                    "mispredictions": result.get("mispredictions"),
                    "conditional_branches": result.get("conditional_branches"),
                    "instructions": result.get("instructions"),
                    "storage_bits": result.get("storage_bits"),
                    "age_seconds": record.get("age_seconds", 0.0),
                    "path": record.get("path"),
                }
            )
        if args.json_output:
            # Machine-readable: the coordinator smoke job and CI use this
            # to verify store contents without scraping the table.
            print(json.dumps(entries, indent=2))
            return 0
        for entry in entries:
            mpki_text = (
                f"{entry['mpki']:8.3f}" if entry["mpki"] is not None else "     n/a"
            )
            print(
                f"{(entry['key'] or '?')[:12]}  "
                f"{entry['predictor_name'] or '?':<32} "
                f"{entry['trace_name'] or '?':<12} "
                f"mpki={mpki_text}  age={_format_age(entry['age_seconds'])}"
            )
        print(f"{len(entries)} record(s) in {store.root}", file=sys.stderr)
        return 0
    if args.store_command == "gc":
        try:
            cutoff = _parse_duration(args.older_than)
        except ValueError as error:
            print(_error_message(error), file=sys.stderr)
            return 2
        removed = store.gc(cutoff)
        print(
            f"removed {removed} record(s) older than {args.older_than} "
            f"from {store.root}",
            file=sys.stderr,
        )
        return 0
    if args.store_command == "export":
        _write_output(json.dumps(store.export(), indent=2), args.output)
        return 0
    if args.store_command == "import":
        try:
            if args.input == "-":
                data = json.load(sys.stdin)
            else:
                with open(args.input, "r", encoding="utf-8") as handle:
                    data = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"cannot read records from {args.input}: {error}", file=sys.stderr)
            return 2
        if isinstance(data, dict):
            data = [data]
        if not isinstance(data, list):
            print(
                f"{args.input}: expected a record object or a list of records",
                file=sys.stderr,
            )
            return 2
        imported = skipped = 0
        for record in data:
            try:
                store.import_record(record)
                imported += 1
            except (ValueError, OSError):
                skipped += 1
        print(
            f"imported {imported} record(s) into {store.root}"
            + (f", skipped {skipped} malformed" if skipped else ""),
            file=sys.stderr,
        )
        return 0 if not skipped else 1
    if args.store_command == "verify":
        report = store.verify(repair=args.repair)
        bad = report["corrupt"] + report["truncated"]
        if args.json_output:
            print(json.dumps(report, indent=2, sort_keys=True))
            return EXIT_CORRUPTION if bad else 0
        print(
            f"scanned {report['scanned']} record(s) in {report['root']}: "
            f"{report['ok']} ok, {report['legacy']} legacy (no checksum), "
            f"{report['corrupt']} corrupt, {report['truncated']} truncated"
        )
        for problem in report["problems"]:
            line = (
                f"  {problem['status']:<9} {(problem['key'] or '?')[:12]}  "
                f"{problem['detail']}"
            )
            if problem.get("quarantined_to"):
                line += f" -> quarantined to {problem['quarantined_to']}"
            print(line)
        if bad and args.repair:
            print(
                f"quarantined {report['quarantined']} record(s); the next "
                "sweep will recompute those cells",
                file=sys.stderr,
            )
        elif bad:
            print(
                "re-run with --repair to quarantine them so the next sweep "
                "recomputes those cells",
                file=sys.stderr,
            )
        return EXIT_CORRUPTION if bad else 0
    raise AssertionError(
        f"unhandled store command {args.store_command!r}"
    )  # pragma: no cover


def _store_ls_traces(store: ResultStore, args: argparse.Namespace) -> int:
    """``repro store ls --traces``: one row per trace fingerprint.

    Maps the fingerprints the store keys cells under back to the trace
    names its records carry, so an operator can tell which stored cells
    belong to which ingested trace (re-ingesting with a different chunk
    geometry yields a new fingerprint -- and therefore a new row).
    """
    by_fingerprint: Dict[str, Dict[str, Any]] = {}
    for record in store.records():
        fingerprint = record.get("trace_fingerprint") or "?"
        result = record.get("result", {})
        entry = by_fingerprint.setdefault(
            fingerprint, {"fingerprint": fingerprint, "names": set(), "cells": 0}
        )
        entry["cells"] += 1
        name = result.get("trace_name")
        if name:
            entry["names"].add(str(name))
    entries = [
        {
            "fingerprint": entry["fingerprint"],
            "names": sorted(entry["names"]),
            "cells": entry["cells"],
        }
        for entry in sorted(by_fingerprint.values(), key=lambda e: e["fingerprint"])
    ]
    if args.json_output:
        print(json.dumps(entries, indent=2))
        return 0
    for entry in entries:
        names = ", ".join(entry["names"]) or "?"
        print(
            f"{entry['fingerprint'][:16]}  {entry['cells']:>5} cell(s)  {names}"
        )
    print(
        f"{len(entries)} trace(s) across {sum(e['cells'] for e in entries)} "
        f"record(s) in {store.root}",
        file=sys.stderr,
    )
    return 0


def _format_age(seconds: float) -> str:
    for unit, size in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= size:
            return f"{seconds / size:.1f}{unit}"
    return f"{seconds:.0f}s"


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import IngestError, ingest_trace
    from repro.trace.chunked import DEFAULT_CHUNK_BRANCHES, ChunkedTrace

    if args.ingest_command == "convert":
        try:
            report = ingest_trace(
                args.input,
                args.output,
                reader=args.reader,
                name=args.name,
                layout=args.layout,
                chunk_branches=(
                    args.chunk_branches
                    if args.chunk_branches is not None
                    else DEFAULT_CHUNK_BRANCHES
                ),
                on_error=args.on_error,
                default_gap=args.default_gap,
            )
        except IngestError as error:
            print(f"ingest rejected: {error}", file=sys.stderr)
            return 1
        except (OSError, ValueError) as error:
            print(f"ingest failed: {_error_message(error)}", file=sys.stderr)
            return 2
        if args.json_output:
            print(json.dumps(report.to_dict(), indent=2))
            return 0
        chunks = f", {report.chunks} chunk(s)" if report.chunks else ""
        repairs = (
            f", {report.repaired} repaired, {report.skipped} skipped"
            if report.repaired or report.skipped
            else ""
        )
        print(
            f"ingested {report.records} record(s) "
            f"({report.conditional} conditional) from {report.input} "
            f"via the {report.reader} reader into {report.output} "
            f"({report.layout} layout{chunks}{repairs}, "
            f"{report.branches_per_second:,.0f} branches/s)"
        )
        print(f"fingerprint: {report.fingerprint}")
        for attribution in report.attributions:
            print(f"  note: {attribution}", file=sys.stderr)
        return 0
    try:
        trace = load_any_trace(args.path)
    except (OSError, ValueError) as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    chunked = isinstance(trace, ChunkedTrace)
    if args.ingest_command == "validate":
        try:
            if chunked:
                trace.validate()
        except (OSError, ValueError) as error:
            print(f"validation failed: {_error_message(error)}", file=sys.stderr)
            return 1
        print(
            f"{args.path}: OK ({len(trace)} record(s), "
            f"fingerprint {trace.fingerprint()})"
        )
        return 0
    if args.ingest_command == "inspect":
        info: Dict[str, Any] = {
            "path": args.path,
            "name": trace.name,
            "layout": "chunked" if chunked else "monolithic",
            "records": len(trace),
            "conditional": trace.conditional_count,
            "instructions": trace.instruction_count,
            "fingerprint": trace.fingerprint(),
            "metadata": dict(trace.metadata),
        }
        if chunked:
            info["chunks"] = trace.chunk_count
            info["chunk_branches"] = trace.manifest.get("chunk_branches")
        if args.json_output:
            print(json.dumps(info, indent=2))
            return 0
        for key in (
            "name", "layout", "records", "conditional", "instructions",
            "chunks", "chunk_branches", "fingerprint",
        ):
            if key in info:
                print(f"{key}: {info[key]}")
        for key, value in sorted(info["metadata"].items()):
            print(f"metadata.{key}: {value}")
        return 0
    raise AssertionError(
        f"unhandled ingest command {args.ingest_command!r}"
    )  # pragma: no cover


def _command_trace(args: argparse.Namespace) -> int:
    try:
        spec = get_benchmark(args.suite, args.benchmark)
    except KeyError as error:
        print(_error_message(error), file=sys.stderr)
        return 2
    trace = generate_benchmark(spec, target_conditional_branches=args.length)
    if args.trace_format == "binary":
        save_trace_binary(trace, args.output)
    else:
        save_trace(trace, args.output)
    print(f"wrote {len(trace)} branch records ({trace.conditional_count} conditional) "
          f"to {args.output} ({args.trace_format} format)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "store":
        return _command_store(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "trace":
        return _command_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
