"""Command-line interface.

The CLI exposes the library's main workflows without writing any Python:

``python -m repro list``
    Show the available suites, benchmarks, predictor configurations and
    registered experiments.
``python -m repro simulate``
    Run predictor configurations over (a subset of) a synthetic suite and
    print the per-benchmark MPKI table.
``python -m repro experiment <id>``
    Regenerate one of the paper's tables/figures (same registry as the
    benchmark harness).
``python -m repro trace``
    Generate one synthetic benchmark trace and write it to a file in the
    library's text format.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.analysis.tables import format_table
from repro.predictors.composites import configuration_names
from repro.sim.runner import SuiteRunner
from repro.trace.trace import save_trace, save_trace_binary
from repro.workloads.suites import (
    benchmark_names,
    generate_benchmark,
    generate_suite,
    get_benchmark,
    suite_names,
)

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMLI branch predictor paper (MICRO 2015).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list suites, benchmarks, configurations, experiments")

    simulate = subparsers.add_parser(
        "simulate", help="run predictor configurations over a synthetic suite"
    )
    simulate.add_argument("--suite", default="cbp4like", choices=suite_names())
    simulate.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names (default: the whole suite)",
    )
    simulate.add_argument(
        "--configurations", default="tage-gsc,tage-gsc+imli",
        help="comma-separated configuration names",
    )
    simulate.add_argument("--length", type=int, default=2500,
                          help="conditional branches per benchmark trace")
    simulate.add_argument("--profile", default="small", choices=("small", "default"))
    simulate.add_argument(
        "--jobs", "-j", type=_positive_int, default=1,
        help="worker processes for the simulations (default: 1, in-process)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument("experiment_id", choices=experiment_ids())
    experiment.add_argument("--length", type=int, default=2500)
    experiment.add_argument("--profile", default="small", choices=("small", "default"))
    experiment.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark names to restrict both suites to",
    )
    experiment.add_argument(
        "--jobs", "-j", type=_positive_int, default=1,
        help="worker processes for the simulations (default: 1, in-process)",
    )

    trace = subparsers.add_parser("trace", help="generate one benchmark trace to a file")
    trace.add_argument("--suite", default="cbp4like", choices=suite_names())
    trace.add_argument("--benchmark", required=True)
    trace.add_argument("--length", type=int, default=20000)
    trace.add_argument("--output", required=True, help="output path")
    trace.add_argument(
        "--format", dest="trace_format", default="text", choices=("text", "binary"),
        help="on-disk trace format (default: text)",
    )

    return parser


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    return names or None


def _command_list() -> int:
    print("suites:")
    for suite in suite_names():
        print(f"  {suite}: {', '.join(benchmark_names(suite))}")
    print()
    print("predictor configurations:")
    print("  " + ", ".join(configuration_names()))
    print()
    print("experiments (paper tables/figures):")
    print("  " + ", ".join(experiment_ids()))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    configurations = _split(args.configurations) or []
    if not configurations:
        print("no configurations selected", file=sys.stderr)
        return 2
    traces = generate_suite(
        args.suite,
        target_conditional_branches=args.length,
        benchmarks=_split(args.benchmarks),
    )
    if not traces:
        print("no benchmarks selected", file=sys.stderr)
        return 2
    runner = SuiteRunner(traces, profile=args.profile, max_workers=args.jobs)
    runs = runner.run_many(configurations)
    rows = []
    for name in runner.trace_names():
        rows.append([name] + [runs[c].result_for(name).mpki for c in configurations])
    rows.append(["AVERAGE"] + [runs[c].average_mpki for c in configurations])
    print(format_table(
        ["benchmark"] + list(configurations),
        rows,
        title=f"MPKI on {args.suite} ({args.length} conditional branches per benchmark)",
    ))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    subset = _split(args.benchmarks)
    runners = {}
    for suite in suite_names():
        traces = generate_suite(
            suite, target_conditional_branches=args.length, benchmarks=subset
        )
        if traces:
            runners[suite] = SuiteRunner(
                traces, profile=args.profile, max_workers=args.jobs
            )
    if not runners:
        print("no benchmarks selected", file=sys.stderr)
        return 2
    result = run_experiment(args.experiment_id, runners)
    print(result.report())
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    try:
        spec = get_benchmark(args.suite, args.benchmark)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    trace = generate_benchmark(spec, target_conditional_branches=args.length)
    if args.trace_format == "binary":
        save_trace_binary(trace, args.output)
    else:
        save_trace(trace, args.output)
    print(f"wrote {len(trace)} branch records ({trace.conditional_count} conditional) "
          f"to {args.output} ({args.trace_format} format)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "trace":
        return _command_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
