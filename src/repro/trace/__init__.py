"""Branch trace model.

The experimental framework of the paper is trace driven (Section 3): a
stream of dynamic branch records is replayed through the predictors under
test.  This package defines that stream:

* :mod:`repro.trace.branch` -- the :class:`~repro.trace.branch.BranchRecord`
  dataclass describing one dynamic branch (PC, target, kind, outcome).
* :mod:`repro.trace.trace` -- the :class:`~repro.trace.trace.Trace`
  container plus a compact text serialisation so traces can be stored and
  re-used between runs.
* :mod:`repro.trace.chunked` -- the chunked on-disk layout
  (:class:`~repro.trace.chunked.ChunkedTrace`) that streams huge traces
  through the engine in bounded memory; see ``docs/TRACES.md``.
* :mod:`repro.trace.stats` -- descriptive statistics of a trace
  (branch/instruction counts, taken rates, per-PC footprints).
"""

from repro.trace.branch import BranchKind, BranchRecord, conditional_branch
from repro.trace.chunked import (
    ChunkedTrace,
    ChunkedTraceWriter,
    load_any_trace,
    load_chunked_trace,
    write_chunked_trace,
)
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.trace import Trace, load_trace, save_trace

__all__ = [
    "BranchKind",
    "BranchRecord",
    "ChunkedTrace",
    "ChunkedTraceWriter",
    "Trace",
    "TraceStatistics",
    "compute_statistics",
    "conditional_branch",
    "load_any_trace",
    "load_chunked_trace",
    "load_trace",
    "save_trace",
    "write_chunked_trace",
]
