"""Branch trace model.

The experimental framework of the paper is trace driven (Section 3): a
stream of dynamic branch records is replayed through the predictors under
test.  This package defines that stream:

* :mod:`repro.trace.branch` -- the :class:`~repro.trace.branch.BranchRecord`
  dataclass describing one dynamic branch (PC, target, kind, outcome).
* :mod:`repro.trace.trace` -- the :class:`~repro.trace.trace.Trace`
  container plus a compact text serialisation so traces can be stored and
  re-used between runs.
* :mod:`repro.trace.stats` -- descriptive statistics of a trace
  (branch/instruction counts, taken rates, per-PC footprints).
"""

from repro.trace.branch import BranchKind, BranchRecord, conditional_branch
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.trace import Trace, load_trace, save_trace

__all__ = [
    "BranchKind",
    "BranchRecord",
    "Trace",
    "TraceStatistics",
    "compute_statistics",
    "conditional_branch",
    "load_trace",
    "save_trace",
]
