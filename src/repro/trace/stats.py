"""Descriptive statistics of branch traces.

These statistics are used by the workload generators' self-checks and by
the examples to characterise how "hard" a trace is before any predictor is
run on it: number of static branches, taken rate, fraction of backward
branches, average inner-loop trip count observed by the IMLI heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.trace.trace import Trace

__all__ = ["TraceStatistics", "compute_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics for one trace."""

    name: str
    total_branches: int
    conditional_branches: int
    instructions: int
    static_conditional_branches: int
    taken_rate: float
    backward_branch_fraction: float
    mean_inner_loop_trip_count: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "total_branches": self.total_branches,
            "conditional_branches": self.conditional_branches,
            "instructions": self.instructions,
            "static_conditional_branches": self.static_conditional_branches,
            "taken_rate": self.taken_rate,
            "backward_branch_fraction": self.backward_branch_fraction,
            "mean_inner_loop_trip_count": self.mean_inner_loop_trip_count,
        }


def compute_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``.

    The mean inner-loop trip count is measured exactly the way the IMLI
    counter observes it: each time a backward conditional branch is not
    taken, the run of consecutive taken outcomes that preceded it is one
    completed inner loop execution.
    """
    conditional = 0
    taken = 0
    backward = 0
    static: Dict[int, int] = {}

    imli_count = 0
    completed_trip_counts = []

    for record in trace:
        if not record.is_conditional:
            continue
        conditional += 1
        taken += int(record.taken)
        static[record.pc] = static.get(record.pc, 0) + 1
        if record.is_backward:
            backward += 1
            if record.taken:
                imli_count += 1
            else:
                if imli_count:
                    completed_trip_counts.append(imli_count + 1)
                imli_count = 0

    mean_trip = (
        sum(completed_trip_counts) / len(completed_trip_counts)
        if completed_trip_counts
        else 0.0
    )
    return TraceStatistics(
        name=trace.name,
        total_branches=len(trace),
        conditional_branches=conditional,
        instructions=trace.instruction_count,
        static_conditional_branches=len(static),
        taken_rate=taken / conditional if conditional else 0.0,
        backward_branch_fraction=backward / conditional if conditional else 0.0,
        mean_inner_loop_trip_count=mean_trip,
    )
