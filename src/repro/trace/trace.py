"""Trace container and serialisation.

A :class:`Trace` is an in-memory, ordered collection of dynamic branch
records together with a name and free-form metadata describing how it was
generated.  Traces are the unit of work for the simulator
(:mod:`repro.sim.engine`) and the unit of naming in the benchmark suites
(:mod:`repro.workloads.suites`).

Internally a trace stores its records in *columnar* (structure-of-arrays)
form: one compact :mod:`array` per field (pc, target, taken, kind,
instruction gap).  The columnar layout is what the fast simulation loop in
:mod:`repro.sim.engine` iterates over directly; the record-oriented API
(`trace[i]`, iteration, ``trace.records``) is preserved through lazy
:class:`~repro.trace.branch.BranchRecord` views so existing callers are
unaffected.

Two on-disk formats are supported:

* a line-oriented text format (one record per line) chosen for
  debuggability, and
* a compact binary format (raw column dumps behind a small header) used by
  the workload generation cache; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Union, overload

from repro.trace.branch import (
    CONDITIONAL_CODE,
    KIND_FROM_CODE,
    KIND_TO_CODE,
    BranchKind,
    BranchRecord,
)

__all__ = [
    "Trace",
    "save_trace",
    "load_trace",
    "save_trace_binary",
    "load_trace_binary",
    "trace_to_bytes",
    "trace_from_bytes",
]

_FORMAT_VERSION = 1

#: Magic prefix of the binary trace format.
_BINARY_MAGIC = b"RPTRACE1"


class _RecordsView(Sequence[BranchRecord]):
    """Read-only record-oriented view over a columnar :class:`Trace`.

    Materialises :class:`BranchRecord` objects lazily, so code written
    against the original list-of-records representation (iteration,
    indexing, slicing, equality) keeps working without the trace having to
    hold per-record objects.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    @overload
    def __getitem__(self, index: int) -> BranchRecord: ...

    @overload
    def __getitem__(self, index: slice) -> List[BranchRecord]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[BranchRecord, List[BranchRecord]]:
        if isinstance(index, slice):
            trace = self._trace
            return [trace.record_at(i) for i in range(*index.indices(len(trace)))]
        return self._trace.record_at(index)

    def __iter__(self) -> Iterator[BranchRecord]:
        return iter(self._trace)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (_RecordsView, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_RecordsView({len(self)} records of {self._trace.name!r})"


class Trace:
    """An ordered sequence of dynamic branch records in columnar storage.

    Parameters
    ----------
    name:
        Human-readable benchmark name, e.g. ``"SPEC2K6-12"``.
    records:
        Optional initial records (any iterable of
        :class:`~repro.trace.branch.BranchRecord`).
    metadata:
        Free-form generator parameters (kernel name, seed, sizes) recorded
        for reproducibility.
    """

    __slots__ = (
        "name",
        "metadata",
        "_pc",
        "_target",
        "_taken",
        "_kind",
        "_gap",
        "_conditional_count",
        "_instruction_count",
        "_fingerprint",
    )

    def __init__(
        self,
        name: str,
        records: Iterable[BranchRecord] | None = None,
        metadata: Dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.metadata: Dict[str, str] = dict(metadata) if metadata else {}
        self._pc = array("q")
        self._target = array("q")
        self._taken = array("b")
        self._kind = array("b")
        self._gap = array("q")
        # Both aggregate counts are maintained incrementally on append and
        # extend, so reading them is O(1) however often the simulator asks.
        self._conditional_count = 0
        self._instruction_count = 0
        #: Cached content fingerprint; invalidated on every mutation.
        self._fingerprint: str | None = None
        if records is not None:
            self.extend(records)

    # ------------------------------------------------------------------ #
    # Record-oriented API (compatible with the original list storage)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._pc)

    def __iter__(self) -> Iterator[BranchRecord]:
        pcs, targets, takens, kinds, gaps = (
            self._pc, self._target, self._taken, self._kind, self._gap,
        )
        kind_from_code = KIND_FROM_CODE
        for index in range(len(pcs)):
            yield BranchRecord(
                pc=pcs[index],
                target=targets[index],
                taken=bool(takens[index]),
                kind=kind_from_code[kinds[index]],
                instruction_gap=gaps[index],
            )

    def __getitem__(self, index: int) -> BranchRecord:
        return self.record_at(index)

    def record_at(self, index: int) -> BranchRecord:
        """Materialise the :class:`BranchRecord` view of record ``index``."""
        return BranchRecord(
            pc=self._pc[index],
            target=self._target[index],
            taken=bool(self._taken[index]),
            kind=KIND_FROM_CODE[self._kind[index]],
            instruction_gap=self._gap[index],
        )

    @property
    def records(self) -> _RecordsView:
        """Record-oriented view of the trace (lazy, read-only)."""
        return _RecordsView(self)

    def append(self, record: BranchRecord) -> None:
        """Append one dynamic branch to the trace."""
        kind_code = KIND_TO_CODE[record.kind]
        self._pc.append(record.pc)
        self._target.append(record.target)
        self._taken.append(record.taken)
        self._kind.append(kind_code)
        gap = record.instruction_gap
        self._gap.append(gap)
        if kind_code == CONDITIONAL_CODE:
            self._conditional_count += 1
        self._instruction_count += gap + 1
        self._fingerprint = None

    def extend(self, records: Iterable[BranchRecord]) -> None:
        """Append several dynamic branches to the trace."""
        if isinstance(records, Trace):
            self._extend_columns(records)
            return
        append = self.append
        for record in records:
            append(record)

    def _extend_columns(self, other: "Trace") -> None:
        """Bulk-append another trace's columns (no record materialisation)."""
        self._pc.extend(other._pc)
        self._target.extend(other._target)
        self._taken.extend(other._taken)
        self._kind.extend(other._kind)
        self._gap.extend(other._gap)
        self._conditional_count += other._conditional_count
        self._instruction_count += other._instruction_count
        self._fingerprint = None

    # ------------------------------------------------------------------ #
    # Columnar access (used by the fast simulation loop)
    # ------------------------------------------------------------------ #

    def columns(self) -> tuple:
        """Return the raw ``(pc, target, taken, kind, gap)`` column arrays.

        ``taken`` and ``kind`` are stored as small integers; kind codes are
        :data:`repro.trace.branch.KIND_TO_CODE`.  The arrays are the trace's
        own storage: callers must treat them as read-only.
        """
        return self._pc, self._target, self._taken, self._kind, self._gap

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #

    @property
    def conditional_count(self) -> int:
        """Number of conditional branch records in the trace (cached)."""
        return self._conditional_count

    @property
    def instruction_count(self) -> int:
        """Total instructions represented by the trace (cached).

        Every branch counts as one instruction plus its ``instruction_gap``
        of preceding non-branch instructions.
        """
        return self._instruction_count

    def fingerprint(self) -> str:
        """Content fingerprint of the trace (SHA-256 hex, cached).

        Covers the trace name and every column byte-for-byte (normalised to
        little-endian), so two traces share a fingerprint exactly when they
        would drive a predictor identically and report under the same name.
        This is the trace component of persistent cache keys
        (:mod:`repro.store`): a benchmark regenerated with different content
        -- e.g. after a generator edit invalidated the
        ``REPRO_TRACE_CACHE`` entry -- gets a new fingerprint even though
        its benchmark name is unchanged, so stale results are never served.

        The value is cached and invalidated on ``append``/``extend``;
        rebinding ``trace.name`` after the first call is not tracked.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(self.name.encode("utf-8"))
            for column in (self._pc, self._target, self._taken, self._kind, self._gap):
                if _BIG_ENDIAN_HOST and column.itemsize > 1:
                    column = array(column.typecode, column)
                    column.byteswap()
                digest.update(b"|")
                digest.update(column.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def static_branches(self) -> Dict[int, int]:
        """Map of conditional branch PC to dynamic execution count."""
        kinds = self._kind
        pcs = self._pc
        counts: Counter[int] = Counter(
            pcs[index]
            for index in range(len(pcs))
            if kinds[index] == CONDITIONAL_CODE
        )
        return dict(counts)

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """Return a new trace containing records ``start:stop``."""
        part = Trace(name=self.name, metadata=dict(self.metadata))
        view = slice(start, stop)
        part._pc = self._pc[view]
        part._target = self._target[view]
        part._taken = self._taken[view]
        part._kind = self._kind[view]
        part._gap = self._gap[view]
        kinds = part._kind
        part._conditional_count = sum(
            1 for code in kinds if code == CONDITIONAL_CODE
        )
        part._instruction_count = sum(part._gap) + len(part._gap)
        return part

    def taken_rate(self) -> float:
        """Fraction of conditional branches that are taken."""
        if not self._conditional_count:
            return 0.0
        kinds = self._kind
        takens = self._taken
        taken = sum(
            takens[index]
            for index in range(len(kinds))
            if kinds[index] == CONDITIONAL_CODE
        )
        return taken / self._conditional_count


# --------------------------------------------------------------------------- #
# Text serialisation
# --------------------------------------------------------------------------- #


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the library's text format."""
    path = Path(path)
    lines = [f"# repro-trace v{_FORMAT_VERSION}", f"# name: {trace.name}"]
    for key, value in sorted(trace.metadata.items()):
        lines.append(f"# meta: {key}={value}")
    pcs, targets, takens, kinds, gaps = trace.columns()
    kind_values = [kind.value for kind in KIND_FROM_CODE]
    for index in range(len(pcs)):
        lines.append(
            f"{pcs[index]} {targets[index]} {takens[index]} "
            f"{kind_values[kinds[index]]} {gaps[index]}"
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_record(fields: Sequence[str], line_number: int) -> BranchRecord:
    if len(fields) != 5:
        raise ValueError(f"line {line_number}: expected 5 fields, got {len(fields)}")
    pc, target, taken, kind, gap = fields
    return BranchRecord(
        pc=int(pc),
        target=int(target),
        taken=bool(int(taken)),
        kind=BranchKind(kind),
        instruction_gap=int(gap),
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Binary traces (written by :func:`save_trace_binary`) are detected by
    their magic prefix and dispatched automatically.
    """
    path = Path(path)
    with path.open("rb") as stream:
        if stream.read(len(_BINARY_MAGIC)) == _BINARY_MAGIC:
            return load_trace_binary(path)
    name = path.stem
    metadata: Dict[str, str] = {}
    trace = Trace(name=name)
    for line_number, raw_line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.startswith("name:"):
                name = body[len("name:"):].strip()
            elif body.startswith("meta:"):
                key, _, value = body[len("meta:"):].strip().partition("=")
                metadata[key.strip()] = value.strip()
            continue
        trace.append(_parse_record(line.split(), line_number))
    trace.name = name
    trace.metadata = metadata
    return trace


# --------------------------------------------------------------------------- #
# Binary serialisation
# --------------------------------------------------------------------------- #

# Layout: magic, then a little-endian uint32 JSON header length, the JSON
# header (name, metadata, record count), then the five column dumps in
# columns() order.  Column typecodes are fixed by the format: "q" for
# pc/target/gap, "b" for taken/kind.  Multi-byte columns are stored
# little-endian regardless of host byte order.
_HEADER_LENGTH = struct.Struct("<I")
_COLUMN_TYPECODES = ("q", "q", "b", "b", "q")
_BIG_ENDIAN_HOST = sys.byteorder == "big"


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialize ``trace`` to the compact binary format as one bytes object.

    The byte layout is identical to what :func:`save_trace_binary` writes,
    so the result can be persisted to a file or shipped over a socket (the
    distributed runner sends traces to workers this way) and read back with
    :func:`trace_from_bytes` / :func:`load_trace_binary`.
    """
    header = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "name": trace.name,
            "metadata": trace.metadata,
            "count": len(trace),
        },
        ensure_ascii=False,
    ).encode("utf-8")
    parts = [_BINARY_MAGIC, _HEADER_LENGTH.pack(len(header)), header]
    for column in trace.columns():
        if _BIG_ENDIAN_HOST and column.itemsize > 1:
            column = array(column.typecode, column)
            column.byteswap()
        parts.append(column.tobytes())
    return b"".join(parts)


def trace_from_bytes(data: bytes, source: str = "trace bytes") -> Trace:
    """Inverse of :func:`trace_to_bytes` (``source`` labels error messages)."""
    view = memoryview(data)
    magic = bytes(view[: len(_BINARY_MAGIC)])
    if magic != _BINARY_MAGIC:
        raise ValueError(f"{source}: not a binary repro trace (bad magic {magic!r})")
    offset = len(_BINARY_MAGIC)
    if len(view) < offset + _HEADER_LENGTH.size:
        raise ValueError(f"{source}: truncated binary trace header")
    (header_length,) = _HEADER_LENGTH.unpack_from(view, offset)
    offset += _HEADER_LENGTH.size
    try:
        header = json.loads(bytes(view[offset : offset + header_length]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"{source}: corrupt binary trace header ({error})") from None
    offset += header_length
    if not isinstance(header, dict) or header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{source}: unsupported binary trace version "
            f"{header.get('version') if isinstance(header, dict) else header!r}"
        )
    count = int(header["count"])
    trace = Trace(
        name=str(header["name"]),
        metadata={str(k): str(v) for k, v in header.get("metadata", {}).items()},
    )
    columns = []
    for typecode in _COLUMN_TYPECODES:
        column = array(typecode)
        if count:
            end = offset + count * column.itemsize
            if end > len(view):
                raise ValueError(f"{source}: truncated binary trace columns")
            column.frombytes(view[offset:end])
            offset = end
            if _BIG_ENDIAN_HOST and column.itemsize > 1:
                column.byteswap()
        columns.append(column)
    trace._pc, trace._target, trace._taken, trace._kind, trace._gap = columns
    trace._conditional_count = sum(
        1 for code in trace._kind if code == CONDITIONAL_CODE
    )
    trace._instruction_count = sum(trace._gap) + len(trace._gap)
    return trace


def save_trace_binary(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the compact binary format."""
    Path(path).write_bytes(trace_to_bytes(trace))


def load_trace_binary(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace_binary`."""
    path = Path(path)
    return trace_from_bytes(path.read_bytes(), source=str(path))
