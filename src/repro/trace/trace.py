"""Trace container and serialisation.

A :class:`Trace` is an in-memory, ordered collection of
:class:`~repro.trace.branch.BranchRecord` objects together with a name and
free-form metadata describing how it was generated.  Traces are the unit of
work for the simulator (:mod:`repro.sim.engine`) and the unit of naming in
the benchmark suites (:mod:`repro.workloads.suites`).

The on-disk format is a small line-oriented text format (one record per
line) chosen for debuggability; synthetic traces are cheap to regenerate so
compactness is not a priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence

from repro.trace.branch import BranchKind, BranchRecord

__all__ = ["Trace", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


@dataclass
class Trace:
    """An ordered sequence of dynamic branch records.

    Attributes
    ----------
    name:
        Human-readable benchmark name, e.g. ``"SPEC2K6-12"``.
    records:
        The dynamic branches in program order.
    metadata:
        Free-form generator parameters (kernel name, seed, sizes) recorded
        for reproducibility.
    """

    name: str
    records: List[BranchRecord] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[BranchRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> BranchRecord:
        return self.records[index]

    def append(self, record: BranchRecord) -> None:
        """Append one dynamic branch to the trace."""
        self.records.append(record)

    def extend(self, records: Iterable[BranchRecord]) -> None:
        """Append several dynamic branches to the trace."""
        self.records.extend(records)

    @property
    def conditional_count(self) -> int:
        """Number of conditional branch records in the trace."""
        return sum(1 for record in self.records if record.is_conditional)

    @property
    def instruction_count(self) -> int:
        """Total instructions represented by the trace.

        Every branch counts as one instruction plus its ``instruction_gap``
        of preceding non-branch instructions.
        """
        return sum(record.instruction_gap + 1 for record in self.records)

    def static_branches(self) -> Dict[int, int]:
        """Map of conditional branch PC to dynamic execution count."""
        counts: Dict[int, int] = {}
        for record in self.records:
            if record.is_conditional:
                counts[record.pc] = counts.get(record.pc, 0) + 1
        return counts

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """Return a new trace containing records ``start:stop``."""
        return Trace(
            name=self.name,
            records=self.records[start:stop],
            metadata=dict(self.metadata),
        )

    def taken_rate(self) -> float:
        """Fraction of conditional branches that are taken."""
        conditional = [record for record in self.records if record.is_conditional]
        if not conditional:
            return 0.0
        return sum(record.taken for record in conditional) / len(conditional)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the library's text format."""
    path = Path(path)
    lines = [f"# repro-trace v{_FORMAT_VERSION}", f"# name: {trace.name}"]
    for key, value in sorted(trace.metadata.items()):
        lines.append(f"# meta: {key}={value}")
    for record in trace.records:
        lines.append(
            f"{record.pc} {record.target} {int(record.taken)} "
            f"{record.kind.value} {record.instruction_gap}"
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_record(fields: Sequence[str], line_number: int) -> BranchRecord:
    if len(fields) != 5:
        raise ValueError(f"line {line_number}: expected 5 fields, got {len(fields)}")
    pc, target, taken, kind, gap = fields
    return BranchRecord(
        pc=int(pc),
        target=int(target),
        taken=bool(int(taken)),
        kind=BranchKind(kind),
        instruction_gap=int(gap),
    )


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    name = path.stem
    metadata: Dict[str, str] = {}
    records: List[BranchRecord] = []
    for line_number, raw_line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.startswith("name:"):
                name = body[len("name:"):].strip()
            elif body.startswith("meta:"):
                key, _, value = body[len("meta:"):].strip().partition("=")
                metadata[key.strip()] = value.strip()
            continue
        records.append(_parse_record(line.split(), line_number))
    return Trace(name=name, records=records, metadata=metadata)
