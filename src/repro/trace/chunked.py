"""Chunked on-disk traces: bounded-memory storage for huge branch traces.

A *chunked trace* is a directory (the ``RPCHUNK1`` layout) holding a JSON
manifest plus N chunk files, each chunk a complete binary trace blob in
the :func:`repro.trace.trace.trace_to_bytes` encoding::

    my-trace.rpchunk/
        manifest.json           # format, name, totals, per-chunk entries
        chunk-00000.rpt         # records [0, chunk_branches)
        chunk-00001.rpt         # records [chunk_branches, 2*chunk_branches)
        ...

Every chunk carries its own content fingerprint (the ordinary
:meth:`~repro.trace.trace.Trace.fingerprint` of the chunk's records under
the parent trace's name), and the manifest fingerprint is derived
*deterministically from the ordered chunk fingerprints* -- so the identity
of a chunked trace is computable without ever holding more than one chunk
in memory, and :class:`~repro.store.ResultStore` cell keys work unchanged.
Note the consequence: the chunk geometry is part of the identity.
Re-ingesting the same records with a different ``chunk_branches`` yields a
different fingerprint (and therefore fresh store cells), exactly like
regenerating a synthetic workload with different content.

:class:`ChunkedTrace` exposes the subset of the :class:`Trace` interface
the simulation engine needs -- ``name``, ``metadata``, ``len``,
``conditional_count``, ``instruction_count``, ``fingerprint()``, record
iteration -- plus :meth:`iter_chunks`, which the engine's fast path streams
so peak memory is bounded by the chunk size, not the trace length.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.trace.branch import BranchRecord
from repro.trace.trace import Trace, load_trace, trace_from_bytes, trace_to_bytes

__all__ = [
    "CHUNK_FORMAT",
    "DEFAULT_CHUNK_BRANCHES",
    "MANIFEST_NAME",
    "ChunkedTrace",
    "ChunkedTraceWriter",
    "chunked_fingerprint",
    "is_chunked_dir",
    "load_any_trace",
    "load_chunked_trace",
    "write_chunked_trace",
]

#: Format tag of the chunked layout (also the fingerprint domain tag).
CHUNK_FORMAT = "RPCHUNK1"

#: Manifest file name inside a chunked trace directory.
MANIFEST_NAME = "manifest.json"

#: Default records per chunk.  One record costs 26 bytes on disk, so the
#: default chunk is ~6.5 MiB -- small enough that a handful of decoded
#: chunks fit comfortably in memory, large enough that per-chunk overhead
#: (a file open, a fingerprint check, a dist frame) is negligible, and far
#: under the dist protocol's 64 MiB frame cap even after base64 expansion.
DEFAULT_CHUNK_BRANCHES = 250_000

_MANIFEST_VERSION = 1

#: Decoded chunks a :class:`ChunkedTrace` keeps in memory (LRU).  Two is
#: enough for sequential streaming plus one chunk of lookahead/re-read.
_DEFAULT_CACHE_CHUNKS = 2


def chunked_fingerprint(name: str, chunk_fingerprints: List[str]) -> str:
    """Manifest fingerprint: SHA-256 over the ordered chunk fingerprints.

    Domain-tagged with the format magic and the trace name so a chunked
    trace can never collide with a monolithic trace fingerprint, and so the
    identity is computable chunk-by-chunk in bounded memory.
    """
    digest = hashlib.sha256()
    digest.update(CHUNK_FORMAT.encode("ascii"))
    digest.update(b"|")
    digest.update(name.encode("utf-8"))
    for fingerprint in chunk_fingerprints:
        digest.update(b"|")
        digest.update(fingerprint.encode("ascii"))
    return digest.hexdigest()


def _chunk_file_name(index: int) -> str:
    return f"chunk-{index:05d}.rpt"


def validate_manifest(manifest: Any, source: str = "manifest") -> Dict[str, Any]:
    """Structurally validate a manifest dict (raises ``ValueError`` on junk).

    Used both when loading from disk and when a dist worker receives a
    manifest payload over the wire, so a malformed peer cannot crash the
    worker with a shape error deep inside the engine.  Returns the manifest
    unchanged on success.
    """
    if not isinstance(manifest, dict):
        raise ValueError(f"{source}: manifest must be a JSON object")
    if manifest.get("format") != CHUNK_FORMAT:
        raise ValueError(
            f"{source}: not a {CHUNK_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ValueError(
            f"{source}: unsupported manifest version {manifest.get('version')!r}"
        )
    if not isinstance(manifest.get("name"), str):
        raise ValueError(f"{source}: manifest needs a string 'name'")
    chunks = manifest.get("chunks")
    if not isinstance(chunks, list):
        raise ValueError(f"{source}: manifest needs a 'chunks' list")
    for index, entry in enumerate(chunks):
        if not isinstance(entry, dict):
            raise ValueError(f"{source}: chunk {index} entry must be an object")
        for key in ("file", "fingerprint"):
            if not isinstance(entry.get(key), str):
                raise ValueError(f"{source}: chunk {index} needs a string {key!r}")
        for key in ("records", "conditional", "instructions"):
            if not isinstance(entry.get(key), int) or entry[key] < 0:
                raise ValueError(
                    f"{source}: chunk {index} needs a non-negative int {key!r}"
                )
        name = entry["file"]
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValueError(f"{source}: chunk {index} file name {name!r} unsafe")
    for key in ("records", "conditional", "instructions"):
        if not isinstance(manifest.get(key), int) or manifest[key] < 0:
            raise ValueError(f"{source}: manifest needs a non-negative int {key!r}")
    expected = chunked_fingerprint(
        manifest["name"], [entry["fingerprint"] for entry in chunks]
    )
    if manifest.get("fingerprint") != expected:
        raise ValueError(
            f"{source}: manifest fingerprint {manifest.get('fingerprint')!r} "
            f"does not match its chunk fingerprints (expected {expected})"
        )
    return manifest


class ChunkedTrace:
    """A trace stored as on-disk chunks, streamed in bounded memory.

    Parameters
    ----------
    directory:
        The chunk directory.  Chunk files are read from here on demand; a
        worker spooling fetched chunks points this at its spool directory.
    manifest:
        Pre-parsed manifest dict (e.g. received over the dist protocol).
        ``None`` reads ``manifest.json`` from ``directory``.
    fetch:
        Optional ``fetch(index) -> bytes`` hook invoked when a chunk file
        is missing from ``directory``; the returned bytes are verified
        against the manifest's chunk fingerprint and spooled to the
        directory before use (the dist worker's chunk transport).
    cache_chunks:
        Decoded chunks kept in an in-memory LRU (default 2).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        manifest: Optional[Dict[str, Any]] = None,
        fetch: Optional[Callable[[int], bytes]] = None,
        cache_chunks: int = _DEFAULT_CACHE_CHUNKS,
    ) -> None:
        if cache_chunks < 1:
            raise ValueError(f"cache_chunks must be positive, got {cache_chunks}")
        self.directory = Path(directory)
        if manifest is None:
            manifest_path = self.directory / MANIFEST_NAME
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise ValueError(
                    f"{self.directory} is not a chunked trace "
                    f"(no {MANIFEST_NAME})"
                ) from None
            except (OSError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"{manifest_path}: unreadable manifest ({error})"
                ) from None
            manifest = validate_manifest(manifest, source=str(manifest_path))
        else:
            manifest = validate_manifest(manifest)
        self._manifest = manifest
        self._fetch = fetch
        self._cache_limit = cache_chunks
        self._cache: "OrderedDict[int, Trace]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Trace-compatible surface
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._manifest["name"]

    @property
    def metadata(self) -> Dict[str, str]:
        return dict(self._manifest.get("metadata", {}))

    def __len__(self) -> int:
        return self._manifest["records"]

    @property
    def conditional_count(self) -> int:
        """Conditional branches in the whole trace (from the manifest)."""
        return self._manifest["conditional"]

    @property
    def instruction_count(self) -> int:
        """Total instructions represented (from the manifest)."""
        return self._manifest["instructions"]

    def fingerprint(self) -> str:
        """The manifest fingerprint (derived from the chunk fingerprints).

        This is the trace component of :class:`~repro.store.ResultStore`
        cell keys for chunked traces, and what :meth:`to_trace` seeds into
        the fully decoded :class:`Trace` so streaming and in-memory
        simulation of one ingested trace land in the same store cells.
        """
        return self._manifest["fingerprint"]

    def __iter__(self) -> Iterator[BranchRecord]:
        for chunk in self.iter_chunks():
            yield from chunk

    # ------------------------------------------------------------------ #
    # Chunk access
    # ------------------------------------------------------------------ #

    @property
    def manifest(self) -> Dict[str, Any]:
        """The manifest dict (treat as read-only)."""
        return self._manifest

    @property
    def chunk_count(self) -> int:
        return len(self._manifest["chunks"])

    def chunk_path(self, index: int) -> Path:
        return self.directory / self._manifest["chunks"][index]["file"]

    def chunk(self, index: int) -> Trace:
        """Decode chunk ``index`` (LRU-cached, fetched on local miss)."""
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        entry = self._manifest["chunks"][index]
        path = self.directory / entry["file"]
        if path.exists():
            chunk = trace_from_bytes(path.read_bytes(), source=str(path))
        else:
            chunk = self._fetch_chunk(index, entry, path)
        if len(chunk) != entry["records"]:
            raise ValueError(
                f"{path}: chunk {index} holds {len(chunk)} records, "
                f"manifest says {entry['records']}"
            )
        # Seed the chunk's fingerprint cache: the manifest entry *is* the
        # chunk fingerprint, so streaming consumers never re-hash chunks.
        chunk._fingerprint = entry["fingerprint"]
        self._cache[index] = chunk
        while len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)
        return chunk

    def _fetch_chunk(self, index: int, entry: Dict[str, Any], path: Path) -> Trace:
        if self._fetch is None:
            raise FileNotFoundError(
                f"chunk file {path} is missing and the trace has no fetch hook"
            )
        data = self._fetch(index)
        chunk = trace_from_bytes(data, source=f"fetched chunk {index}")
        if chunk.fingerprint() != entry["fingerprint"]:
            raise ValueError(
                f"fetched chunk {index} of {self.name!r} has fingerprint "
                f"{chunk.fingerprint()}, manifest says {entry['fingerprint']}"
            )
        # Spool to disk so re-reads (and later simulations on this worker)
        # never re-fetch; best-effort -- a read-only spool still works.
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)
        except OSError:
            pass
        return chunk

    def iter_chunks(self) -> Iterator[Trace]:
        """Yield each chunk as a decoded :class:`Trace`, one at a time.

        This is the engine's streaming entry point: the fast simulation
        loops iterate these blocks with carried state, so peak memory is
        one or two decoded chunks regardless of trace length.
        """
        for index in range(self.chunk_count):
            yield self.chunk(index)

    def ensure_local(self) -> None:
        """Fetch/verify every chunk file onto disk (no decoding kept)."""
        for index, entry in enumerate(self._manifest["chunks"]):
            path = self.directory / entry["file"]
            if not path.exists():
                self._fetch_chunk(index, entry, path)

    def validate(self) -> None:
        """Re-hash every chunk file against the manifest (raises on drift)."""
        for index, entry in enumerate(self._manifest["chunks"]):
            chunk = self.chunk(index)
            # chunk() seeds the cached fingerprint from the manifest, so
            # recompute from the columns for a genuine integrity check.
            rehashed = Trace(name=chunk.name)
            rehashed._extend_columns(chunk)
            if rehashed.fingerprint() != entry["fingerprint"]:
                raise ValueError(
                    f"chunk {index} of {self.name!r} does not match its "
                    f"manifest fingerprint {entry['fingerprint']}"
                )

    def to_trace(self) -> Trace:
        """Fully decode into one in-memory :class:`Trace`.

        The returned trace's fingerprint cache is seeded with the
        *manifest* fingerprint, so simulating the decoded trace produces
        the same :class:`~repro.store.ResultStore` cell keys as streaming
        the chunked layout -- the bit-identity contract.  Mutating the
        returned trace invalidates the seeded cache as usual.
        """
        trace = Trace(name=self.name, metadata=self.metadata)
        for chunk in self.iter_chunks():
            trace._extend_columns(chunk)
        trace._fingerprint = self._manifest["fingerprint"]
        return trace

    # ------------------------------------------------------------------ #
    # Pickling (the suite runner's process pool ships traces to workers)
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> Dict[str, Any]:
        # The fetch hook (a closure over a live socket on dist workers) and
        # the decoded-chunk cache do not travel; the receiving process
        # re-reads chunks from the directory, so callers must ensure_local()
        # before shipping a trace whose chunks are not all on disk.
        return {
            "directory": str(self.directory),
            "manifest": self._manifest,
            "cache_chunks": self._cache_limit,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(
            state["directory"],
            manifest=state["manifest"],
            cache_chunks=state["cache_chunks"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedTrace({self.name!r}, {self.chunk_count} chunks, "
            f"{len(self)} records)"
        )


class ChunkedTraceWriter:
    """Incrementally write a chunked trace without holding it in memory.

    The ingest pipeline appends records as it parses them; every
    ``chunk_branches`` records one chunk file is flushed to disk and the
    in-memory buffer reset, so converting an arbitrarily large input costs
    one chunk of memory.  :meth:`close` writes the manifest and returns the
    finished :class:`ChunkedTrace`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        name: str,
        metadata: Optional[Dict[str, str]] = None,
        chunk_branches: int = DEFAULT_CHUNK_BRANCHES,
    ) -> None:
        if chunk_branches < 1:
            raise ValueError(
                f"chunk_branches must be positive, got {chunk_branches}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.metadata = dict(metadata) if metadata else {}
        self.chunk_branches = chunk_branches
        self._buffer = Trace(name=name)
        self._entries: List[Dict[str, Any]] = []
        self._records = 0
        self._conditional = 0
        self._instructions = 0
        self._closed = False

    def append(self, record: BranchRecord) -> None:
        """Append one branch record, flushing a chunk when the buffer fills."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.chunk_branches:
            self._flush_chunk()

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        chunk = self._buffer
        index = len(self._entries)
        file_name = _chunk_file_name(index)
        (self.directory / file_name).write_bytes(trace_to_bytes(chunk))
        self._entries.append(
            {
                "file": file_name,
                "records": len(chunk),
                "conditional": chunk.conditional_count,
                "instructions": chunk.instruction_count,
                "fingerprint": chunk.fingerprint(),
            }
        )
        self._records += len(chunk)
        self._conditional += chunk.conditional_count
        self._instructions += chunk.instruction_count
        self._buffer = Trace(name=self.name)

    def close(self) -> ChunkedTrace:
        """Flush the final chunk, write the manifest, return the trace."""
        if self._closed:
            raise ValueError("writer is closed")
        if len(self._buffer) or not self._entries:
            # An empty input still yields one (empty) chunk so the layout
            # always has at least one chunk file and a defined fingerprint.
            self._flush_chunk()
        self._closed = True
        manifest = {
            "format": CHUNK_FORMAT,
            "version": _MANIFEST_VERSION,
            "name": self.name,
            "metadata": self.metadata,
            "chunk_branches": self.chunk_branches,
            "records": self._records,
            "conditional": self._conditional,
            "instructions": self._instructions,
            "fingerprint": chunked_fingerprint(
                self.name, [entry["fingerprint"] for entry in self._entries]
            ),
            "chunks": self._entries,
        }
        manifest_path = self.directory / MANIFEST_NAME
        tmp = manifest_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(manifest, indent=2, ensure_ascii=False) + "\n",
            encoding="utf-8",
        )
        tmp.replace(manifest_path)
        return ChunkedTrace(self.directory, manifest=manifest)


def write_chunked_trace(
    trace: Trace,
    directory: Union[str, Path],
    chunk_branches: int = DEFAULT_CHUNK_BRANCHES,
) -> ChunkedTrace:
    """Write an in-memory :class:`Trace` as a chunked directory."""
    writer = ChunkedTraceWriter(
        directory,
        name=trace.name,
        metadata=trace.metadata,
        chunk_branches=chunk_branches,
    )
    total = len(trace)
    for start in range(0, total, chunk_branches):
        chunk = trace.slice(start, min(start + chunk_branches, total))
        writer._buffer = chunk
        writer._flush_chunk()
    return writer.close()


def load_chunked_trace(directory: Union[str, Path]) -> ChunkedTrace:
    """Open a chunked trace directory (manifest validated, chunks lazy)."""
    return ChunkedTrace(directory)


def is_chunked_dir(path: Union[str, Path]) -> bool:
    """Whether ``path`` is a chunked trace directory."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def load_any_trace(path: Union[str, Path]) -> Union[Trace, ChunkedTrace]:
    """Open any on-disk trace: chunked directory, binary file or text file.

    This is what every ``--trace PATH`` CLI option goes through, so an
    ingested chunked trace is addressable exactly like a plain trace file.
    """
    path = Path(path)
    if path.is_dir():
        if is_chunked_dir(path):
            return load_chunked_trace(path)
        raise ValueError(
            f"{path} is a directory but not a chunked trace "
            f"(no {MANIFEST_NAME}); point --trace at a trace file or a "
            f"'repro ingest' output directory"
        )
    return load_trace(path)
