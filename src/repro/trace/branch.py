"""Dynamic branch records.

A trace is a sequence of :class:`BranchRecord` objects, one per dynamic
branch instruction, in program order.  The fields mirror what the CBP
championship trace format exposes to a predictor: the branch PC, its
target, the kind of branch (conditional, unconditional direct, indirect,
call, return) and -- for conditional branches -- the resolved outcome.

Predictors are only asked to predict *conditional* branches, but the other
kinds still appear in the trace because path history and the IMLI counter
heuristic (``target < pc`` means a backward branch) observe them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "BranchKind",
    "BranchRecord",
    "conditional_branch",
    "CONDITIONAL_CODE",
    "KIND_FROM_CODE",
    "KIND_TO_CODE",
]


class BranchKind(Enum):
    """The kind of a dynamic branch instruction."""

    CONDITIONAL = "cond"
    UNCONDITIONAL = "uncond"
    CALL = "call"
    RETURN = "ret"
    INDIRECT = "ind"

    @property
    def is_conditional(self) -> bool:
        """``True`` only for direct conditional branches."""
        return self is BranchKind.CONDITIONAL


#: Stable small-integer codes for each branch kind, used by the columnar
#: trace storage and the binary trace format.  Codes are part of the binary
#: format, so existing values must never be renumbered.
KIND_TO_CODE = {
    BranchKind.CONDITIONAL: 0,
    BranchKind.UNCONDITIONAL: 1,
    BranchKind.CALL: 2,
    BranchKind.RETURN: 3,
    BranchKind.INDIRECT: 4,
}

#: Inverse of :data:`KIND_TO_CODE`, indexed by code.
KIND_FROM_CODE = tuple(
    kind for kind, _ in sorted(KIND_TO_CODE.items(), key=lambda item: item[1])
)

#: Code of :attr:`BranchKind.CONDITIONAL` (the hot comparison in the fast
#: simulation loop).
CONDITIONAL_CODE = KIND_TO_CODE[BranchKind.CONDITIONAL]


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic branch in a trace.

    Attributes
    ----------
    pc:
        Address of the branch instruction.
    target:
        Address of the taken target.  For conditional branches the
        fall-through address is implicitly ``pc + 1`` (instruction
        addresses in synthetic traces are abstract, not byte addresses).
    taken:
        Resolved direction.  Unconditional branches, calls, returns and
        indirect jumps are always taken.
    kind:
        The :class:`BranchKind` of the instruction.
    instruction_gap:
        Number of non-branch instructions executed since the previous
        branch record.  The simulator sums these gaps (plus one per branch)
        to obtain the instruction count used by the MPKI metric.
    """

    pc: int
    target: int
    taken: bool
    kind: BranchKind = BranchKind.CONDITIONAL
    instruction_gap: int = 4

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"branch pc must be non-negative, got {self.pc}")
        if self.target < 0:
            raise ValueError(f"branch target must be non-negative, got {self.target}")
        if self.instruction_gap < 0:
            raise ValueError(
                f"instruction gap must be non-negative, got {self.instruction_gap}"
            )
        if not self.kind.is_conditional and not self.taken:
            raise ValueError(f"{self.kind.value} branches are always taken")

    @property
    def is_conditional(self) -> bool:
        """``True`` when the record is a direct conditional branch."""
        return self.kind.is_conditional

    @property
    def is_backward(self) -> bool:
        """``True`` when the taken target precedes the branch.

        Backward conditional branches are treated as loop-exit branches by
        the IMLI counter heuristic (Section 4.1 of the paper).
        """
        return self.target < self.pc


def conditional_branch(pc: int, target: int, taken: bool, instruction_gap: int = 4) -> BranchRecord:
    """Convenience constructor for a direct conditional branch record."""
    return BranchRecord(
        pc=pc,
        target=target,
        taken=taken,
        kind=BranchKind.CONDITIONAL,
        instruction_gap=instruction_gap,
    )
