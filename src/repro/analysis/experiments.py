"""Experiment registry: one entry per table and figure of the paper.

Every experiment takes the per-suite :class:`~repro.sim.runner.SuiteRunner`
objects (keys ``"cbp4like"`` and ``"cbp3like"``), runs the predictor
configurations it needs (results are memoised inside the runners, so
experiments sharing configurations do not repeat simulations), and returns
an :class:`ExperimentResult` holding

* a formatted text report (the regenerated table / figure),
* the structured measured data, and
* the corresponding numbers reported by the paper, so that the benchmark
  harness and EXPERIMENTS.md can show paper-vs-measured side by side.

Absolute MPKI values are *not* expected to match the paper (the traces are
synthetic substitutes, see DESIGN.md); the comparisons of interest are the
shape ones: which configurations win, on which benchmarks, by roughly what
relative margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.analysis.figures import format_bar_chart, format_grouped_bar_chart
from repro.analysis.tables import format_key_values, format_mpki_table, format_table
from repro.api.specs import PredictorSpec
from repro.sim.delayed_update import run_delayed_update_experiment
from repro.sim.metrics import (
    most_affected,
    mpki_delta,
    mpki_reduction_percent,
)
from repro.sim.runner import SuiteRunner
from repro.sim.storage import (
    imli_component_cost_bits,
    speculative_state_report,
    storage_report,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]

Runners = Mapping[str, SuiteRunner]

#: Suites in the order the paper reports them (CBP4 first, then CBP3).
SUITE_ORDER = ("cbp4like", "cbp3like")

#: Benchmarks the paper singles out as IMLI / WH beneficiaries.
PAPER_HIGHLIGHTED_BENCHMARKS = (
    "SPEC2K6-04",
    "SPEC2K6-12",
    "MM-4",
    "CLIENT02",
    "MM07",
    "WS03",
    "WS04",
)


@dataclass
class ExperimentResult:
    """Output of one reproduced experiment."""

    experiment_id: str
    title: str
    text: str
    measured: Dict[str, object] = field(default_factory=dict)
    paper: Dict[str, object] = field(default_factory=dict)

    def report(self) -> str:
        """Full text report including the paper's reference numbers."""
        sections = [f"[{self.experiment_id}] {self.title}", "", self.text]
        if self.paper:
            sections.append("")
            sections.append(format_key_values(self.paper, title="Paper reference values"))
        return "\n".join(sections)


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _ordered_suites(runners: Runners) -> List[str]:
    return [suite for suite in SUITE_ORDER if suite in runners] + [
        suite for suite in runners if suite not in SUITE_ORDER
    ]


def _run(runner: SuiteRunner, configuration: str):
    """Run one named configuration through the declarative spec layer.

    Every experiment's simulations flow through
    :meth:`~repro.sim.runner.SuiteRunner.run_spec`; the spec label equals
    the configuration name, so the memoisation cache is shared with any
    name-based callers of the same runner.
    """
    return runner.run_spec(
        PredictorSpec.from_named(configuration, profile=runner.profile)
    )


def _suite_averages(runners: Runners, configurations: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """``{suite: {configuration: average MPKI}}`` for the given configurations."""
    averages: Dict[str, Dict[str, float]] = {}
    for suite in _ordered_suites(runners):
        runner = runners[suite]
        averages[suite] = {
            configuration: _run(runner, configuration).average_mpki
            for configuration in configurations
        }
    return averages


def _per_benchmark_delta(
    runners: Runners, baseline: str, candidate: str
) -> Dict[str, float]:
    """Per-benchmark MPKI reduction of ``candidate`` relative to ``baseline``."""
    deltas: Dict[str, float] = {}
    for suite in _ordered_suites(runners):
        runner = runners[suite]
        base = _run(runner, baseline).mpki_by_trace()
        cand = _run(runner, candidate).mpki_by_trace()
        deltas.update(mpki_delta(base, cand))
    return deltas


def _storage_kbits(runners: Runners, configurations: Sequence[str]) -> Dict[str, float]:
    profile = next(iter(runners.values())).profile
    return {
        configuration: storage_report(configuration, profile=profile).total_kilobits
        for configuration in configurations
    }


# --------------------------------------------------------------------------- #
# Section 3.2: base predictors
# --------------------------------------------------------------------------- #


def experiment_base_predictors(runners: Runners) -> ExperimentResult:
    """Average MPKI of the two base predictors (Section 3.2)."""
    configurations = ["tage-gsc", "gehl"]
    averages = _suite_averages(runners, configurations)
    text = format_mpki_table(
        configurations,
        averages,
        storage_kbits=_storage_kbits(runners, configurations),
        title="Base predictor accuracy (average MPKI)",
    )
    return ExperimentResult(
        experiment_id="base-predictors",
        title="Base global-history predictors (Section 3.2)",
        text=text,
        measured={"average_mpki": averages},
        paper={
            "tage-gsc cbp4 MPKI": 2.473,
            "tage-gsc cbp3 MPKI": 3.902,
            "gehl cbp4 MPKI": 2.864,
            "gehl cbp3 MPKI": 4.243,
            "tage-gsc size (Kbits)": 228,
            "gehl size (Kbits)": 204,
        },
    )


# --------------------------------------------------------------------------- #
# Section 3.3 and 4.3: wormhole prediction
# --------------------------------------------------------------------------- #


def experiment_wormhole(runners: Runners) -> ExperimentResult:
    """WH on top of the base predictors and on top of IMLI-SIC (Sections 3.3, 4.3)."""
    configurations = [
        "tage-gsc", "tage-gsc+wh", "tage-gsc+sic", "tage-gsc+sic+wh",
        "gehl", "gehl+wh", "gehl+sic", "gehl+sic+wh",
    ]
    averages = _suite_averages(runners, configurations)
    reductions: Dict[str, float] = {}
    for suite, per_configuration in averages.items():
        for base in ("tage-gsc", "gehl"):
            reductions[f"{base}+wh vs {base} ({suite})"] = mpki_reduction_percent(
                per_configuration[base], per_configuration[f"{base}+wh"]
            )
    per_benchmark = _per_benchmark_delta(runners, "tage-gsc", "tage-gsc+wh")
    top = sorted(per_benchmark.items(), key=lambda item: item[1], reverse=True)[:6]
    text_parts = [
        format_mpki_table(
            configurations,
            averages,
            title="Wormhole side predictor (average MPKI)",
        ),
        "",
        format_key_values(reductions, title="Relative MPKI reduction from WH (%)"),
        "",
        format_bar_chart(
            dict(top),
            title="Benchmarks most improved by WH on TAGE-GSC (MPKI reduction)",
            value_label="delta MPKI",
            sort_descending=True,
        ),
    ]
    return ExperimentResult(
        experiment_id="wormhole",
        title="Wormhole prediction on top of TAGE-GSC and GEHL (Sections 3.3 and 4.3)",
        text="\n".join(text_parts),
        measured={
            "average_mpki": averages,
            "reduction_percent": reductions,
            "most_improved": dict(top),
        },
        paper={
            "tage-gsc+wh cbp4 MPKI": 2.415,
            "tage-gsc+wh cbp3 MPKI": 3.823,
            "gehl+wh cbp4 MPKI": 2.802,
            "gehl+wh cbp3 MPKI": 4.141,
            "WH reduction on TAGE-GSC (cbp4, %)": 2.4,
            "WH reduction on TAGE-GSC (cbp3, %)": 2.2,
            "tage-gsc+sic+wh cbp4 MPKI": 2.323,
            "tage-gsc+sic+wh cbp3 MPKI": 3.675,
            "benefiting benchmarks": "SPEC2K6-12, MM-4, CLIENT02, MM07 only",
        },
    )


# --------------------------------------------------------------------------- #
# Section 4.2: IMLI-SIC
# --------------------------------------------------------------------------- #


def experiment_imli_sic(runners: Runners) -> ExperimentResult:
    """IMLI-SIC alone on both base predictors, and its interaction with the loop predictor."""
    configurations = [
        "tage-gsc", "tage-gsc+sic", "gehl", "gehl+sic",
        "tage-gsc+loop", "tage-gsc+sic+loop",
    ]
    averages = _suite_averages(runners, configurations)
    loop_benefit: Dict[str, float] = {}
    for suite, per_configuration in averages.items():
        loop_benefit[f"loop benefit without SIC ({suite})"] = (
            per_configuration["tage-gsc"] - per_configuration["tage-gsc+loop"]
        )
        loop_benefit[f"loop benefit with SIC ({suite})"] = (
            per_configuration["tage-gsc+sic"] - per_configuration["tage-gsc+sic+loop"]
        )
    per_benchmark = _per_benchmark_delta(runners, "tage-gsc", "tage-gsc+sic")
    top = dict(sorted(per_benchmark.items(), key=lambda item: item[1], reverse=True)[:8])
    text_parts = [
        format_mpki_table(
            ["tage-gsc", "tage-gsc+sic", "gehl", "gehl+sic"],
            {suite: averages[suite] for suite in averages},
            title="IMLI-SIC alone (average MPKI)",
        ),
        "",
        format_key_values(loop_benefit, title="Loop predictor benefit with / without IMLI-SIC (delta MPKI)"),
        "",
        format_bar_chart(
            top,
            title="Benchmarks most improved by IMLI-SIC on TAGE-GSC (MPKI reduction)",
            value_label="delta MPKI",
            sort_descending=True,
        ),
    ]
    return ExperimentResult(
        experiment_id="imli-sic",
        title="The IMLI-SIC component (Section 4.2.2)",
        text="\n".join(text_parts),
        measured={
            "average_mpki": averages,
            "loop_benefit": loop_benefit,
            "most_improved": top,
        },
        paper={
            "tage-gsc cbp4 MPKI": 2.473,
            "tage-gsc+sic cbp4 MPKI": 2.373,
            "tage-gsc cbp3 MPKI": 3.902,
            "tage-gsc+sic cbp3 MPKI": 3.733,
            "gehl cbp4 MPKI": 2.864,
            "gehl+sic cbp4 MPKI": 2.752,
            "gehl cbp3 MPKI": 4.243,
            "gehl+sic cbp3 MPKI": 4.053,
            "loop benefit without SIC (cbp4)": 0.034,
            "loop benefit with SIC (cbp4)": 0.013,
            "loop benefit without SIC (cbp3)": 0.094,
            "loop benefit with SIC (cbp3)": 0.010,
            "most improved": "SPEC2K6-04, SPEC2K6-12, WS04, MM07, CLIENT02",
        },
    )


# --------------------------------------------------------------------------- #
# Figures 8-11: IMLI-induced MPKI reduction
# --------------------------------------------------------------------------- #


def _imli_reduction_figure(
    runners: Runners, base: str, experiment_id: str, title: str, limit: int | None
) -> ExperimentResult:
    sic_delta = _per_benchmark_delta(runners, base, f"{base}+sic")
    imli_delta = _per_benchmark_delta(runners, base, f"{base}+imli")
    grouped = {
        name: {"imli-sic": sic_delta[name], "imli-sic+oh": imli_delta[name]}
        for name in imli_delta
    }
    averages = _suite_averages(runners, [base, f"{base}+sic", f"{base}+imli"])
    text_parts = [
        format_grouped_bar_chart(
            grouped,
            series_order=["imli-sic", "imli-sic+oh"],
            title=f"IMLI-induced MPKI reduction over {base}"
            + (f" ({limit} most benefitting benchmarks)" if limit else " (all benchmarks)"),
            limit=limit,
        ),
        "",
        format_mpki_table(
            [base, f"{base}+sic", f"{base}+imli"],
            averages,
            title="Average MPKI",
        ),
    ]
    paper_reference = {
        "tage-gsc": {
            "base cbp4 MPKI": 2.473,
            "base+imli cbp4 MPKI": 2.313,
            "base cbp3 MPKI": 3.902,
            "base+imli cbp3 MPKI": 3.649,
            "relative reduction cbp4 (%)": 6.8,
            "relative reduction cbp3 (%)": 6.1,
        },
        "gehl": {
            "base cbp4 MPKI": 2.864,
            "base+imli cbp4 MPKI": 2.694,
            "base cbp3 MPKI": 4.243,
            "base+imli cbp3 MPKI": 3.958,
            "relative reduction cbp4 (%)": 6.0,
            "relative reduction cbp3 (%)": 6.5,
        },
    }[base]
    paper_reference["benefitting benchmarks"] = (
        "SPEC2K6-04, SPEC2K6-12, MM-4, CLIENT02, MM07, WS04, WS03"
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text="\n".join(text_parts),
        measured={
            "per_benchmark_reduction": grouped,
            "average_mpki": averages,
        },
        paper=paper_reference,
    )


def experiment_fig8(runners: Runners) -> ExperimentResult:
    """Figure 8: IMLI-induced MPKI reduction on all benchmarks, TAGE-GSC."""
    return _imli_reduction_figure(
        runners, "tage-gsc", "fig8",
        "IMLI-induced MPKI reduction, all benchmarks, TAGE-GSC (Figure 8)", None,
    )


def experiment_fig9(runners: Runners) -> ExperimentResult:
    """Figure 9: IMLI-induced MPKI reduction, 15 most benefitting benchmarks, TAGE-GSC."""
    return _imli_reduction_figure(
        runners, "tage-gsc", "fig9",
        "IMLI-induced MPKI reduction, 15 most benefitting benchmarks, TAGE-GSC (Figure 9)", 15,
    )


def experiment_fig10(runners: Runners) -> ExperimentResult:
    """Figure 10: IMLI-induced MPKI reduction on all benchmarks, GEHL."""
    return _imli_reduction_figure(
        runners, "gehl", "fig10",
        "IMLI-induced MPKI reduction, all benchmarks, GEHL (Figure 10)", None,
    )


def experiment_fig11(runners: Runners) -> ExperimentResult:
    """Figure 11: IMLI-induced MPKI reduction, 15 most benefitting benchmarks, GEHL."""
    return _imli_reduction_figure(
        runners, "gehl", "fig11",
        "IMLI-induced MPKI reduction, 15 most benefitting benchmarks, GEHL (Figure 11)", 15,
    )


# --------------------------------------------------------------------------- #
# Figure 13: IMLI-OH vs WH
# --------------------------------------------------------------------------- #


def experiment_fig13(runners: Runners) -> ExperimentResult:
    """Figure 13: IMLI-OH vs WH prediction accuracy on top of GEHL."""
    oh_delta = _per_benchmark_delta(runners, "gehl", "gehl+oh")
    wh_delta = _per_benchmark_delta(runners, "gehl", "gehl+wh")
    grouped = {
        name: {"imli-oh": oh_delta[name], "wormhole": wh_delta[name]}
        for name in oh_delta
    }
    averages = _suite_averages(runners, ["gehl", "gehl+oh", "gehl+wh"])
    text_parts = [
        format_grouped_bar_chart(
            grouped,
            series_order=["imli-oh", "wormhole"],
            title="MPKI reduction over GEHL: IMLI-OH vs wormhole (Figure 13)",
            limit=12,
        ),
        "",
        format_mpki_table(["gehl", "gehl+oh", "gehl+wh"], averages, title="Average MPKI"),
    ]
    return ExperimentResult(
        experiment_id="fig13",
        title="IMLI-OH vs WH prediction accuracy on top of GEHL (Figure 13)",
        text="\n".join(text_parts),
        measured={"per_benchmark_reduction": grouped, "average_mpki": averages},
        paper={
            "expected shape": (
                "both IMLI-OH and WH improve the wormhole-correlated benchmarks "
                "(SPEC2K6-12, MM-4, CLIENT02, MM07); IMLI-OH additionally gives "
                "small gains on a few IMLI-SIC benchmarks (SPEC2K6-04, WS03)"
            ),
        },
    )


# --------------------------------------------------------------------------- #
# Tables 1 and 2
# --------------------------------------------------------------------------- #


def _table_experiment(
    runners: Runners, base: str, experiment_id: str, title: str, paper: Dict[str, object]
) -> ExperimentResult:
    configurations = [base, f"{base}+l", f"{base}+imli", f"{base}+imli+l"]
    averages = _suite_averages(runners, configurations)
    storage = _storage_kbits(runners, configurations)
    text = format_mpki_table(
        configurations, averages, storage_kbits=storage, title=title
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text=text,
        measured={"average_mpki": averages, "storage_kbits": storage},
        paper=paper,
    )


def experiment_table1(runners: Runners) -> ExperimentResult:
    """Table 1: average MPKI for TAGE-GSC-based predictors."""
    return _table_experiment(
        runners,
        "tage-gsc",
        "table1",
        "Average MPKI for TAGE-GSC-based predictors (Table 1)",
        paper={
            "size (Kbits)": "228 / 256 / 234 / 261",
            "cbp4 MPKI (base, +L, +I, +I+L)": "2.473 / 2.365 / 2.313 / 2.226",
            "cbp3 MPKI (base, +L, +I, +I+L)": "3.902 / 3.670 / 3.649 / 3.555",
        },
    )


def experiment_table2(runners: Runners) -> ExperimentResult:
    """Table 2: average MPKI for GEHL-based predictors."""
    return _table_experiment(
        runners,
        "gehl",
        "table2",
        "Average MPKI for GEHL-based predictors (Table 2)",
        paper={
            "size (Kbits)": "204 / 256 / 209 / 261",
            "cbp4 MPKI (base, +L, +I, +I+L)": "2.864 / 2.693 / 2.694 / 2.562",
            "cbp3 MPKI (base, +L, +I, +I+L)": "4.243 / 3.924 / 3.958 / 3.827",
        },
    )


# --------------------------------------------------------------------------- #
# Figures 14 and 15: benefit of local history components
# --------------------------------------------------------------------------- #


def _local_history_figure(
    runners: Runners, base: str, experiment_id: str, title: str
) -> ExperimentResult:
    configurations = [base, f"{base}+imli", f"{base}+l", f"{base}+imli+l"]
    averages = _suite_averages(runners, configurations)
    base_mpki: Dict[str, float] = {}
    series: Dict[str, Dict[str, float]] = {}
    for suite in _ordered_suites(runners):
        runner = runners[suite]
        base_run = _run(runner, base).mpki_by_trace()
        base_mpki.update(base_run)
        for configuration in configurations[1:]:
            candidate = _run(runner, configuration).mpki_by_trace()
            for name, delta in mpki_delta(base_run, candidate).items():
                series.setdefault(name, {})[configuration] = delta
    affected = most_affected(
        base_mpki,
        [
            {name: base_mpki[name] - series[name][configuration] for name in series}
            for configuration in configurations[1:]
        ],
        count=25,
    )
    grouped = {name: series[name] for name in affected}
    imli_shrink: Dict[str, float] = {}
    for suite, per_configuration in averages.items():
        imli_shrink[f"local benefit without IMLI ({suite})"] = (
            per_configuration[base] - per_configuration[f"{base}+l"]
        )
        imli_shrink[f"local benefit with IMLI ({suite})"] = (
            per_configuration[f"{base}+imli"] - per_configuration[f"{base}+imli+l"]
        )
    text_parts = [
        format_grouped_bar_chart(
            grouped,
            series_order=configurations[1:],
            title=title + " (25 most affected benchmarks, MPKI reduction over base)",
            limit=25,
        ),
        "",
        format_key_values(imli_shrink, title="Benefit of local history with / without IMLI (delta MPKI)"),
        "",
        format_mpki_table(configurations, averages, title="Average MPKI"),
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        text="\n".join(text_parts),
        measured={
            "per_benchmark_reduction": grouped,
            "average_mpki": averages,
            "local_benefit": imli_shrink,
        },
        paper={
            "tage-gsc": {
                "local benefit without IMLI (cbp4)": 0.108,
                "local benefit with IMLI (cbp4)": 0.087,
                "local benefit without IMLI (cbp3)": 0.232,
                "local benefit with IMLI (cbp3)": 0.094,
            },
            "gehl": {
                "local benefit without IMLI (cbp4)": 0.171,
                "local benefit with IMLI (cbp4)": 0.132,
                "local benefit without IMLI (cbp3)": 0.319,
                "local benefit with IMLI (cbp3)": 0.131,
            },
        }[base],
    )


def experiment_fig14(runners: Runners) -> ExperimentResult:
    """Figure 14: benefits of local history components on TAGE."""
    return _local_history_figure(
        runners, "tage-gsc", "fig14", "Benefits of local history components on TAGE (Figure 14)"
    )


def experiment_fig15(runners: Runners) -> ExperimentResult:
    """Figure 15: benefits of local history components on GEHL."""
    return _local_history_figure(
        runners, "gehl", "fig15", "Benefits of local history components on GEHL (Figure 15)"
    )


# --------------------------------------------------------------------------- #
# Section 4.3.2: delayed update of the IMLI history table
# --------------------------------------------------------------------------- #


def experiment_delayed_update(runners: Runners) -> ExperimentResult:
    """Section 4.3.2: delayed update of the IMLI history table."""
    traces = []
    for suite in _ordered_suites(runners):
        traces.extend(runners[suite].traces)
    profile = next(iter(runners.values())).profile
    results = run_delayed_update_experiment(
        traces, base="tage-gsc", delays=(63,), profile=profile
    )
    rows = [
        (result.delay, result.immediate_mpki, result.delayed_mpki, result.mpki_loss)
        for result in results
    ]
    text = format_table(
        ["update delay (branches)", "immediate MPKI", "delayed MPKI", "MPKI loss"],
        rows,
        title="Delayed update of the IMLI history table (Section 4.3.2)",
        float_format="{:.4f}",
    )
    return ExperimentResult(
        experiment_id="delayed-update",
        title="Delayed update of the IMLI outer-history table (Section 4.3.2)",
        text=text,
        measured={"results": rows},
        paper={"MPKI loss with 63-branch delay": 0.002},
    )


# --------------------------------------------------------------------------- #
# Section 5: the TAGE-SC-L + IMLI record
# --------------------------------------------------------------------------- #


def experiment_record(runners: Runners) -> ExperimentResult:
    """Section 5: TAGE-SC-L enhanced with IMLI components."""
    configurations = ["tage-sc-l", "tage-sc-l+imli"]
    averages = _suite_averages(runners, configurations)
    reductions = {
        suite: mpki_reduction_percent(
            per_configuration["tage-sc-l"], per_configuration["tage-sc-l+imli"]
        )
        for suite, per_configuration in averages.items()
    }
    text_parts = [
        format_mpki_table(
            configurations,
            averages,
            storage_kbits=_storage_kbits(runners, configurations),
            title="TAGE-SC-L with IMLI components (Section 5)",
        ),
        "",
        format_key_values(
            {f"relative reduction ({suite}, %)": value for suite, value in reductions.items()},
            title="Relative MPKI reduction from adding IMLI to TAGE-SC-L",
        ),
    ]
    return ExperimentResult(
        experiment_id="record",
        title="Setting a new branch prediction record (Section 5)",
        text="\n".join(text_parts),
        measured={"average_mpki": averages, "reduction_percent": reductions},
        paper={
            "tage-sc-l cbp4 MPKI": 2.365,
            "tage-sc-l+imli cbp4 MPKI": 2.228,
            "relative reduction (%)": 5.8,
        },
    )


# --------------------------------------------------------------------------- #
# Section 4.4: storage and speculative state
# --------------------------------------------------------------------------- #


def experiment_storage(runners: Runners) -> ExperimentResult:
    """Section 4.4: storage budget and speculative-state cost of the IMLI components."""
    profile = next(iter(runners.values())).profile
    imli_cost = imli_component_cost_bits(profile=profile)
    speculation = speculative_state_report(profile=profile)
    storage_rows = []
    for configuration in ("tage-gsc", "tage-gsc+imli", "tage-gsc+l", "tage-gsc+imli+l"):
        report = storage_report(configuration, profile=profile)
        storage_rows.append((configuration, round(report.total_kilobits, 1), round(report.total_bytes)))
    speculation_rows = [
        (
            configuration,
            details["checkpoint_bits"],
            "yes" if details["requires_inflight_window_search"] else "no",
        )
        for configuration, details in speculation.items()
    ]
    text_parts = [
        format_table(
            ["configuration", "size (Kbits)", "size (bytes)"],
            storage_rows,
            title="Storage budget per configuration (Section 4.4)",
        ),
        "",
        format_key_values(
            {name: f"{bits} bits ({bits / 8:.0f} bytes)" for name, bits in imli_cost.items()},
            title="Storage added by the IMLI components",
        ),
        "",
        format_table(
            ["configuration", "checkpoint bits / branch", "in-flight window search"],
            speculation_rows,
            title="Speculative state management",
        ),
    ]
    return ExperimentResult(
        experiment_id="storage-speculation",
        title="IMLI storage budget and speculative state (Section 4.4)",
        text="\n".join(text_parts),
        measured={
            "imli_cost_bits": imli_cost,
            "storage": {row[0]: row[1] for row in storage_rows},
            "speculation": speculation,
        },
        paper={
            "IMLI total storage (bytes)": 708,
            "IMLI-SIC table (bytes)": 384,
            "IMLI outer history table (bytes)": 128,
            "IMLI-OH prediction table (bytes)": 192,
            "PIPE vector + IMLI counter (bytes)": 4,
            "checkpoint": "10-bit IMLI counter + 16-bit PIPE vector",
        },
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

ExperimentFunction = Callable[[Runners], ExperimentResult]

EXPERIMENTS: Dict[str, ExperimentFunction] = {
    "base-predictors": experiment_base_predictors,
    "wormhole": experiment_wormhole,
    "imli-sic": experiment_imli_sic,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "fig11": experiment_fig11,
    "fig13": experiment_fig13,
    "table1": experiment_table1,
    "table2": experiment_table2,
    "fig14": experiment_fig14,
    "fig15": experiment_fig15,
    "delayed-update": experiment_delayed_update,
    "record": experiment_record,
    "storage-speculation": experiment_storage,
}


def experiment_ids() -> List[str]:
    """Identifiers of every reproduced experiment."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, runners: Runners) -> ExperimentResult:
    """Run one experiment by id over the provided suite runners."""
    try:
        function = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None
    return function(runners)
