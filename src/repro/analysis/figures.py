"""Plain-text figure rendering (per-benchmark bar charts).

The per-benchmark figures of the paper (Figures 8-11 and 13-15) are bar
charts of MPKI reduction or absolute MPKI per benchmark.  These helpers
render the same data as horizontal ASCII bar charts so the benchmark
harness can regenerate every figure in a terminal and EXPERIMENTS.md can
embed them.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["format_bar_chart", "format_grouped_bar_chart"]

_BAR_WIDTH = 40


def _bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0:
        return ""
    length = int(round(width * min(abs(value), maximum) / maximum))
    char = "#" if value >= 0 else "-"
    return char * length


def format_bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    value_label: str = "value",
    sort_descending: bool = False,
    limit: int | None = None,
) -> str:
    """Render one horizontal bar per key.

    Negative values are rendered with ``-`` bars (an MPKI *increase* in the
    reduction figures).
    """
    items = list(values.items())
    if sort_descending:
        items.sort(key=lambda item: item[1], reverse=True)
    if limit is not None:
        items = items[:limit]
    if not items:
        return title or ""
    maximum = max(abs(value) for _, value in items) or 1.0
    name_width = max(len(name) for name, _ in items)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"{'benchmark'.ljust(name_width)}  {value_label}")
    for name, value in items:
        lines.append(
            f"{name.ljust(name_width)}  {value:+7.3f}  {_bar(value, maximum)}"
        )
    return "\n".join(lines)


def format_grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    series_order: Sequence[str],
    title: str | None = None,
    limit: int | None = None,
) -> str:
    """Render several series per benchmark (one sub-bar per series).

    ``groups`` maps benchmark name to ``{series_name: value}``; benchmarks
    are ordered by the largest absolute value across series (matching the
    "most benefitting / most affected" ordering used by the paper's
    figures).
    """
    ordered = sorted(
        groups.items(),
        key=lambda item: max((abs(value) for value in item[1].values()), default=0.0),
        reverse=True,
    )
    if limit is not None:
        ordered = ordered[:limit]
    if not ordered:
        return title or ""
    maximum = max(
        (abs(value) for _, series in ordered for value in series.values()), default=1.0
    ) or 1.0
    name_width = max(len(name) for name, _ in ordered)
    series_width = max(len(name) for name in series_order)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for name, series in ordered:
        for position, series_name in enumerate(series_order):
            value = series.get(series_name, 0.0)
            label = name if position == 0 else ""
            lines.append(
                f"{label.ljust(name_width)}  {series_name.ljust(series_width)}  "
                f"{value:+7.3f}  {_bar(value, maximum)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
