"""Reporting and experiment reproduction.

* :mod:`repro.analysis.tables` -- plain-text table formatting (Tables 1/2
  layout).
* :mod:`repro.analysis.figures` -- plain-text bar charts (Figures 8-15
  layout).
* :mod:`repro.analysis.experiments` -- the registry of reproduced
  experiments, one per table and figure of the paper's evaluation section.
"""

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    run_experiment,
)
from repro.analysis.figures import format_bar_chart, format_grouped_bar_chart
from repro.analysis.tables import format_key_values, format_mpki_table, format_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "experiment_ids",
    "format_bar_chart",
    "format_grouped_bar_chart",
    "format_key_values",
    "format_mpki_table",
    "format_table",
    "run_experiment",
]
