"""Plain-text table formatting for experiment reports.

The benchmark harness regenerates the paper's tables and figures as text;
these helpers render aligned tables similar in layout to Tables 1 and 2 of
the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_mpki_table", "format_key_values"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` as an aligned plain-text table.

    Floats are formatted with ``float_format``; every other value is
    rendered with ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(value) if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[column]) for column, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_mpki_table(
    configurations: Sequence[str],
    suite_mpki: Mapping[str, Mapping[str, float]],
    storage_kbits: Mapping[str, float] | None = None,
    title: str | None = None,
) -> str:
    """Render the Table-1/Table-2 layout: one column per configuration.

    Parameters
    ----------
    configurations:
        Column order (e.g. ``["tage-gsc", "tage-gsc+l", ...]``).
    suite_mpki:
        ``{suite_name: {configuration: average_mpki}}``.
    storage_kbits:
        Optional ``{configuration: Kbits}`` row.
    title:
        Optional table title.
    """
    headers = [""] + list(configurations)
    rows: List[List[object]] = []
    if storage_kbits is not None:
        rows.append(
            ["size (Kbits)"]
            + [round(storage_kbits[configuration], 1) for configuration in configurations]
        )
    for suite_name, per_configuration in suite_mpki.items():
        rows.append(
            [suite_name] + [per_configuration[configuration] for configuration in configurations]
        )
    return format_table(headers, rows, title=title)


def format_key_values(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Render a mapping as an aligned ``key: value`` block."""
    if not pairs:
        return title or ""
    width = max(len(str(key)) for key in pairs)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in pairs.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key).ljust(width)} : {rendered}")
    return "\n".join(lines)
