"""Shared live progress display for long cell-based runs.

Sweeps, ``repro simulate --progress`` and the distributed coordinator all
execute grids of ``(spec, trace)`` cells; :class:`ProgressPrinter` gives
them one stderr display: completed/total cells, throughput and an ETA,
rate-limited so tight loops do not flood the terminal.

The printer is a plain callable ``(done, total)`` so it plugs directly
into :class:`repro.sim.runner.SuiteRunner`'s ``progress`` hook and the
coordinator's per-cell completion callback.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Prints ``done/total`` cell progress with throughput and ETA.

    Parameters
    ----------
    label:
        Prefix of every progress line (e.g. ``"sweep"`` or ``"serve"``).
    stream:
        Destination (default ``sys.stderr`` -- resolved at print time so
        pytest's capture sees it).
    min_interval:
        Seconds between printed updates; completions arriving faster are
        coalesced.  The first and the final update always print.
    """

    def __init__(
        self,
        label: str = "progress",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
    ) -> None:
        self.label = label
        self.stream = stream
        self.min_interval = float(min_interval)
        self._started: Optional[float] = None
        self._last_printed: float = 0.0
        self._last_done: int = -1

    def __call__(self, done: int, total: int) -> None:
        now = time.monotonic()
        if self._started is None:
            self._started = now
        if (
            done == self._last_done
            or (done < total and now - self._last_printed < self.min_interval)
        ):
            return
        self._last_printed = now
        self._last_done = done
        elapsed = max(now - self._started, 1e-9)
        rate = done / elapsed
        if 0 < done < total and rate > 0:
            eta = f"ETA {self._format_seconds((total - done) / rate)}"
        elif done >= total:
            eta = f"took {self._format_seconds(elapsed)}"
        else:
            eta = "ETA n/a"
        percent = 100.0 * done / total if total else 100.0
        stream = self.stream if self.stream is not None else sys.stderr
        print(
            f"{self.label}: {done}/{total} cells ({percent:.0f}%), "
            f"{rate:.1f} cells/s, {eta}",
            file=stream,
        )
        stream.flush()

    @staticmethod
    def _format_seconds(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.1f}s"
