"""Shared live progress display for long cell-based runs.

Sweeps, ``repro simulate --progress`` and the distributed coordinator all
execute grids of ``(spec, trace)`` cells; :class:`ProgressPrinter` gives
them one stderr display: completed/total cells, throughput and an ETA,
rate-limited so tight loops do not flood the terminal.

The printer is a plain callable ``(done, total)`` so it plugs directly
into :class:`repro.sim.runner.SuiteRunner`'s ``progress`` hook and the
coordinator's per-cell completion callback.  Callers that have more to
tell -- the distributed path tracks requeued, retried and quarantined
cells -- detect the ``stats_aware`` class attribute and pass a ``stats``
mapping too; nonzero counters are appended to the line (``[requeued 2,
quarantined 1]``) so a degraded run is visible while it happens.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Deque, Mapping, Optional, TextIO, Tuple

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Prints ``done/total`` cell progress with throughput and ETA.

    Parameters
    ----------
    label:
        Prefix of every progress line (e.g. ``"sweep"`` or ``"serve"``).
    stream:
        Destination (default ``sys.stderr`` -- resolved at print time so
        pytest's capture sees it).
    min_interval:
        Seconds between printed updates; completions arriving faster are
        coalesced.  The first and the final update always print, and so
        does any change in the fault-tolerance stats.
    window:
        Sliding window (seconds) the displayed rate and ETA are computed
        over.  A resumed run satisfies its store-warm cells near
        instantly; a since-start average would carry that burst for the
        whole run and promise absurd ETAs, so the rate tracks recent
        completions only (falling back to the since-start average until
        the window has two samples).
    """

    #: Callers (the dist client/coordinator) check this to know they may
    #: pass the ``stats`` keyword; plain ``(done, total)`` calls work too.
    stats_aware = True

    #: Stat keys rendered, in display order.
    _STAT_KEYS = ("requeued", "retried", "quarantined")

    def __init__(
        self,
        label: str = "progress",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        window: float = 30.0,
    ) -> None:
        self.label = label
        self.stream = stream
        self.min_interval = float(min_interval)
        self.window = float(window)
        self._started: Optional[float] = None
        self._last_printed: float = 0.0
        self._last_done: int = -1
        self._last_stats: tuple = ()
        #: Recent ``(stamp, done)`` observations backing the windowed rate.
        self._samples: Deque[Tuple[float, int]] = deque()

    def _rate(self, now: float, done: int) -> float:
        """Cells/s over the recent window (since-start until it fills).

        Samples are recorded on every *observed* change in ``done`` --
        including coalesced calls that never print -- so the window sees
        the true completion cadence, not the print cadence.
        """
        if not self._samples or done != self._samples[-1][1]:
            self._samples.append((now, done))
        # Keep at least two samples so a stall (no completions for longer
        # than the window) degrades the rate instead of emptying the data.
        while len(self._samples) > 2 and now - self._samples[0][0] > self.window:
            self._samples.popleft()
        first_stamp, first_done = self._samples[0]
        span = now - first_stamp
        if done > first_done and span > 1e-9:
            return (done - first_done) / span
        elapsed = max(now - (self._started or now), 1e-9)
        return done / elapsed

    def __call__(
        self, done: int, total: int, stats: Optional[Mapping[str, int]] = None
    ) -> None:
        now = time.monotonic()
        if self._started is None:
            self._started = now
        rendered = tuple(
            (key, int(stats[key]))
            for key in self._STAT_KEYS
            if stats and stats.get(key)
        )
        rate = self._rate(now, done)
        stats_changed = rendered != self._last_stats
        if not stats_changed and (
            done == self._last_done
            or (done < total and now - self._last_printed < self.min_interval)
        ):
            return
        self._last_printed = now
        self._last_done = done
        self._last_stats = rendered
        elapsed = max(now - self._started, 1e-9)
        if done >= total:
            # The final line reports the whole run, not the last window.
            rate = done / elapsed
        if 0 < done < total and rate > 0:
            eta = f"ETA {self._format_seconds((total - done) / rate)}"
        elif done >= total:
            eta = f"took {self._format_seconds(elapsed)}"
        else:
            eta = "ETA n/a"
        percent = 100.0 * done / total if total else 100.0
        suffix = ""
        if rendered:
            suffix = " [" + ", ".join(f"{key} {count}" for key, count in rendered) + "]"
        stream = self.stream if self.stream is not None else sys.stderr
        print(
            f"{self.label}: {done}/{total} cells ({percent:.0f}%), "
            f"{rate:.1f} cells/s, {eta}{suffix}",
            file=stream,
        )
        stream.flush()

    @staticmethod
    def _format_seconds(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.1f}s"
