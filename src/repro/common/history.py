"""Branch history registers.

Global-history predictors (TAGE, GEHL, gshare, the statistical corrector)
consume three kinds of history state, all modelled here:

* :class:`GlobalHistory` -- the global branch outcome history, a shift
  register of the most recent conditional branch outcomes.
* :class:`PathHistory` -- the global path history, a shift register of low
  PC bits of recent branches (taken or not), used by TAGE index hashing.
* :class:`FoldedHistory` -- an incrementally maintained XOR-fold of the most
  recent ``length`` global history bits down to ``width`` bits, mirroring
  the circular-shift-register trick used by hardware TAGE/GEHL
  implementations so that arbitrarily long histories cost O(1) per branch.
* :class:`LocalHistoryTable` -- per-branch (per-PC-hash) outcome histories,
  used by local-history predictor components and by the wormhole predictor.
"""

from __future__ import annotations

from typing import List

from repro.common.bits import hash_pc, mask

__all__ = ["GlobalHistory", "PathHistory", "FoldedHistory", "LocalHistoryTable"]


class GlobalHistory:
    """Global conditional-branch outcome history.

    The history is stored as an integer whose bit 0 is the most recent
    outcome.  Only the ``capacity`` most recent outcomes are retained.
    """

    __slots__ = ("capacity", "bits", "length", "capacity_mask")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"history capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.capacity_mask = mask(capacity)
        self.bits = 0
        self.length = 0

    def push(self, taken: bool) -> None:
        """Append the outcome of the most recent conditional branch."""
        self.bits = ((self.bits << 1) | int(taken)) & self.capacity_mask
        if self.length < self.capacity:
            self.length += 1

    def value(self, length: int) -> int:
        """Return the most recent ``length`` outcomes as an integer."""
        if length < 0:
            raise ValueError(f"history length must be non-negative, got {length}")
        length = min(length, self.capacity)
        return self.bits & mask(length)

    def bit(self, age: int) -> int:
        """Return the outcome ``age`` branches ago (0 = most recent)."""
        if age < 0:
            raise ValueError(f"history age must be non-negative, got {age}")
        return (self.bits >> age) & 1

    def snapshot(self) -> int:
        """Return the raw history register for checkpointing."""
        return self.bits

    def restore(self, snapshot: int) -> None:
        """Restore a history register previously returned by :meth:`snapshot`."""
        self.bits = snapshot & mask(self.capacity)

    def reset(self) -> None:
        """Clear the history."""
        self.bits = 0
        self.length = 0


class PathHistory:
    """Global path history: a shift register of low PC bits of past branches."""

    __slots__ = ("capacity", "bits_per_branch", "bits", "capacity_mask", "branch_mask")

    def __init__(self, capacity: int, bits_per_branch: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"path history capacity must be positive, got {capacity}")
        if bits_per_branch <= 0:
            raise ValueError(
                f"bits per branch must be positive, got {bits_per_branch}"
            )
        self.capacity = capacity
        self.bits_per_branch = bits_per_branch
        self.capacity_mask = mask(capacity)
        self.branch_mask = mask(bits_per_branch)
        self.bits = 0

    def push(self, pc: int) -> None:
        """Append the low bits of the PC of the most recent branch."""
        low = pc & self.branch_mask
        self.bits = ((self.bits << self.bits_per_branch) | low) & self.capacity_mask

    def value(self, length: int) -> int:
        """Return the most recent ``length`` path bits as an integer."""
        if length < 0:
            raise ValueError(f"path length must be non-negative, got {length}")
        length = min(length, self.capacity)
        return self.bits & mask(length)

    def snapshot(self) -> int:
        """Return the raw path register for checkpointing."""
        return self.bits

    def restore(self, snapshot: int) -> None:
        """Restore a path register previously returned by :meth:`snapshot`."""
        self.bits = snapshot & mask(self.capacity)

    def reset(self) -> None:
        """Clear the path history."""
        self.bits = 0


class FoldedHistory:
    """Incrementally folded global history.

    Maintains ``fold == fold_bits(history[:length], length, width)`` while
    requiring only O(1) work per new outcome, exactly like the circular
    folded registers used in hardware TAGE and GEHL index functions.  The
    instance must be fed every global-history update *and* the bit that
    falls off the end of the window (which requires access to the backing
    :class:`GlobalHistory`).
    """

    __slots__ = ("length", "width", "fold", "width_mask", "_out_position")

    def __init__(self, length: int, width: int) -> None:
        if length < 0:
            raise ValueError(f"folded history length must be non-negative, got {length}")
        if width <= 0:
            raise ValueError(f"folded history width must be positive, got {width}")
        self.length = length
        self.width = width
        self.width_mask = mask(width)
        self.fold = 0
        # Bit position inside the fold where the oldest history bit lands.
        self._out_position = length % width if length else 0

    def update(self, new_bit: int, dropped_bit: int) -> None:
        """Shift in ``new_bit`` and retire ``dropped_bit`` from the window.

        ``dropped_bit`` is the global history bit that is ``length`` branches
        old *before* this update (it leaves the window as the new bit
        enters).  For ``length == 0`` the fold is always zero.
        """
        if self.length == 0:
            return
        fold = self.fold
        fold = (fold << 1) | (new_bit & 1)
        fold ^= (dropped_bit & 1) << self._out_position
        fold ^= fold >> self.width
        self.fold = fold & self.width_mask

    def value(self) -> int:
        """Current folded value (``width`` bits)."""
        return self.fold

    def snapshot(self) -> int:
        """Return the fold register for checkpointing."""
        return self.fold

    def restore(self, snapshot: int) -> None:
        """Restore a fold previously returned by :meth:`snapshot`."""
        self.fold = snapshot & mask(self.width)

    def reset(self) -> None:
        """Clear the fold."""
        self.fold = 0


class LocalHistoryTable:
    """Per-branch local outcome histories.

    The table is indexed by a hash of the branch PC; each entry is a shift
    register of the most recent outcomes of (branches mapping to) that entry.
    This is the structure whose *speculative* management the paper argues is
    too expensive for real hardware (Section 2.3.2).
    """

    __slots__ = ("size", "history_bits", "_index_bits", "entries")

    def __init__(self, size: int, history_bits: int) -> None:
        if size <= 0:
            raise ValueError(f"table size must be positive, got {size}")
        if history_bits <= 0:
            raise ValueError(f"history width must be positive, got {history_bits}")
        if size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        self.size = size
        self.history_bits = history_bits
        self._index_bits = size.bit_length() - 1
        self.entries: List[int] = [0] * size

    def index(self, pc: int) -> int:
        """Table index for a branch PC."""
        return hash_pc(pc, self._index_bits)

    def read(self, pc: int) -> int:
        """Return the local history register associated with ``pc``."""
        return self.entries[self.index(pc)]

    def update(self, pc: int, taken: bool) -> None:
        """Shift the outcome of ``pc`` into its local history."""
        idx = self.index(pc)
        self.entries[idx] = ((self.entries[idx] << 1) | int(taken)) & mask(
            self.history_bits
        )

    def reset(self) -> None:
        """Clear every local history."""
        self.entries = [0] * self.size

    def storage_bits(self) -> int:
        """Total number of storage bits this table models."""
        return self.size * self.history_bits
