"""Shared low-level building blocks for branch predictors.

This package provides the small hardware-like primitives that every
predictor in :mod:`repro.predictors` and :mod:`repro.core` is built from:

* :mod:`repro.common.counters` -- saturating up/down counters (signed and
  unsigned) and packed counter arrays.
* :mod:`repro.common.bits` -- bit manipulation helpers: masking, folding,
  hashing of program counters and histories.
* :mod:`repro.common.history` -- global branch/path history registers,
  incrementally folded histories (as used by TAGE/GEHL index functions) and
  local history tables.
"""

from repro.common.bits import (
    fold_bits,
    hash_pc,
    mask,
    mix_hash,
    rotate_left,
)
from repro.common.counters import (
    SaturatingCounter,
    SignedCounterArray,
    SignedSaturatingCounter,
    UnsignedCounterArray,
)
from repro.common.history import (
    FoldedHistory,
    GlobalHistory,
    LocalHistoryTable,
    PathHistory,
)

__all__ = [
    "FoldedHistory",
    "GlobalHistory",
    "LocalHistoryTable",
    "PathHistory",
    "SaturatingCounter",
    "SignedCounterArray",
    "SignedSaturatingCounter",
    "UnsignedCounterArray",
    "fold_bits",
    "hash_pc",
    "mask",
    "mix_hash",
    "rotate_left",
]
