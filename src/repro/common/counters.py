"""Saturating counters and counter arrays.

Branch predictors store their state almost exclusively in small saturating
counters.  Two flavours are used throughout the literature and in this
library:

* *Unsigned* counters in ``[0, 2**bits - 1]`` whose most significant bit is
  the prediction (bimodal tables, TAGE prediction counters, loop-predictor
  confidence counters).
* *Signed* counters in ``[-2**(bits-1), 2**(bits-1) - 1]`` whose sign is the
  prediction and whose magnitude is the confidence (perceptron weights,
  GEHL / statistical-corrector tables, IMLI-SIC and IMLI-OH tables).

The array classes store plain Python integers in a list; this is the fastest
portable representation for the per-branch work a trace-driven simulator
performs (NumPy element-wise access is slower for scalar updates).
"""

from __future__ import annotations

from typing import Iterator, List

__all__ = [
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "UnsignedCounterArray",
    "SignedCounterArray",
]


class SaturatingCounter:
    """An unsigned saturating counter.

    The counter saturates at ``0`` and ``2**bits - 1``.  The prediction it
    encodes is the most significant bit (``value >= midpoint``).
    """

    __slots__ = ("bits", "maximum", "value")

    def __init__(self, bits: int, initial: int | None = None) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        midpoint = 1 << (bits - 1)
        value = midpoint if initial is None else initial
        if not 0 <= value <= self.maximum:
            raise ValueError(f"initial value {value} outside [0, {self.maximum}]")
        self.value = value

    @property
    def midpoint(self) -> int:
        """The weakly-taken threshold (``2**(bits-1)``)."""
        return 1 << (self.bits - 1)

    def predict(self) -> bool:
        """Return the taken/not-taken prediction encoded by the counter."""
        return self.value >= self.midpoint

    def is_saturated(self) -> bool:
        """Return ``True`` when the counter is at either rail."""
        return self.value == 0 or self.value == self.maximum

    def update(self, taken: bool) -> None:
        """Move the counter one step toward the observed outcome."""
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def reset(self, value: int | None = None) -> None:
        """Reset the counter to ``value`` (default: weakly not-taken midpoint)."""
        self.value = self.midpoint if value is None else value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class SignedSaturatingCounter:
    """A signed saturating counter in ``[-2**(bits-1), 2**(bits-1) - 1]``."""

    __slots__ = ("bits", "minimum", "maximum", "value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.minimum = -(1 << (bits - 1))
        self.maximum = (1 << (bits - 1)) - 1
        if not self.minimum <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} outside [{self.minimum}, {self.maximum}]"
            )
        self.value = initial

    def predict(self) -> bool:
        """Return ``True`` (taken) when the counter is non-negative."""
        return self.value >= 0

    def is_saturated(self) -> bool:
        """Return ``True`` when the counter is at either rail."""
        return self.value == self.minimum or self.value == self.maximum

    def update(self, taken: bool) -> None:
        """Move the counter one step toward the observed outcome."""
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > self.minimum:
            self.value -= 1

    def reset(self, value: int = 0) -> None:
        """Reset the counter to ``value``."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignedSaturatingCounter(bits={self.bits}, value={self.value})"


class UnsignedCounterArray:
    """A fixed-size array of unsigned saturating counters.

    The counters are stored as plain integers; update logic is inlined here
    rather than delegating to :class:`SaturatingCounter` to keep the hot
    per-branch path fast.
    """

    __slots__ = ("bits", "maximum", "midpoint", "values")

    def __init__(self, size: int, bits: int, initial: int | None = None) -> None:
        if size <= 0:
            raise ValueError(f"array size must be positive, got {size}")
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        self.midpoint = 1 << (bits - 1)
        fill = self.midpoint if initial is None else initial
        if not 0 <= fill <= self.maximum:
            raise ValueError(f"initial value {fill} outside [0, {self.maximum}]")
        self.values: List[int] = [fill] * size

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def predict(self, index: int) -> bool:
        """Prediction stored at ``index`` (most significant bit)."""
        return self.values[index] >= self.midpoint

    def confidence(self, index: int) -> int:
        """Distance of the counter from the decision threshold."""
        value = self.values[index]
        if value >= self.midpoint:
            return value - self.midpoint
        return self.midpoint - 1 - value

    def update(self, index: int, taken: bool) -> None:
        """Move the counter at ``index`` one step toward ``taken``."""
        value = self.values[index]
        if taken:
            if value < self.maximum:
                self.values[index] = value + 1
        elif value > 0:
            self.values[index] = value - 1

    def set(self, index: int, value: int) -> None:
        """Directly set the counter at ``index`` (clamped to the legal range)."""
        self.values[index] = min(max(value, 0), self.maximum)

    def reset(self, value: int | None = None) -> None:
        """Reset every counter to ``value`` (default: midpoint)."""
        fill = self.midpoint if value is None else value
        self.values = [fill] * len(self.values)

    def storage_bits(self) -> int:
        """Total number of storage bits this array models."""
        return len(self.values) * self.bits


class SignedCounterArray:
    """A fixed-size array of signed saturating counters."""

    __slots__ = ("bits", "minimum", "maximum", "values")

    def __init__(self, size: int, bits: int, initial: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"array size must be positive, got {size}")
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.minimum = -(1 << (bits - 1))
        self.maximum = (1 << (bits - 1)) - 1
        if not self.minimum <= initial <= self.maximum:
            raise ValueError(
                f"initial value {initial} outside [{self.minimum}, {self.maximum}]"
            )
        self.values: List[int] = [initial] * size

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def predict(self, index: int) -> bool:
        """Prediction stored at ``index`` (sign bit)."""
        return self.values[index] >= 0

    def update(self, index: int, taken: bool) -> None:
        """Move the counter at ``index`` one step toward ``taken``."""
        value = self.values[index]
        if taken:
            if value < self.maximum:
                self.values[index] = value + 1
        elif value > self.minimum:
            self.values[index] = value - 1

    def set(self, index: int, value: int) -> None:
        """Directly set the counter at ``index`` (clamped to the legal range)."""
        self.values[index] = min(max(value, self.minimum), self.maximum)

    def reset(self, value: int = 0) -> None:
        """Reset every counter to ``value``."""
        self.values = [value] * len(self.values)

    def storage_bits(self) -> int:
        """Total number of storage bits this array models."""
        return len(self.values) * self.bits
