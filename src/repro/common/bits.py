"""Bit-manipulation helpers used by predictor index and tag functions.

Branch predictors are built from tables indexed by hashes of the branch
program counter (PC) and various history registers.  Hardware implements
these hashes with simple XOR/shift networks; we mirror that style here so
the Python model stays close to what a real design would compute.

All helpers operate on non-negative Python integers and return values that
fit in the requested number of bits.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "rotate_left",
    "fold_bits",
    "hash_pc",
    "mix_hash",
    "mix_hash1",
    "mix_hash2",
    "mix_hash3",
    "mix_hash4",
    "mix_pc_round",
    "mix_tail2",
    "bit_at",
    "is_power_of_two",
    "log2_exact",
]


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones (``mask(3) == 0b111``).

    Parameters
    ----------
    width:
        Number of low-order bits to keep.  Must be non-negative.
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` within a ``width``-bit register."""
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def fold_bits(value: int, input_width: int, output_width: int) -> int:
    """Fold ``input_width`` bits of ``value`` down to ``output_width`` bits.

    The fold is the XOR of consecutive ``output_width``-wide slices, the
    classic way long branch histories are compressed into a table index.
    With ``output_width == 0`` the result is ``0`` (an empty fold).
    """
    if output_width < 0:
        raise ValueError(f"output width must be non-negative, got {output_width}")
    if output_width == 0 or input_width <= 0:
        return 0
    value &= mask(input_width)
    folded = 0
    while value:
        folded ^= value & mask(output_width)
        value >>= output_width
    return folded


def hash_pc(pc: int, width: int) -> int:
    """Hash a program counter down to ``width`` bits.

    The PC is XOR-folded with two shifted copies of itself, which spreads
    nearby instruction addresses across the table while remaining cheap.
    """
    if width <= 0:
        raise ValueError(f"hash width must be positive, got {width}")
    value = pc ^ (pc >> width) ^ (pc >> (2 * width))
    return value & mask(width)


#: Constants of the splitmix64-style rounds used by :func:`mix_hash`.  The
#: fixed-arity fast variants (``mix_hash2`` ...) and hand-inlined copies in
#: per-branch hot paths (see ``docs/PERFORMANCE.md``) must produce exactly
#: the same values as the generic function, so the constants are shared.
MASK64 = 0xFFFFFFFFFFFFFFFF
MIX_ROUND_KEY = 0x9E3779B97F4A7C15
MIX_ROUND_MULTIPLIER = 0xBF58476D1CE4E5B9
MIX_FINAL_MULTIPLIER = 0x94D049BB133111EB


def mix_hash(*values: int, width: int) -> int:
    """Combine several integer fields into one ``width``-bit index.

    The fields are absorbed into a 64-bit accumulator with a splitmix64-style
    multiply/xor-shift round per field and a final avalanche step, so that
    fields with few distinct values (for example a small loop-iteration
    counter) still influence all index bits.
    """
    if width <= 0:
        raise ValueError(f"hash width must be positive, got {width}")
    acc = MIX_ROUND_KEY
    for position, value in enumerate(values):
        acc ^= (value + MIX_ROUND_KEY + position) & MASK64
        acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
        acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    acc ^= acc >> 31
    return acc & mask(width)


def mix_hash1(a: int) -> int:
    """``mix_hash(a, width=64)`` without validation or looping (hot path)."""
    acc = MIX_ROUND_KEY ^ ((a + MIX_ROUND_KEY) & MASK64)
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    return acc ^ (acc >> 31)


def mix_hash2(a: int, b: int) -> int:
    """``mix_hash(a, b, width=64)`` without validation or looping (hot path)."""
    acc = MIX_ROUND_KEY ^ ((a + MIX_ROUND_KEY) & MASK64)
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (b + MIX_ROUND_KEY + 1) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    return acc ^ (acc >> 31)


def mix_hash3(a: int, b: int, c: int) -> int:
    """``mix_hash(a, b, c, width=64)`` without validation or looping (hot path)."""
    acc = MIX_ROUND_KEY ^ ((a + MIX_ROUND_KEY) & MASK64)
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (b + MIX_ROUND_KEY + 1) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (c + MIX_ROUND_KEY + 2) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    return acc ^ (acc >> 31)


def mix_pc_round(a: int) -> int:
    """First absorb round of :func:`mix_hash` (shared-prefix optimisation).

    Several hash sites mix the same branch PC as their first field with
    different per-table suffixes; the first round only depends on that PC,
    so it can be computed once and shared (see ``mix_tail2``).
    """
    acc = MIX_ROUND_KEY ^ ((a + MIX_ROUND_KEY) & MASK64)
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    return acc ^ (acc >> 27)


def mix_tail2(acc: int, b: int, c: int) -> int:
    """Absorb two more fields after :func:`mix_pc_round` and finalise.

    ``mix_tail2(mix_pc_round(a), b, c) == mix_hash3(a, b, c)``.
    """
    acc ^= (b + MIX_ROUND_KEY + 1) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (c + MIX_ROUND_KEY + 2) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    return acc ^ (acc >> 31)


def mix_hash4(a: int, b: int, c: int, d: int) -> int:
    """``mix_hash(a, b, c, d, width=64)`` without validation or looping (hot path)."""
    acc = MIX_ROUND_KEY ^ ((a + MIX_ROUND_KEY) & MASK64)
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (b + MIX_ROUND_KEY + 1) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (c + MIX_ROUND_KEY + 2) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc ^= (d + MIX_ROUND_KEY + 3) & MASK64
    acc = (acc * MIX_ROUND_MULTIPLIER) & MASK64
    acc ^= acc >> 27
    acc = (acc * MIX_FINAL_MULTIPLIER) & MASK64
    return acc ^ (acc >> 31)


def bit_at(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` (0 or 1)."""
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
