"""Free-disk headroom guard for every write path in the service.

Long sweeps write continuously -- result records, the coordinator
journal, worker trace spools, telemetry artifacts -- and a full disk
turns each of those into a different flavour of undefined behaviour
mid-run.  This module centralises one question ("how close to full is
the disk under this path?") so each write path can degrade
deliberately instead of failing arbitrarily:

* **ok** -- plenty of headroom; write normally.
* **low** -- below the low-water mark; best-effort artifacts should
  shed and the dist worker advertises ``low_disk`` so the coordinator
  stops routing spool-hungry (chunked-trace) work to it.
* **critical** -- below the critical mark; durable writes (store
  records, journal appends) refuse up front with one actionable
  :class:`DiskPressureError` instead of leaving a half-written file,
  and the coordinator sheds new job admissions.

Probes go through :func:`shutil.disk_usage` on the nearest existing
ancestor of the queried path and are cached for a short TTL per
anchor, so guarding a hot write loop costs a dict lookup, not a
``statvfs`` per record.

Thresholds default to :data:`DEFAULT_LOW_BYTES` /
:data:`DEFAULT_CRITICAL_BYTES` and can be overridden (or disabled)
with the ``REPRO_DISK_HEADROOM`` environment variable::

    REPRO_DISK_HEADROOM=2g          # low = 2 GiB, critical = low / 8
    REPRO_DISK_HEADROOM=1g,128m     # low = 1 GiB, critical = 128 MiB
    REPRO_DISK_HEADROOM=off         # disable all checks

Sizes accept ``k`` / ``m`` / ``g`` / ``t`` binary suffixes or plain
byte counts.  Tests force the ``low`` / ``critical`` states
deterministically by setting thresholds far above any real disk
(e.g. ``REPRO_DISK_HEADROOM=1t,1t``).
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "DEFAULT_CRITICAL_BYTES",
    "DEFAULT_LOW_BYTES",
    "DiskPressureError",
    "check_writable",
    "free_bytes",
    "is_critical",
    "is_low",
    "parse_size",
    "reset",
    "state",
    "thresholds",
]

#: Environment variable overriding the thresholds (see module docstring).
ENV_VAR = "REPRO_DISK_HEADROOM"

#: Default low-water mark: best-effort writes shed below this headroom.
DEFAULT_LOW_BYTES = 512 * 1024 * 1024

#: Default critical mark: durable writes refuse below this headroom.
DEFAULT_CRITICAL_BYTES = 64 * 1024 * 1024

#: Seconds a probed state stays cached per anchor directory.
CACHE_TTL = 2.0

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}

_lock = threading.Lock()
# anchor path -> (expires_monotonic, state, free_bytes)
_cache: Dict[str, Tuple[float, str, Optional[int]]] = {}


class DiskPressureError(OSError):
    """A write was refused because disk headroom is critically low.

    Subclasses :class:`OSError` so existing best-effort ``except
    OSError`` write paths degrade the same way they would on a real
    ``ENOSPC``; paths that surface it show one actionable message
    instead of a half-written file.
    """

    def __init__(self, path: Union[str, Path], free: Optional[int], threshold: int,
                 what: str = "write") -> None:
        self.path = str(path)
        self.free = free
        self.threshold = threshold
        free_text = "unknown free space" if free is None else f"{_human(free)} free"
        super().__init__(
            f"refusing {what} under {self.path}: {free_text} is below the "
            f"critical disk headroom of {_human(threshold)}; free disk space "
            f"or lower/disable the threshold via {ENV_VAR}"
        )


def parse_size(text: str) -> int:
    """Parse ``"512m"`` / ``"2g"`` / ``"1048576"`` into bytes."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty size")
    factor = 1
    if text[-1] in _SUFFIXES:
        factor = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"malformed size {text!r}") from None
    if value < 0:
        raise ValueError(f"size must be non-negative, got {value!r}")
    return int(value * factor)


def thresholds() -> Optional[Tuple[int, int]]:
    """The ``(low, critical)`` byte thresholds, or ``None`` when disabled.

    Honours ``REPRO_DISK_HEADROOM``: ``off``/``0``/``false`` disables
    every check, ``LOW`` or ``LOW,CRITICAL`` overrides the defaults
    (a single value derives critical as ``low // 8``, floored at the
    default critical mark).  A malformed override disables the guard
    rather than failing the run that tripped it.
    """
    raw = os.environ.get(ENV_VAR)
    if raw is None or not raw.strip():
        return (DEFAULT_LOW_BYTES, DEFAULT_CRITICAL_BYTES)
    raw = raw.strip()
    if raw.lower() in ("0", "off", "false"):
        return None
    parts = [part for part in raw.split(",") if part.strip()]
    try:
        low = parse_size(parts[0])
        if len(parts) > 1:
            critical = parse_size(parts[1])
        else:
            critical = max(low // 8, min(low, DEFAULT_CRITICAL_BYTES))
    except (ValueError, IndexError):
        return None
    return (low, min(critical, low))


def free_bytes(path: Union[str, Path]) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (``None`` if unknown).

    Walks up to the nearest existing ancestor so paths that have not
    been created yet (a store root before its first write) still probe
    the right filesystem.
    """
    anchor = _anchor(path)
    try:
        return shutil.disk_usage(anchor).free
    except OSError:
        return None


def state(path: Union[str, Path]) -> str:
    """``"ok"`` / ``"low"`` / ``"critical"`` for the disk under ``path``.

    Cached for :data:`CACHE_TTL` seconds per anchor directory.
    """
    limits = thresholds()
    if limits is None:
        return "ok"
    anchor = _anchor(path)
    now = time.monotonic()
    with _lock:
        cached = _cache.get(anchor)
        if cached is not None and cached[0] > now:
            return cached[1]
    free = free_bytes(anchor)
    low, critical = limits
    if free is None:
        status = "ok"  # an unprobeable disk must not wedge every write
    elif free < critical:
        status = "critical"
    elif free < low:
        status = "low"
    else:
        status = "ok"
    with _lock:
        _cache[anchor] = (now + CACHE_TTL, status, free)
    return status


def is_low(path: Union[str, Path]) -> bool:
    """Whether the disk under ``path`` is at least low on headroom."""
    return state(path) in ("low", "critical")


def is_critical(path: Union[str, Path]) -> bool:
    """Whether the disk under ``path`` is critically low on headroom."""
    return state(path) == "critical"


def check_writable(path: Union[str, Path], what: str = "write") -> None:
    """Raise :class:`DiskPressureError` when the disk under ``path`` is
    critical; a no-op otherwise.

    Durable write paths (store records, journal appends) call this
    first so disk exhaustion surfaces as one clear refusal instead of
    a torn file.
    """
    if state(path) != "critical":
        return
    limits = thresholds()
    critical = limits[1] if limits else DEFAULT_CRITICAL_BYTES
    raise DiskPressureError(path, free_bytes(path), critical, what=what)


def reset() -> None:
    """Drop every cached probe (tests; after changing the environment)."""
    with _lock:
        _cache.clear()


def _anchor(path: Union[str, Path]) -> str:
    """The nearest existing ancestor of ``path`` (as a string cache key)."""
    current = Path(path)
    try:
        current = Path(os.path.abspath(current))
    except OSError:  # pragma: no cover - abspath on broken cwd
        pass
    for candidate in (current, *current.parents):
        if candidate.exists():
            return str(candidate)
    return str(current)


def _human(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0:
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"
