"""Distributed sweep execution: coordinator + workers over store cells.

The single-machine ``--jobs`` pool scales a sweep to one host; this
package scales it to many.  The unit of work is unchanged -- one
content-addressed ``(spec, trace)`` store cell, exactly what
:class:`~repro.store.ResultStore` persists -- so distributed sweeps
resume, dedupe and verify exactly like local ones:

* :class:`~repro.dist.coordinator.Coordinator` (``repro serve``) expands
  a sweep into cells and serves them over a line-delimited JSON TCP
  protocol with leases, timeouts and requeue-on-worker-death.
* :class:`~repro.dist.worker.Worker` (``repro worker``) leases cells,
  simulates them through the existing fast engine (optionally over a
  local process pool), and uploads the results.
* :func:`~repro.dist.client.submit_sweep` (``repro submit``) ships a
  whole sweep to a running coordinator and streams progress; and
  :class:`~repro.dist.client.DistBackend` plugs the same path into
  :class:`~repro.api.experiment.Experiment`/:class:`~repro.sim.runner.SuiteRunner`
  as the ``dist`` execution backend.

Results are bit-identical to serial runs by construction: the same
engine simulates the same resolved spec on the same trace, and the
coordinator assembles results by (label, trace) slot, not arrival order.
See ``docs/DISTRIBUTED.md`` for the architecture and protocol reference.
"""

from repro.dist.client import DistBackend, submit_sweep
from repro.dist.coordinator import Coordinator, JobFailed, SweepJob
from repro.dist.journal import CoordinatorJournal
from repro.dist.protocol import PROTOCOL_VERSION, ProtocolError
from repro.dist.worker import CoordinatorUnreachable, Worker, run_worker

__all__ = [
    "Coordinator",
    "CoordinatorJournal",
    "CoordinatorUnreachable",
    "DistBackend",
    "JobFailed",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SweepJob",
    "Worker",
    "run_worker",
    "submit_sweep",
]
