"""The sweep worker: leases cells from a coordinator and simulates them.

A worker is a loop around one TCP connection: lease a cell, make sure the
cell's trace is cached locally (fetching it from the coordinator on first
use), build the predictor from the cell's self-contained spec payload,
simulate through the existing fast engine, and upload the result.  With
``jobs > 1`` the simulations fan out over a local
:class:`~concurrent.futures.ProcessPoolExecutor` while the connection
keeps leasing ahead, so one worker process saturates one machine exactly
like ``repro sweep --jobs``.

Workers are stateless and safely killable: anything leased but not yet
uploaded is requeued by the coordinator (on connection death immediately,
on lease expiry otherwise).  With a local ``--store`` the worker reuses
cells it already has and persists what it computes, so a shared store
directory turns uploads into pure bookkeeping.
"""

from __future__ import annotations

import os
import socket
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.dist import protocol
from repro.dist.protocol import ConnectionClosed, ProtocolError
from repro.sim.engine import SimulationResult
from repro.sim.runner import _simulate_spec
from repro.store import ResultStore, result_to_dict
from repro.trace.trace import Trace

__all__ = ["Worker", "run_worker"]


class Worker:
    """One connection's worth of lease-simulate-upload loop.

    Parameters
    ----------
    host / port:
        Coordinator address.
    jobs:
        Concurrent simulations; 1 (default) stays in-process, more fans
        out over a process pool.
    store:
        Optional local/shared :class:`ResultStore`: cells found there are
        uploaded without simulating, computed cells are persisted.
    name:
        Worker name in coordinator logs (default: ``host-pid``).
    connect_retry:
        Seconds to keep retrying the initial connect (covers the race of
        starting workers before the coordinator is listening).
    log:
        Optional ``(message: str)`` callable for lifecycle events.
    """

    def __init__(
        self,
        host: str,
        port: int,
        jobs: int = 1,
        store: Union[ResultStore, str, None, bool] = False,
        name: Optional[str] = None,
        connect_retry: float = 10.0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.store = ResultStore.resolve(store)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_retry = float(connect_retry)
        self.log = log or (lambda message: None)
        self.completed = 0
        self._traces: Dict[str, Trace] = {}

    # ----------------------------------------------------------------- #
    # Connection plumbing
    # ----------------------------------------------------------------- #

    def _connect(self):
        deadline = time.monotonic() + self.connect_retry
        delay = 0.05
        while True:
            try:
                return protocol.connect(self.host, self.port)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _request(self, rfile, wfile, frame: Dict[str, Any], *replies: str):
        protocol.write_frame(wfile, frame)
        return protocol.expect(protocol.read_frame(rfile), *replies)

    def _trace_for(self, rfile, wfile, item: Dict[str, Any]) -> Trace:
        fingerprint = item["trace"]
        trace = self._traces.get(fingerprint)
        if trace is None:
            reply = self._request(
                rfile, wfile,
                {"type": "fetch_trace", "fingerprint": fingerprint},
                "trace",
            )
            trace = protocol.decode_trace(reply.get("data", ""))
            if trace.fingerprint() != fingerprint:
                raise ProtocolError(
                    f"coordinator sent trace {trace.fingerprint()[:12]} "
                    f"for requested {fingerprint[:12]}"
                )
            self._traces[fingerprint] = trace
        return trace

    # ----------------------------------------------------------------- #
    # Cell execution
    # ----------------------------------------------------------------- #

    def _decode_item(self, item: Dict[str, Any]) -> Tuple[Dict[str, Any], Any, bool]:
        spec_dict = item.get("spec")
        profile_payload = item.get("profile")
        if not isinstance(spec_dict, dict) or not isinstance(profile_payload, dict):
            raise ProtocolError("malformed work item")
        sizes = protocol.profile_from_payload(profile_payload)
        return spec_dict, sizes, bool(item.get("track_per_pc"))

    def _stored(self, item: Dict[str, Any]) -> Optional[SimulationResult]:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return None
        return self.store.get(key)

    def _persist(self, item: Dict[str, Any], result: SimulationResult) -> None:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return
        try:
            self.store.put(
                key,
                result,
                label=item.get("label"),
                trace_fingerprint=item.get("trace"),
                spec=item.get("spec"),
            )
        except (OSError, TypeError, ValueError):
            pass  # an unwritable store must not fail the worker

    def _upload(self, rfile, wfile, item: Dict[str, Any], result: SimulationResult) -> None:
        self._persist(item, result)
        protocol.write_frame(
            wfile,
            {
                "type": "result",
                "cell": item["cell"],
                "result": result_to_dict(result),
            },
        )
        # Counted once the frame is on the wire: the coordinator may
        # accept the final result and shut down before the ack arrives.
        self.completed += 1
        protocol.expect(protocol.read_frame(rfile), "ack")

    #: Errors that are deterministic properties of the cell itself (an
    #: unknown configuration name, bad override types, invalid geometry):
    #: retrying on another worker cannot succeed, so they fail the job
    #: fast via a ``failure`` frame.  Anything else (a broken process
    #: pool, OOM, I/O trouble) is a property of *this worker* -- the
    #: worker dies instead, the coordinator requeues its leases, and the
    #: sweep completes elsewhere.
    _CELL_ERRORS = (KeyError, TypeError, ValueError, AttributeError)

    def _report_failure(self, rfile, wfile, item: Dict[str, Any], error: BaseException) -> None:
        if not isinstance(error, self._CELL_ERRORS):
            raise error
        self._request(
            rfile, wfile,
            {
                "type": "failure",
                "cell": item["cell"],
                "message": f"{type(error).__name__}: {error}",
            },
            "ack",
        )

    # ----------------------------------------------------------------- #
    # Main loop
    # ----------------------------------------------------------------- #

    def run(self) -> int:
        """Serve until the coordinator shuts down; returns cells completed."""
        sock = self._connect()
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        pool: Optional[ProcessPoolExecutor] = None
        try:
            welcome = self._request(
                rfile, wfile,
                {
                    "type": "hello",
                    "role": "worker",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "worker": self.name,
                },
                "welcome",
            )
            if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"coordinator speaks protocol {welcome.get('protocol')!r}, "
                    f"this worker speaks {protocol.PROTOCOL_VERSION}"
                )
            self.log(f"worker {self.name}: connected to {self.host}:{self.port}")
            if self.jobs > 1:
                pool = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                self._serve(rfile, wfile, pool)
            except ConnectionClosed:
                # The coordinator closing the connection (rather than
                # sending a shutdown frame) is the normal end of a
                # serve-one-sweep run; anything leased is requeued there.
                self.log(f"worker {self.name}: coordinator closed the connection")
            self.log(f"worker {self.name}: done ({self.completed} cell(s) simulated)")
            return self.completed
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            for stream in (wfile, rfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    def _serve(self, rfile, wfile, pool: Optional[ProcessPoolExecutor]) -> None:
        in_flight: Dict[Future, Dict[str, Any]] = {}
        draining = False
        capacity = self.jobs if pool is not None else 1
        while True:
            # Phase 1: lease until the pool is full or nothing is leasable.
            delay = 0.0
            while not draining and len(in_flight) < capacity:
                reply = self._request(
                    rfile, wfile, {"type": "lease"}, "work", "wait", "shutdown"
                )
                if reply["type"] == "shutdown":
                    draining = True
                    break
                if reply["type"] == "wait":
                    delay = float(reply.get("delay", 0.25))
                    break
                item = reply["item"]
                stored = self._stored(item)
                if stored is not None:
                    self._upload(rfile, wfile, item, stored)
                    continue
                trace = self._trace_for(rfile, wfile, item)
                spec_dict, sizes, track_per_pc = self._decode_item(item)
                if pool is None:
                    try:
                        result = _simulate_spec(spec_dict, sizes, trace, track_per_pc)
                    except Exception as error:
                        self._report_failure(rfile, wfile, item, error)
                        continue
                    self._upload(rfile, wfile, item, result)
                else:
                    future = pool.submit(
                        _simulate_spec, spec_dict, sizes, trace, track_per_pc
                    )
                    in_flight[future] = item
            # Phase 2: drain at least one finished simulation.
            if in_flight:
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    item = in_flight.pop(future)
                    error = future.exception()
                    if error is not None:
                        self._report_failure(rfile, wfile, item, error)
                    else:
                        self._upload(rfile, wfile, item, future.result())
            elif draining:
                return
            elif delay:
                time.sleep(delay)


def run_worker(
    connect: str,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None, bool] = False,
    name: Optional[str] = None,
    connect_retry: float = 10.0,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one worker against ``"host:port"`` until the coordinator closes.

    Returns the number of cells this worker completed (``repro worker``
    is a thin wrapper around this).
    """
    host, _, port_text = connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect needs HOST:PORT, got {connect!r}")
    worker = Worker(
        host,
        int(port_text),
        jobs=jobs,
        store=store,
        name=name,
        connect_retry=connect_retry,
        log=log,
    )
    return worker.run()
