"""The sweep worker: leases cells from a coordinator and simulates them.

A worker is a loop around one TCP connection: lease up to ``--batch``
cells sharing one trace, make sure that trace is cached locally (fetching
it from the coordinator on first use; the cache is a small LRU), build
one predictor per cell from its self-contained spec payload, simulate the
whole grant in one :func:`~repro.sim.engine.simulate_many` traversal, and
upload one result per cell.  With ``jobs > 1`` the batched simulations
fan out over a local :class:`~concurrent.futures.ProcessPoolExecutor`
while the connection keeps leasing ahead, so one worker process saturates
one machine exactly like ``repro sweep --jobs``.

Workers are stateless and safely killable: anything leased but not yet
uploaded is requeued by the coordinator (on connection death immediately,
on lease expiry otherwise).  With a local ``--store`` the worker reuses
cells it already has and persists what it computes, so a shared store
directory turns uploads into pure bookkeeping.
"""

from __future__ import annotations

import os
import socket
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.dist import protocol
from repro.dist.protocol import ConnectionClosed, ProtocolError
from repro.sim.engine import SimulationResult
from repro.sim.runner import (
    DEFAULT_BATCH_CELLS,
    BatchCellError,
    _simulate_spec_batch,
)
from repro.store import ResultStore, result_to_dict
from repro.trace.trace import Trace

__all__ = ["DEFAULT_TRACE_CACHE", "Worker", "run_worker"]

#: Default ceiling on decoded traces a worker keeps in memory.  A
#: long-lived worker serving many jobs would otherwise accumulate every
#: trace it has ever simulated; least-recently-used traces are evicted
#: beyond this bound and simply re-fetched if a later lease needs them.
DEFAULT_TRACE_CACHE = 8


class Worker:
    """One connection's worth of lease-simulate-upload loop.

    Parameters
    ----------
    host / port:
        Coordinator address.
    jobs:
        Concurrent simulations; 1 (default) stays in-process, more fans
        out over a process pool.
    store:
        Optional local/shared :class:`ResultStore`: cells found there are
        uploaded without simulating, computed cells are persisted.
    name:
        Worker name in coordinator logs (default: ``host-pid``).
    connect_retry:
        Seconds to keep retrying the initial connect (covers the race of
        starting workers before the coordinator is listening).
    batch:
        Cells requested per lease.  The coordinator grants up to this
        many cells sharing one trace, which the worker simulates in one
        :func:`~repro.sim.engine.simulate_many` traversal; ``1`` restores
        strict cell-at-a-time leasing.
    trace_cache:
        Decoded traces kept in memory (least-recently-used eviction
        beyond the bound; evicted traces are re-fetched on demand).
    log:
        Optional ``(message: str)`` callable for lifecycle events.
    """

    def __init__(
        self,
        host: str,
        port: int,
        jobs: int = 1,
        store: Union[ResultStore, str, None, bool] = False,
        name: Optional[str] = None,
        connect_retry: float = 10.0,
        batch: int = DEFAULT_BATCH_CELLS,
        trace_cache: int = DEFAULT_TRACE_CACHE,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        if trace_cache < 1:
            raise ValueError(f"trace_cache must be positive, got {trace_cache}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.store = ResultStore.resolve(store)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_retry = float(connect_retry)
        self.batch = int(batch)
        self.trace_cache = int(trace_cache)
        self.log = log or (lambda message: None)
        self.completed = 0
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()

    # ----------------------------------------------------------------- #
    # Connection plumbing
    # ----------------------------------------------------------------- #

    def _connect(self):
        deadline = time.monotonic() + self.connect_retry
        delay = 0.05
        while True:
            try:
                return protocol.connect(self.host, self.port)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _request(self, rfile, wfile, frame: Dict[str, Any], *replies: str):
        protocol.write_frame(wfile, frame)
        return protocol.expect(protocol.read_frame(rfile), *replies)

    def _trace_for(self, rfile, wfile, item: Dict[str, Any]) -> Trace:
        fingerprint = item["trace"]
        trace = self._traces.get(fingerprint)
        if trace is not None:
            self._traces.move_to_end(fingerprint)
            return trace
        reply = self._request(
            rfile, wfile,
            {"type": "fetch_trace", "fingerprint": fingerprint},
            "trace",
        )
        trace = protocol.decode_trace(reply.get("data", ""))
        if trace.fingerprint() != fingerprint:
            raise ProtocolError(
                f"coordinator sent trace {trace.fingerprint()[:12]} "
                f"for requested {fingerprint[:12]}"
            )
        self._traces[fingerprint] = trace
        while len(self._traces) > self.trace_cache:
            self._traces.popitem(last=False)  # evict least recently used
        return trace

    # ----------------------------------------------------------------- #
    # Cell execution
    # ----------------------------------------------------------------- #

    def _decode_item(self, item: Dict[str, Any]) -> Tuple[Dict[str, Any], Any, bool]:
        spec_dict = item.get("spec")
        profile_payload = item.get("profile")
        if not isinstance(spec_dict, dict) or not isinstance(profile_payload, dict):
            raise ProtocolError("malformed work item")
        sizes = protocol.profile_from_payload(profile_payload)
        return spec_dict, sizes, bool(item.get("track_per_pc"))

    def _stored(self, item: Dict[str, Any]) -> Optional[SimulationResult]:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return None
        return self.store.get(key)

    def _persist(self, item: Dict[str, Any], result: SimulationResult) -> None:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return
        try:
            self.store.put(
                key,
                result,
                label=item.get("label"),
                trace_fingerprint=item.get("trace"),
                spec=item.get("spec"),
            )
        except (OSError, TypeError, ValueError):
            pass  # an unwritable store must not fail the worker

    def _upload(self, rfile, wfile, item: Dict[str, Any], result: SimulationResult) -> None:
        self._persist(item, result)
        protocol.write_frame(
            wfile,
            {
                "type": "result",
                "cell": item["cell"],
                "result": result_to_dict(result),
            },
        )
        # Counted once the frame is on the wire: the coordinator may
        # accept the final result and shut down before the ack arrives.
        self.completed += 1
        protocol.expect(protocol.read_frame(rfile), "ack")

    #: Errors that are deterministic properties of the cell itself (an
    #: unknown configuration name, bad override types, invalid geometry):
    #: retrying on another worker cannot succeed, so they fail the job
    #: fast via a ``failure`` frame.  Anything else (a broken process
    #: pool, OOM, I/O trouble) is a property of *this worker* -- the
    #: worker dies instead, the coordinator requeues its leases, and the
    #: sweep completes elsewhere.
    _CELL_ERRORS = (KeyError, TypeError, ValueError, AttributeError)

    def _report_failure(self, rfile, wfile, item: Dict[str, Any], error: BaseException) -> None:
        if not isinstance(error, self._CELL_ERRORS):
            raise error
        self._request(
            rfile, wfile,
            {
                "type": "failure",
                "cell": item["cell"],
                "message": f"{type(error).__name__}: {error}",
            },
            "ack",
        )

    # ----------------------------------------------------------------- #
    # Main loop
    # ----------------------------------------------------------------- #

    def run(self) -> int:
        """Serve until the coordinator shuts down; returns cells completed."""
        sock = self._connect()
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        pool: Optional[ProcessPoolExecutor] = None
        try:
            welcome = self._request(
                rfile, wfile,
                {
                    "type": "hello",
                    "role": "worker",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "worker": self.name,
                },
                "welcome",
            )
            if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"coordinator speaks protocol {welcome.get('protocol')!r}, "
                    f"this worker speaks {protocol.PROTOCOL_VERSION}"
                )
            self.log(f"worker {self.name}: connected to {self.host}:{self.port}")
            if self.jobs > 1:
                pool = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                self._serve(rfile, wfile, pool)
            except ConnectionClosed:
                # The coordinator closing the connection (rather than
                # sending a shutdown frame) is the normal end of a
                # serve-one-sweep run; anything leased is requeued there.
                self.log(f"worker {self.name}: coordinator closed the connection")
            self.log(f"worker {self.name}: done ({self.completed} cell(s) simulated)")
            return self.completed
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            for stream in (wfile, rfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    #: One leased grant in flight on the pool: its items and everything
    #: needed to resubmit the survivors after a cell failure.
    _Grant = Tuple[List[Dict[str, Any]], List[tuple], Trace, bool]

    def _lease_frame(self) -> Dict[str, Any]:
        """The lease request; plain (batch-free) when batching is off.

        Omitting ``max_cells`` keeps a ``--batch 1`` worker byte-identical
        on the wire to a pre-batching one, so it interoperates with any
        coordinator.
        """
        if self.batch > 1:
            return {"type": "lease", "max_cells": self.batch}
        return {"type": "lease"}

    def _simulate_inline(
        self, rfile, wfile,
        items: List[Dict[str, Any]],
        entries: List[tuple],
        trace: Trace,
        track_per_pc: bool,
    ) -> None:
        """Simulate one grant in-process, pruning cells that fail."""
        items = list(items)
        entries = list(entries)
        while items:
            try:
                results = _simulate_spec_batch(entries, trace, track_per_pc)
            except BatchCellError as error:
                self._report_failure(
                    rfile, wfile, items[error.index], error.original
                )
                del items[error.index]
                del entries[error.index]
                continue
            for item, result in zip(items, results):
                self._upload(rfile, wfile, item, result)
            return

    def _process_grant(
        self, rfile, wfile,
        items: List[Dict[str, Any]],
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict[Future, "_Grant"],
    ) -> None:
        """Dispatch one lease grant: store hits upload immediately, the
        rest simulate as one batched traversal per (trace, per-PC) group
        (the coordinator grants with trace affinity; grouping here keeps
        the worker correct against any coordinator)."""
        todo: List[Dict[str, Any]] = []
        for item in items:
            stored = self._stored(item)
            if stored is not None:
                self._upload(rfile, wfile, item, stored)
            else:
                todo.append(item)
        groups: Dict[Tuple[str, bool], List[Dict[str, Any]]] = {}
        for item in todo:
            key = (str(item.get("trace")), bool(item.get("track_per_pc")))
            groups.setdefault(key, []).append(item)
        for (_, track_per_pc), group in groups.items():
            trace = self._trace_for(rfile, wfile, group[0])
            entries = []
            for item in group:
                spec_dict, sizes, _ = self._decode_item(item)
                entries.append((spec_dict, sizes))
            if pool is None:
                self._simulate_inline(
                    rfile, wfile, group, entries, trace, track_per_pc
                )
            else:
                future = pool.submit(
                    _simulate_spec_batch, entries, trace, track_per_pc
                )
                in_flight[future] = (group, entries, trace, track_per_pc)

    def _drain_one(
        self, rfile, wfile,
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict[Future, "_Grant"],
    ) -> None:
        """Wait for at least one pool grant and upload / retry / fail it."""
        done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
        for future in done:
            items, entries, trace, track_per_pc = in_flight.pop(future)
            error = future.exception()
            if error is None:
                for item, result in zip(items, future.result()):
                    self._upload(rfile, wfile, item, result)
            elif isinstance(error, BatchCellError):
                self._report_failure(
                    rfile, wfile, items[error.index], error.original
                )
                rest_items = [
                    item for i, item in enumerate(items) if i != error.index
                ]
                rest_entries = [
                    entry for i, entry in enumerate(entries) if i != error.index
                ]
                if rest_items:
                    retry = pool.submit(
                        _simulate_spec_batch, rest_entries, trace, track_per_pc
                    )
                    in_flight[retry] = (rest_items, rest_entries, trace, track_per_pc)
            else:
                # Not a property of any one cell (broken pool, OOM, ...):
                # worker-fatal, the coordinator requeues our leases.
                raise error

    def _serve(self, rfile, wfile, pool: Optional[ProcessPoolExecutor]) -> None:
        in_flight: Dict[Future, Worker._Grant] = {}
        draining = False
        capacity = self.jobs if pool is not None else 1
        while True:
            # Phase 1: lease until the pool is full or nothing is leasable.
            delay = 0.0
            while not draining and len(in_flight) < capacity:
                reply = self._request(
                    rfile, wfile, self._lease_frame(), "work", "wait", "shutdown"
                )
                if reply["type"] == "shutdown":
                    draining = True
                    break
                if reply["type"] == "wait":
                    delay = float(reply.get("delay", 0.25))
                    break
                items = reply.get("items")
                if items is None:  # single-cell grant (pre-batching shape)
                    items = [reply["item"]]
                if not isinstance(items, list) or not items:
                    raise ProtocolError("work frame without items")
                self._process_grant(rfile, wfile, items, pool, in_flight)
            # Phase 2: drain at least one finished simulation.
            if in_flight:
                self._drain_one(rfile, wfile, pool, in_flight)
            elif draining:
                return
            elif delay:
                time.sleep(delay)


def run_worker(
    connect: str,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None, bool] = False,
    name: Optional[str] = None,
    connect_retry: float = 10.0,
    batch: int = DEFAULT_BATCH_CELLS,
    trace_cache: int = DEFAULT_TRACE_CACHE,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one worker against ``"host:port"`` until the coordinator closes.

    Returns the number of cells this worker completed (``repro worker``
    is a thin wrapper around this).
    """
    host, _, port_text = connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect needs HOST:PORT, got {connect!r}")
    worker = Worker(
        host,
        int(port_text),
        jobs=jobs,
        store=store,
        name=name,
        connect_retry=connect_retry,
        batch=batch,
        trace_cache=trace_cache,
        log=log,
    )
    return worker.run()
