"""The sweep worker: leases cells from a coordinator and simulates them.

A worker is a loop around one TCP connection: lease up to ``--batch``
cells sharing one trace, make sure that trace is cached locally (fetching
it from the coordinator on first use; the cache is a small LRU -- chunked
traces arrive as a manifest and stream chunk files on demand into a
worker-local spool, keeping memory bounded by the chunk size), build
one predictor per cell from its self-contained spec payload, simulate the
whole grant in one :func:`~repro.sim.engine.simulate_many` traversal, and
upload one result per cell.  With ``jobs > 1`` the batched simulations
fan out over a local :class:`~concurrent.futures.ProcessPoolExecutor`
while the connection keeps leasing ahead, so one worker process saturates
one machine exactly like ``repro sweep --jobs``.

Three layers of fault tolerance sit on that loop:

* **Heartbeat lease renewal.**  When the coordinator's ``welcome``
  advertises it, a background thread sends ``renew`` frames for every
  held cell while the main thread simulates, so a slow cell never races
  its lease timeout into duplicate execution.  The socket is shared
  under a request/response lock -- exactly one exchange is in flight at
  a time, so the strict protocol ordering is preserved.
* **Reconnect with capped, jittered exponential backoff.**  An abrupt
  connection loss (coordinator restart, network blip, an injected
  fault) makes the worker reconnect for up to ``reconnect`` seconds and
  resume leasing instead of dying; anything it held is requeued by the
  coordinator and simply re-leased.  A *clean* ``shutdown`` frame still
  ends the worker immediately.
* **Graceful drain.**  :meth:`Worker.request_stop` (wired to SIGTERM by
  ``repro worker``) stops new leasing, finishes and uploads everything
  in flight, then returns -- no cell is stranded waiting for a lease
  timeout.

Workers remain stateless and safely killable: anything leased but not
yet uploaded is requeued by the coordinator (on connection death
immediately, on missing renewal at lease expiry otherwise).  With a
local ``--store`` the worker reuses cells it already has and persists
what it computes, so a shared store directory turns uploads into pure
bookkeeping.  The named fault points of :mod:`repro.dist.chaos` are
compiled into this module's lease/simulate/upload/spool path.

Disk hygiene: spool directories embed the owning pid
(``repro-worker-spool-<pid>-...``) and every worker sweeps orphans left
by hard-killed predecessors at startup (:func:`sweep_orphan_spools`).
When the spool disk runs low on headroom the worker advertises
``low_disk`` in its (additive, version-1) hello and renew frames so the
coordinator stops routing chunked-trace work to it until the spool
drains.
"""

from __future__ import annotations

import errno
import os
import random
import shutil
import socket
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.common import diskguard
from repro.dist import chaos, protocol
from repro.dist.protocol import ConnectionClosed, ProtocolError
from repro.obs import timing_log_for
from repro.sim.engine import SimulationResult
from repro.sim.runner import (
    DEFAULT_BATCH_CELLS,
    BatchCellError,
    _simulate_spec_batch,
)
from repro.store import ResultStore, result_to_dict
from repro.trace.chunked import ChunkedTrace, validate_manifest
from repro.trace.trace import Trace

__all__ = [
    "DEFAULT_TRACE_CACHE",
    "DEFAULT_RECONNECT",
    "DEFAULT_SPOOL_MAX_AGE",
    "CoordinatorUnreachable",
    "Worker",
    "run_worker",
    "sweep_orphan_spools",
]

#: Default ceiling on decoded traces a worker keeps in memory.  A
#: long-lived worker serving many jobs would otherwise accumulate every
#: trace it has ever simulated; least-recently-used traces are evicted
#: beyond this bound and simply re-fetched if a later lease needs them.
DEFAULT_TRACE_CACHE = 8

#: Default window (seconds) a worker keeps trying to reconnect after an
#: abrupt connection loss before concluding the coordinator is gone.
DEFAULT_RECONNECT = 30.0

#: Spool tempdir prefix; the owning pid follows it so a later worker can
#: tell a live neighbour's spool from a dead one's.
_SPOOL_PREFIX = "repro-worker-spool-"

#: Orphan sweep age fallback: spools whose owner pid cannot be read
#: (pre-pid naming) or still appears alive (pid reuse) are only removed
#: once they are this old.
DEFAULT_SPOOL_MAX_AGE = 24 * 3600.0


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # EPERM and friends: the pid exists
    return True


def sweep_orphan_spools(max_age_seconds: float = DEFAULT_SPOOL_MAX_AGE) -> int:
    """Remove spool tempdirs leaked by dead workers; returns the count.

    A worker killed hard (chaos ``worker.simulate.kill``, OOM, SIGKILL)
    never runs its spool cleanup, leaking a tempdir per kill.  Every
    worker sweeps at startup: a spool whose embedded pid no longer
    exists is removed immediately, and one whose pid cannot be parsed
    or still appears alive (pid reuse) is removed only past
    ``max_age_seconds``.
    """
    removed = 0
    try:
        candidates = sorted(Path(tempfile.gettempdir()).glob(f"{_SPOOL_PREFIX}*"))
    except OSError:
        return 0
    now = time.time()
    for path in candidates:
        try:
            if not path.is_dir():
                continue
        except OSError:
            continue
        pid_text = path.name[len(_SPOOL_PREFIX):].split("-", 1)[0]
        stale = False
        if pid_text.isdigit():
            pid = int(pid_text)
            if pid == os.getpid():
                continue  # our own spool (should not exist yet, but still)
            stale = not _pid_alive(pid)
        if not stale:
            try:
                stale = now - path.stat().st_mtime >= max_age_seconds
            except OSError:
                continue
        if stale:
            shutil.rmtree(path, ignore_errors=True)
            if not path.exists():
                removed += 1
    return removed


class CoordinatorUnreachable(ConnectionError):
    """No coordinator answered within the connect/reconnect window.

    Raised from the *initial* connect (``repro worker`` maps it to a
    distinct exit code); a mid-run reconnect that exhausts its window
    ends the worker cleanly instead, since the most likely cause is a
    serve-one-sweep coordinator that finished and exited.
    """


def _simulate_batch_with_chaos(entries, trace, track_per_pc: bool):
    """The worker's simulation step, with its chaos points compiled in.

    Top-level so it pickles to pool children, where the ``kill`` fault
    must fire inside the child to emulate a crashed simulation process.
    """
    chaos.kill_process("worker.simulate.kill")
    chaos.delay("worker.simulate.delay")
    return _simulate_spec_batch(entries, trace, track_per_pc)


class Worker:
    """One lease-simulate-upload loop with renewal, reconnect and drain.

    Parameters
    ----------
    host / port:
        Coordinator address.
    jobs:
        Concurrent simulations; 1 (default) stays in-process, more fans
        out over a process pool.
    store:
        Optional local/shared :class:`ResultStore`: cells found there are
        uploaded without simulating, computed cells are persisted.
    name:
        Worker name in coordinator logs (default: ``host-pid``).
    connect_retry:
        Seconds to keep retrying the initial connect (covers the race of
        starting workers before the coordinator is listening).
    reconnect:
        Seconds to keep retrying after an established connection is lost
        abruptly (coordinator restart, network trouble); ``0`` restores
        the old die-on-disconnect behaviour.  Backoff is exponential,
        capped and jittered so a restarted coordinator is not hit by a
        synchronized thundering herd of workers.
    batch:
        Cells requested per lease.  The coordinator grants up to this
        many cells sharing one trace, which the worker simulates in one
        :func:`~repro.sim.engine.simulate_many` traversal; ``1`` restores
        strict cell-at-a-time leasing.
    trace_cache:
        Decoded traces kept in memory (least-recently-used eviction
        beyond the bound; evicted traces are re-fetched on demand).
    log:
        Optional ``(message: str)`` callable for lifecycle events.
    """

    def __init__(
        self,
        host: str,
        port: int,
        jobs: int = 1,
        store: Union[ResultStore, str, None, bool] = False,
        name: Optional[str] = None,
        connect_retry: float = 10.0,
        reconnect: float = DEFAULT_RECONNECT,
        batch: int = DEFAULT_BATCH_CELLS,
        trace_cache: int = DEFAULT_TRACE_CACHE,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        if trace_cache < 1:
            raise ValueError(f"trace_cache must be positive, got {trace_cache}")
        if reconnect < 0:
            raise ValueError(f"reconnect must be non-negative, got {reconnect}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.store = ResultStore.resolve(store)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_retry = float(connect_retry)
        self.reconnect = float(reconnect)
        self.batch = int(batch)
        self.trace_cache = int(trace_cache)
        self.log = log or (lambda message: None)
        self.completed = 0
        #: Reconnect attempts that succeeded (visible to tests/operators).
        self.reconnects = 0
        # Worker-local timing artifact, anchored next to the local store
        # (without one there is nowhere durable to put it -- the
        # coordinator still records dist timings from our result frames).
        self.timings = timing_log_for(
            self.store.root if self.store is not None else None,
            component="worker",
        )
        # Seconds the most recent _trace_for spent fetching (0.0 on a
        # cache hit); only ever touched from the main serve loop.
        self._last_fetch_seconds = 0.0
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        # Chunked traces spool their fetched chunk files here (one subdir
        # per trace); created lazily, removed when the worker returns.
        self._spool: Optional[tempfile.TemporaryDirectory] = None
        # The live session's (rfile, wfile): chunk-fetch hooks go through
        # this indirection so a cached ChunkedTrace keeps working after a
        # reconnect replaces the streams.
        self._session_streams: Optional[Tuple[Any, Any]] = None
        # Exactly one request/response exchange may be in flight on the
        # shared socket: the main loop and the heartbeat thread both take
        # this around every (write frame, read reply) pair.
        self._io_lock = threading.Lock()
        # Cell ids currently leased to us and not yet settled -- what the
        # heartbeat renews.
        self._held: Set[int] = set()
        self._held_lock = threading.Lock()
        self._stop_requested = threading.Event()

    # ----------------------------------------------------------------- #
    # Connection plumbing
    # ----------------------------------------------------------------- #

    def request_stop(self) -> None:
        """Ask the worker to drain: finish and upload everything in
        flight, lease nothing new, then return from :meth:`run`.  Safe
        to call from any thread or a signal handler."""
        self._stop_requested.set()

    def _connect(self, window: float) -> socket.socket:
        """One connection within ``window`` seconds, with capped jittered
        exponential backoff between attempts."""
        deadline = time.monotonic() + window
        delay = 0.05
        while True:
            try:
                return protocol.connect(self.host, self.port)
            except OSError as error:
                if self._stop_requested.is_set() or time.monotonic() >= deadline:
                    raise CoordinatorUnreachable(
                        f"cannot reach coordinator at {self.host}:{self.port}"
                        f" within {window:.0f}s: {error}"
                    ) from None
                # Jitter spreads a worker fleet's retries out so a
                # restarted coordinator is not stampeded in lockstep.
                time.sleep(delay * (0.5 + random.random()))
                delay = min(delay * 2, 2.0)

    def _request(self, rfile, wfile, frame: Dict[str, Any], *replies: str):
        chaos.delay("worker.frame.delay")
        with self._io_lock:
            protocol.write_frame(wfile, frame)
            return protocol.expect(protocol.read_frame(rfile), *replies)

    def _fetch_chunk(self, fingerprint: str, index: int) -> bytes:
        """Chunk-fetch hook for a :class:`ChunkedTrace`: one
        ``fetch_trace_chunk`` exchange on the *current* session's streams
        (resolved per call, so the hook survives reconnects)."""
        streams = self._session_streams
        if streams is None:
            raise ProtocolError(
                f"no live coordinator session to fetch chunk {index} "
                f"of trace {fingerprint[:12]}"
            )
        rfile, wfile = streams
        reply = self._request(
            rfile, wfile,
            {"type": "fetch_trace_chunk", "fingerprint": fingerprint, "chunk": index},
            "trace_chunk",
        )
        if reply.get("fingerprint") != fingerprint or reply.get("chunk") != index:
            raise ProtocolError(
                f"coordinator sent chunk {reply.get('chunk')!r} of trace "
                f"{str(reply.get('fingerprint'))[:12]} for requested "
                f"chunk {index} of {fingerprint[:12]}"
            )
        return protocol.decode_chunk(reply.get("data", ""))

    def _chunked_trace(self, fingerprint: str, manifest: Any) -> ChunkedTrace:
        """Build a spooled, fetch-on-demand trace from a manifest reply."""
        if not isinstance(manifest, dict):
            raise ProtocolError("trace frame without data or manifest")
        try:
            manifest = validate_manifest(manifest, source="coordinator manifest")
        except ValueError as error:
            raise ProtocolError(str(error)) from None
        if manifest["fingerprint"] != fingerprint:
            raise ProtocolError(
                f"coordinator sent manifest {manifest['fingerprint'][:12]} "
                f"for requested {fingerprint[:12]}"
            )
        if self._spool is None:
            self._spool = tempfile.TemporaryDirectory(
                prefix=f"{_SPOOL_PREFIX}{os.getpid()}-"
            )
        spool_dir = Path(self._spool.name) / fingerprint[:16]
        spool_dir.mkdir(parents=True, exist_ok=True)
        return ChunkedTrace(
            spool_dir,
            manifest=manifest,
            fetch=lambda index: self._spool_fetch(fingerprint, index),
        )

    def _spool_fetch(self, fingerprint: str, index: int) -> bytes:
        """Chunk fetch with the spool's disk guard and chaos point compiled
        in.  Failing *before* the coordinator exchange keeps the spool
        free of partial chunk files; the error fails this lease cleanly
        (the coordinator requeues) instead of tearing the spool."""
        if chaos.active() and chaos.should("spool.enospc"):
            raise OSError(
                errno.ENOSPC, "chaos: injected ENOSPC on worker spool write"
            )
        if self._spool is not None:
            diskguard.check_writable(
                self._spool.name, what="worker trace-spool chunk write"
            )
        return self._fetch_chunk(fingerprint, index)

    def _low_disk(self) -> bool:
        """Whether the spool disk is low on headroom -- the state the
        additive ``low_disk`` hello/renew key advertises so the
        coordinator stops granting chunked-trace cells to us."""
        root = self._spool.name if self._spool is not None else tempfile.gettempdir()
        return diskguard.is_low(root)

    def _trace_for(self, rfile, wfile, item: Dict[str, Any]) -> Union[Trace, ChunkedTrace]:
        fingerprint = item["trace"]
        trace = self._traces.get(fingerprint)
        if trace is not None:
            self._traces.move_to_end(fingerprint)
            self._last_fetch_seconds = 0.0
            return trace
        fetch_started = time.monotonic()
        reply = self._request(
            rfile, wfile,
            {"type": "fetch_trace", "fingerprint": fingerprint},
            "trace",
        )
        if "data" in reply:
            trace = protocol.decode_trace(reply.get("data", ""))
            if trace.fingerprint() != fingerprint:
                raise ProtocolError(
                    f"coordinator sent trace {trace.fingerprint()[:12]} "
                    f"for requested {fingerprint[:12]}"
                )
        else:
            # Chunked trace: the reply carries only the manifest; chunk
            # files stream on demand into this worker's spool directory
            # and at most ``cache_chunks`` decoded chunks stay in memory.
            trace = self._chunked_trace(fingerprint, reply.get("manifest"))
        self._last_fetch_seconds = time.monotonic() - fetch_started
        self._traces[fingerprint] = trace
        while len(self._traces) > self.trace_cache:
            self._traces.popitem(last=False)  # evict least recently used
        return trace

    # ----------------------------------------------------------------- #
    # Lease bookkeeping (what the heartbeat renews)
    # ----------------------------------------------------------------- #

    def _hold(self, items: List[Dict[str, Any]]) -> None:
        with self._held_lock:
            for item in items:
                cell = item.get("cell")
                if isinstance(cell, int):
                    self._held.add(cell)

    def _settle(self, cell_id: Any) -> None:
        with self._held_lock:
            self._held.discard(cell_id)

    def _clear_held(self) -> None:
        with self._held_lock:
            self._held.clear()

    def _heartbeat_loop(
        self, rfile, wfile, interval: float, stop: threading.Event
    ) -> None:
        """Renew every held lease on a fixed cadence until the session ends.

        Runs while the main thread simulates (the socket is idle then, and
        the io lock arbitrates the rest).  Any wire trouble ends the
        thread quietly -- the main loop hits the same trouble on its next
        exchange and owns the recovery.
        """
        while not stop.wait(interval):
            with self._held_lock:
                held = sorted(self._held)
            if not held:
                continue
            try:
                reply = self._request(
                    rfile, wfile,
                    # low_disk is an additive version-1 key: it refreshes
                    # the coordinator's routing state every heartbeat and
                    # is ignored by pre-diskguard coordinators.
                    {
                        "type": "renew",
                        "cells": held,
                        "low_disk": self._low_disk(),
                    },
                    "renewed",
                )
            except (ProtocolError, OSError):
                return
            lost = reply.get("lost")
            if isinstance(lost, list) and lost:
                # Requeued under us (or completed by someone faster):
                # stop renewing them.  Any upload we still produce is
                # handled by first-upload-wins dedupe.
                with self._held_lock:
                    self._held.difference_update(lost)

    # ----------------------------------------------------------------- #
    # Cell execution
    # ----------------------------------------------------------------- #

    def _decode_item(self, item: Dict[str, Any]) -> Tuple[Dict[str, Any], Any, bool]:
        spec_dict = item.get("spec")
        profile_payload = item.get("profile")
        if not isinstance(spec_dict, dict) or not isinstance(profile_payload, dict):
            raise ProtocolError("malformed work item")
        sizes = protocol.profile_from_payload(profile_payload)
        return spec_dict, sizes, bool(item.get("track_per_pc"))

    def _stored(self, item: Dict[str, Any]) -> Optional[SimulationResult]:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return None
        return self.store.get(key)

    def _persist(self, item: Dict[str, Any], result: SimulationResult) -> None:
        key = item.get("store_key")
        if self.store is None or not isinstance(key, str):
            return
        try:
            self.store.put(
                key,
                result,
                label=item.get("label"),
                trace_fingerprint=item.get("trace"),
                spec=item.get("spec"),
            )
        except diskguard.DiskPressureError as error:
            if self.store.writes_shed == 1:
                self.log(f"store: shedding result persists ({error})")
        except (OSError, TypeError, ValueError):
            pass  # an unwritable store must not fail the worker

    def _upload(
        self,
        rfile,
        wfile,
        item: Dict[str, Any],
        result: SimulationResult,
        phases: Optional[Dict[str, float]] = None,
        batch: int = 1,
    ) -> None:
        self._persist(item, result)
        frame = {
            "type": "result",
            "cell": item["cell"],
            "result": result_to_dict(result),
        }
        if phases:
            # Additive version-1 keys (see the protocol docstring): the
            # coordinator folds these into its dist timing artifact; a
            # pre-instrumentation coordinator simply ignores them.
            frame["timings"] = phases
            frame["batch"] = int(batch)
        if chaos.active() and chaos.should("worker.upload.corrupt"):
            # Mangled bytes on the wire: one complete line that is not
            # valid JSON.  The coordinator must reject it, drop us, and
            # requeue -- never accept or wedge.
            with self._io_lock:
                wfile.write(b'{"type": "result", "corrupt": !!!garbage\n')
                wfile.flush()
                protocol.expect(protocol.read_frame(rfile), "ack")
        upload_started = time.monotonic()
        self._request(rfile, wfile, frame, "ack")
        # Counted once the exchange is done: the coordinator may accept
        # the final result and shut down right after.
        self.completed += 1
        self._settle(item["cell"])
        if self.timings is not None and phases:
            local = dict(phases)
            local["upload"] = time.monotonic() - upload_started
            self.timings.record(
                backend="dist",
                label=str(item.get("label", "?")),
                trace=str(item.get("trace_name", item.get("trace", "?"))),
                phases=local,
                batch=int(batch),
            )
        if chaos.active() and chaos.should("worker.upload.duplicate"):
            # A retransmitted result: the coordinator must acknowledge it
            # (accepted: false) without double-counting.
            self._request(rfile, wfile, frame, "ack")

    #: Errors that are deterministic properties of the cell itself (an
    #: unknown configuration name, bad override types, invalid geometry):
    #: retrying on another worker cannot succeed, so they fail the job
    #: fast via a ``failure`` frame.  Anything else (a broken process
    #: pool, OOM, I/O trouble) is a property of *this worker* -- the
    #: worker dies instead, the coordinator requeues its leases, and the
    #: sweep completes elsewhere.
    _CELL_ERRORS = (KeyError, TypeError, ValueError, AttributeError)

    def _report_failure(self, rfile, wfile, item: Dict[str, Any], error: BaseException) -> None:
        if not isinstance(error, self._CELL_ERRORS):
            raise error
        self._request(
            rfile, wfile,
            {
                "type": "failure",
                "cell": item["cell"],
                "message": f"{type(error).__name__}: {error}",
            },
            "ack",
        )
        self._settle(item["cell"])

    # ----------------------------------------------------------------- #
    # Main loop
    # ----------------------------------------------------------------- #

    def run(self) -> int:
        """Serve until the coordinator shuts down cleanly, the reconnect
        window closes, or :meth:`request_stop` drains us; returns cells
        completed."""
        swept = sweep_orphan_spools()
        if swept:
            self.log(
                f"worker {self.name}: removed {swept} orphaned spool dir(s)"
            )
        sock = self._connect(self.connect_retry)
        pool: Optional[ProcessPoolExecutor] = None
        if self.jobs > 1:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while True:
                clean = False
                trouble: Optional[BaseException] = None
                try:
                    clean = self._session(sock, pool)
                except (ConnectionClosed, ProtocolError, OSError) as error:
                    trouble = error
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
                self._clear_held()
                if clean or self._stop_requested.is_set():
                    break
                if self.reconnect <= 0:
                    if isinstance(trouble, ConnectionClosed):
                        # Pre-reconnect behaviour: a closed connection is
                        # the normal end of a serve-one-sweep run.
                        self.log(
                            f"worker {self.name}: coordinator closed the connection"
                        )
                        break
                    if trouble is not None:
                        raise trouble
                    break
                self.log(
                    f"worker {self.name}: connection lost"
                    f" ({trouble}); reconnecting for up to {self.reconnect:.0f}s"
                )
                try:
                    sock = self._connect(self.reconnect)
                except CoordinatorUnreachable:
                    # Most likely a finished serve-one-sweep coordinator:
                    # end cleanly rather than crash-looping the fleet.
                    self.log(
                        f"worker {self.name}: coordinator did not come back; exiting"
                    )
                    break
                self.reconnects += 1
                self.log(f"worker {self.name}: reconnected")
            self.log(f"worker {self.name}: done ({self.completed} cell(s) simulated)")
            return self.completed
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if self._spool is not None:
                self._spool.cleanup()
                self._spool = None
            if self.timings is not None:
                self.timings.write_summary()

    def _session(self, sock: socket.socket, pool: Optional[ProcessPoolExecutor]) -> bool:
        """One connection's worth of serving.  ``True`` means a clean end
        (shutdown frame, or a requested drain finished); an abrupt loss
        raises and the caller decides whether to reconnect."""
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        self._session_streams = (rfile, wfile)
        heartbeat: Optional[threading.Thread] = None
        heartbeat_stop = threading.Event()
        try:
            welcome = self._request(
                rfile, wfile,
                {
                    "type": "hello",
                    "role": "worker",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "worker": self.name,
                    "low_disk": self._low_disk(),
                },
                "welcome",
            )
            if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"coordinator speaks protocol {welcome.get('protocol')!r}, "
                    f"this worker speaks {protocol.PROTOCOL_VERSION}"
                )
            self.log(f"worker {self.name}: connected to {self.host}:{self.port}")
            if welcome.get("renew"):
                # Heartbeat well inside the lease timeout; a pre-renewal
                # coordinator never advertises, so none is started and
                # the wire stays byte-compatible with it.
                lease_timeout = float(welcome.get("lease_timeout") or 120.0)
                interval = max(0.05, min(lease_timeout / 3.0, 30.0))
                heartbeat = threading.Thread(
                    target=self._heartbeat_loop,
                    args=(rfile, wfile, interval, heartbeat_stop),
                    name=f"repro-worker-heartbeat-{self.name}",
                    daemon=True,
                )
                heartbeat.start()
            try:
                self._serve(rfile, wfile, pool)
                return True
            except ConnectionClosed:
                if self.reconnect <= 0:
                    return True  # legacy: closed connection == clean end
                raise
        finally:
            heartbeat_stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2)
            self._session_streams = None
            for stream in (wfile, rfile):
                try:
                    stream.close()
                except OSError:
                    pass

    #: One leased grant in flight on the pool: its items, everything
    #: needed to resubmit the survivors after a cell failure, and the
    #: timing meta (submit stamp + trace-fetch seconds) for the phase
    #: record attached to its uploads.
    _Grant = Tuple[List[Dict[str, Any]], List[tuple], Trace, bool, Dict[str, float]]

    def _lease_frame(self) -> Dict[str, Any]:
        """The lease request; plain (batch-free) when batching is off.

        Omitting ``max_cells`` keeps a ``--batch 1`` worker byte-identical
        on the wire to a pre-batching one, so it interoperates with any
        coordinator.
        """
        if self.batch > 1:
            return {"type": "lease", "max_cells": self.batch}
        return {"type": "lease"}

    def _simulate_inline(
        self, rfile, wfile,
        items: List[Dict[str, Any]],
        entries: List[tuple],
        trace: Trace,
        track_per_pc: bool,
    ) -> None:
        """Simulate one grant in-process, pruning cells that fail."""
        items = list(items)
        entries = list(entries)
        trace_load = self._last_fetch_seconds
        while items:
            simulate_started = time.monotonic()
            try:
                results = _simulate_batch_with_chaos(entries, trace, track_per_pc)
            except BatchCellError as error:
                self._report_failure(
                    rfile, wfile, items[error.index], error.original
                )
                del items[error.index]
                del entries[error.index]
                continue
            # Batched cells share one traversal, so they share the grant's
            # phase walls (see docs/OBSERVABILITY.md on interpreting batch).
            phases = {
                "trace_load": trace_load,
                "simulate": time.monotonic() - simulate_started,
            }
            for item, result in zip(items, results):
                self._upload(
                    rfile, wfile, item, result, phases=phases, batch=len(items)
                )
            return

    def _process_grant(
        self, rfile, wfile,
        items: List[Dict[str, Any]],
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict[Future, "_Grant"],
    ) -> None:
        """Dispatch one lease grant: store hits upload immediately, the
        rest simulate as one batched traversal per (trace, per-PC) group
        (the coordinator grants with trace affinity; grouping here keeps
        the worker correct against any coordinator)."""
        self._hold(items)
        if chaos.active() and chaos.should("worker.lease.drop"):
            # The connection dies right after the grant: every cell just
            # leased must be requeued by the coordinator and completed by
            # someone (possibly us, after reconnecting).
            raise OSError("chaos: dropping connection after lease grant")
        todo: List[Dict[str, Any]] = []
        for item in items:
            stored = self._stored(item)
            if stored is not None:
                self._upload(rfile, wfile, item, stored)
            else:
                todo.append(item)
        groups: Dict[Tuple[str, bool], List[Dict[str, Any]]] = {}
        for item in todo:
            key = (str(item.get("trace")), bool(item.get("track_per_pc")))
            groups.setdefault(key, []).append(item)
        for (_, track_per_pc), group in groups.items():
            trace = self._trace_for(rfile, wfile, group[0])
            entries = []
            for item in group:
                spec_dict, sizes, _ = self._decode_item(item)
                entries.append((spec_dict, sizes))
            if pool is None:
                self._simulate_inline(
                    rfile, wfile, group, entries, trace, track_per_pc
                )
            else:
                ensure_local = getattr(trace, "ensure_local", None)
                if ensure_local is not None:
                    # Pickling a ChunkedTrace into a pool child drops its
                    # fetch hook (the child has no coordinator session),
                    # so every chunk file must be spooled to disk first.
                    ensure_local()
                meta = {
                    "submitted": time.monotonic(),
                    "trace_load": self._last_fetch_seconds,
                }
                future = pool.submit(
                    _simulate_batch_with_chaos, entries, trace, track_per_pc
                )
                in_flight[future] = (group, entries, trace, track_per_pc, meta)

    def _drain_one(
        self, rfile, wfile,
        pool: Optional[ProcessPoolExecutor],
        in_flight: Dict[Future, "_Grant"],
    ) -> None:
        """Wait for at least one pool grant and upload / retry / fail it."""
        done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
        for future in done:
            items, entries, trace, track_per_pc, meta = in_flight.pop(future)
            error = future.exception()
            if error is None:
                # Pool "simulate" is submit-to-completion turnaround, so
                # it includes any queue wait behind other grants.
                phases = {
                    "trace_load": meta.get("trace_load", 0.0),
                    "simulate": time.monotonic() - meta.get(
                        "submitted", time.monotonic()
                    ),
                }
                for item, result in zip(items, future.result()):
                    self._upload(
                        rfile, wfile, item, result,
                        phases=phases, batch=len(items),
                    )
            elif isinstance(error, BatchCellError):
                self._report_failure(
                    rfile, wfile, items[error.index], error.original
                )
                rest_items = [
                    item for i, item in enumerate(items) if i != error.index
                ]
                rest_entries = [
                    entry for i, entry in enumerate(entries) if i != error.index
                ]
                if rest_items:
                    retry = pool.submit(
                        _simulate_batch_with_chaos, rest_entries, trace, track_per_pc
                    )
                    in_flight[retry] = (
                        rest_items, rest_entries, trace, track_per_pc, meta,
                    )
            else:
                # Not a property of any one cell (broken pool, OOM, ...):
                # worker-fatal, the coordinator requeues our leases.
                raise error

    def _serve(self, rfile, wfile, pool: Optional[ProcessPoolExecutor]) -> None:
        in_flight: Dict[Future, Worker._Grant] = {}
        draining = False
        capacity = self.jobs if pool is not None else 1
        while True:
            if self._stop_requested.is_set() and not draining:
                draining = True
                if in_flight:
                    self.log(
                        f"worker {self.name}: draining "
                        f"{len(in_flight)} in-flight grant(s) before stopping"
                    )
            # Phase 1: lease until the pool is full or nothing is leasable.
            delay = 0.0
            while not draining and len(in_flight) < capacity:
                reply = self._request(
                    rfile, wfile, self._lease_frame(), "work", "wait", "shutdown"
                )
                if reply["type"] == "shutdown":
                    draining = True
                    break
                if reply["type"] == "wait":
                    delay = float(reply.get("delay", 0.25))
                    break
                if self._stop_requested.is_set():
                    draining = True
                items = reply.get("items")
                if items is None:  # single-cell grant (pre-batching shape)
                    items = [reply["item"]]
                if not isinstance(items, list) or not items:
                    raise ProtocolError("work frame without items")
                self._process_grant(rfile, wfile, items, pool, in_flight)
            # Phase 2: drain at least one finished simulation.
            if in_flight:
                self._drain_one(rfile, wfile, pool, in_flight)
            elif draining:
                return
            elif delay:
                time.sleep(delay)


def run_worker(
    connect: str,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None, bool] = False,
    name: Optional[str] = None,
    connect_retry: float = 10.0,
    reconnect: float = DEFAULT_RECONNECT,
    batch: int = DEFAULT_BATCH_CELLS,
    trace_cache: int = DEFAULT_TRACE_CACHE,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one worker against ``"host:port"`` until the coordinator closes.

    Returns the number of cells this worker completed (``repro worker``
    is a thin wrapper around this).
    """
    worker = make_worker(
        connect,
        jobs=jobs,
        store=store,
        name=name,
        connect_retry=connect_retry,
        reconnect=reconnect,
        batch=batch,
        trace_cache=trace_cache,
        log=log,
    )
    return worker.run()


def make_worker(connect: str, **kwargs) -> Worker:
    """Build a :class:`Worker` from a ``"host:port"`` address string.

    Split from :func:`run_worker` so callers (the CLI's SIGTERM drain)
    can hold the instance while it runs.
    """
    host, _, port_text = connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--connect needs HOST:PORT, got {connect!r}")
    return Worker(host, int(port_text), **kwargs)
