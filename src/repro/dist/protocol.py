"""Wire protocol of the distributed sweep service.

Everything on the wire is a **frame**: one JSON object, UTF-8 encoded, on
one ``\\n``-terminated line.  Line-delimited JSON keeps the protocol
trivially debuggable (``nc`` into a coordinator and type frames by hand)
and means neither side ever needs a streaming parser -- a frame is a
``readline()`` and a ``json.loads``.

Sessions are strict request/response: the client (a worker or a
submitter) writes one frame and reads frames until it has the reply it
needs, so there is no multiplexing to get wrong.  The coordinator answers
every request with exactly one frame, except for a submitted job, where
it streams ``progress`` frames before the final ``job_done``.

Worker session::

    -> {"type": "hello", "role": "worker", "protocol": 1, "worker": "w1"}
    <- {"type": "welcome", "protocol": 1, "lease_timeout": 120.0,
        "renew": true}                        # "renew" advertises heartbeat
                                              # lease renewal; absent on older
                                              # coordinators, where workers
                                              # simply never send "renew"
    -> {"type": "lease"}                      # or {"type": "lease", "max_cells": 8}
    <- {"type": "work", "item": {"cell": 7, "label": ..., "spec": ...,
        "profile": ..., "trace": "<fingerprint>", "trace_name": ...,
        "track_per_pc": false, "store_key": "..."}}
       | {"type": "work", "items": [{...}, ...]}  # batched grant: only in
                                              # reply to a "max_cells" lease;
                                              # all items share one trace
       | {"type": "wait", "delay": 0.25}      # nothing leasable right now
       | {"type": "shutdown"}                 # coordinator is closing
    -> {"type": "renew", "cells": [7, 8]}     # heartbeat while simulating:
    <- {"type": "renewed", "cells": [7, 8],   # extends the leases still owned
        "lost": []}                           # by this connection; "lost" ids
                                              # were requeued or completed and
                                              # must not be renewed again
    -> {"type": "fetch_trace", "fingerprint": "..."}
    <- {"type": "trace", "fingerprint": "...", "data": "<base64>"}
       | {"type": "trace", "fingerprint": "...", "manifest": {...}}
                                              # chunked trace: the reply
                                              # carries the RPCHUNK1 manifest
                                              # instead of "data"; the worker
                                              # then fetches chunks (additive
                                              # key -- a monolithic trace
                                              # never triggers it)
    -> {"type": "fetch_trace_chunk", "fingerprint": "...", "chunk": 3}
    <- {"type": "trace_chunk", "fingerprint": "...", "chunk": 3,
        "data": "<base64>"}                   # one RPTRACE1 chunk blob; the
                                              # worker verifies it against the
                                              # manifest's chunk fingerprint
    -> {"type": "result", "cell": 7, "result": {...}}   # result_to_dict form
    <- {"type": "ack", "cell": 7, "accepted": true}

Submit session::

    -> {"type": "submit", "protocol": 1, "track_per_pc": false,
        "specs": [{"label": ..., "spec": ..., "profile": ...}, ...],
        "traces": ["<base64>", ...],
        "cells": [["label", 0], ...]}         # optional subset
    <- {"type": "accepted", "job": 1, "total": 12, "done": 3}
    <- {"type": "progress", "job": 1, "done": 4, "total": 12,
        "requeued": 0, "retried": 0, "quarantined": 0}   # streamed; the
                                              # stat keys are additive in
                                              # protocol 1 (older clients
                                              # ignore unknown keys)
    <- {"type": "job_done", "job": 1,
        "cells": [{"label": ..., "index": 0, "result": {...}}, ...],
        "requeued": 0, "retried": 0, "quarantined": 1,
        "quarantined_cells": [{"label": ..., "index": 3, "error": "..."}]}
                                              # "quarantined_cells" only when
                                              # nonempty: cells abandoned after
                                              # exhausting their lease-loss
                                              # budget, with attributed errors

Both directions tolerate *additive* keys inside version-1 frames -- that
is how lease renewal and the fault-tolerance stats arrived without a
version bump: a worker only sends ``renew`` after seeing the ``welcome``
advertise it, and clients ignore stat keys they do not know.  The
observability layer rides the same rule: instrumented workers attach
``"timings"`` (a ``{phase: seconds}`` mapping) and ``"batch"`` (cells
sharing those walls) to ``result`` frames, and the coordinator treats
both as optional -- pre-instrumentation peers interoperate unchanged.
So does disk-pressure signalling: workers attach ``"low_disk"`` (bool)
to their ``hello`` and ``renew`` frames when their trace-spool headroom
is low (:mod:`repro.common.diskguard`), and the coordinator then stops
leasing them chunked-trace cells until the pressure clears; a frame
without the key is a pre-diskguard worker and is treated as having
headroom.

A malformed, oversized or unexpected frame gets a ``{"type": "error",
"message": ...}`` reply (best effort) and the connection is closed; any
cells the connection had leased are requeued.  The payload helpers here
(trace / size-profile / result codecs) are pure JSON -- the protocol
never unpickles anything, so a hostile peer can waste a connection but
not execute code.
"""

from __future__ import annotations

import base64
import json
import socket
from dataclasses import asdict
from typing import Any, BinaryIO, Dict, Optional

from repro.predictors.composites import SizeProfile
from repro.predictors.gehl import GEHLConfig
from repro.predictors.statistical_corrector import StatisticalCorrectorConfig
from repro.predictors.tage import TAGEConfig
from repro.trace.trace import Trace, trace_from_bytes, trace_to_bytes

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "read_frame",
    "write_frame",
    "expect",
    "encode_trace",
    "decode_trace",
    "encode_chunk",
    "decode_chunk",
    "MAX_TRACE_PAYLOAD",
    "profile_to_payload",
    "profile_from_payload",
]

#: Bump on incompatible frame-shape changes; ``hello``/``submit`` carry it
#: so mismatched peers fail with a clear error instead of confusion.
PROTOCOL_VERSION = 1

#: Upper bound on one frame line.  Traces travel base64-encoded inside
#: frames, so this must hold the largest trace plus JSON overhead; 64 MiB
#: is ~600x the default sweep workload and still a sane flood guard.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A peer sent something that is not a valid frame for this state."""


class ConnectionClosed(ProtocolError):
    """The peer went away (clean EOF or a dead socket).

    Distinct from :class:`ProtocolError` junk so a worker can treat a
    coordinator that closed the connection as a normal shutdown signal.
    """


def write_frame(stream: BinaryIO, frame: Dict[str, Any]) -> None:
    """Serialize one frame to ``stream`` and flush it.

    Raises :class:`ConnectionClosed` when the peer is gone.
    """
    payload = json.dumps(frame, separators=(",", ":"), ensure_ascii=False)
    try:
        stream.write(payload.encode("utf-8") + b"\n")
        stream.flush()
    except (BrokenPipeError, ConnectionResetError) as error:
        raise ConnectionClosed(f"connection lost: {error}") from None


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF, :class:`ProtocolError` on junk.

    Junk covers unparseable bytes, a non-object payload, an overlong line
    and a line truncated by mid-frame connection loss.
    """
    try:
        line = stream.readline(MAX_FRAME_BYTES + 1)
    except (OSError, ValueError) as error:  # closed socket file
        raise ConnectionClosed(f"connection lost: {error}") from None
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated frame (connection lost mid-line)")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"unparseable frame: {error}") from None
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("a frame must be a JSON object with a string 'type'")
    return frame


def expect(frame: Optional[Dict[str, Any]], *types: str) -> Dict[str, Any]:
    """Validate that ``frame`` exists and has one of the expected types.

    An ``error`` frame from the peer is surfaced with its message; EOF and
    unexpected types raise :class:`ProtocolError`.
    """
    if frame is None:
        raise ConnectionClosed("connection closed by peer")
    kind = frame["type"]
    if kind == "error" and "error" not in types:
        raise ProtocolError(f"peer reported: {frame.get('message', 'unknown error')}")
    if kind not in types:
        raise ProtocolError(f"expected {'/'.join(types)} frame, got {kind!r}")
    return frame


def connect(host: str, port: int, timeout: Optional[float] = None) -> socket.socket:
    """One TCP connection to a coordinator (Nagle off: frames are small)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


# --------------------------------------------------------------------------- #
# Payload codecs (pure JSON -- never pickle on the wire)
# --------------------------------------------------------------------------- #


#: Ceiling on one base64 trace (or chunk) payload inside a frame, leaving
#: headroom for the frame's JSON envelope under :data:`MAX_FRAME_BYTES`.
MAX_TRACE_PAYLOAD = MAX_FRAME_BYTES - 4096


def encode_trace(trace: Trace) -> str:
    """Base64 text of the trace's compact binary form.

    A trace too large for one frame raises an actionable
    :class:`ProtocolError` up front -- naming the trace and its size --
    instead of letting the peer's frame cap reject the bytes later.  Big
    traces are not meant to travel monolithically at all: ingest them into
    the chunked layout (``repro ingest convert --chunk-branches ...``) and
    submit the :class:`~repro.trace.chunked.ChunkedTrace`, which ships
    per-chunk via ``fetch_trace_chunk`` frames.
    """
    data = base64.b64encode(trace_to_bytes(trace)).decode("ascii")
    if len(data) > MAX_TRACE_PAYLOAD:
        raise ProtocolError(
            f"trace {trace.name!r} ({len(trace)} records) encodes to "
            f"{len(data)} bytes, over the {MAX_FRAME_BYTES}-byte frame cap; "
            f"convert it to the chunked layout with 'repro ingest convert "
            f"--chunk-branches N' and submit the chunked directory instead "
            f"of a monolithic trace"
        )
    return data


def decode_trace(data: str) -> Trace:
    """Inverse of :func:`encode_trace`."""
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError, AttributeError) as error:
        raise ProtocolError(f"invalid trace payload: {error}") from None
    try:
        return trace_from_bytes(raw, source="trace payload")
    except (ValueError, KeyError, TypeError, EOFError) as error:
        raise ProtocolError(f"invalid trace payload: {error}") from None


def encode_chunk(data: bytes) -> str:
    """Base64 text of one chunk file's bytes (a complete RPTRACE1 blob).

    Chunk payloads obey the same frame-cap headroom as monolithic traces;
    the chunked writer's default sizing keeps chunks far below it, so this
    only trips on layouts written with an absurd ``--chunk-branches``.
    """
    payload = base64.b64encode(data).decode("ascii")
    if len(payload) > MAX_TRACE_PAYLOAD:
        raise ProtocolError(
            f"trace chunk encodes to {len(payload)} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte frame cap; re-ingest the trace with a "
            f"smaller --chunk-branches"
        )
    return payload


def decode_chunk(data: str) -> bytes:
    """Inverse of :func:`encode_chunk` (bytes only; the caller decodes)."""
    try:
        return base64.b64decode(data.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError, AttributeError) as error:
        raise ProtocolError(f"invalid trace chunk payload: {error}") from None


def profile_to_payload(profile: SizeProfile) -> Dict[str, Any]:
    """JSON-safe dict of a resolved :class:`SizeProfile`."""
    return asdict(profile)


def profile_from_payload(payload: Dict[str, Any]) -> SizeProfile:
    """Inverse of :func:`profile_to_payload`.

    Rebuilds the nested geometry dataclasses explicitly (``asdict``
    flattens them to plain dicts); a payload with unknown or missing
    fields raises :class:`ProtocolError`.
    """
    try:
        fields = dict(payload)
        return SizeProfile(
            tage=TAGEConfig(**fields.pop("tage")),
            corrector=StatisticalCorrectorConfig(**fields.pop("corrector")),
            gehl=GEHLConfig(**fields.pop("gehl")),
            **fields,
        )
    except (TypeError, ValueError, KeyError, AttributeError) as error:
        raise ProtocolError(f"invalid size-profile payload: {error}") from None
