"""The sweep coordinator: expands sweeps into cells and serves them to workers.

The coordinator owns the **scheduler state** of one or more sweep jobs: a
queue of pending ``(spec, trace)`` cells, the set of currently leased
cells, and the per-job result slots.  Workers connect over TCP
(:mod:`repro.dist.protocol`), lease cells one at a time, and upload one
:class:`~repro.sim.engine.SimulationResult` per cell; submitters connect
the same way, upload a whole sweep, and stream progress until the job is
done.

Fault tolerance is lease-based: a leased cell that neither completes nor
renews within ``lease_timeout`` seconds goes back to the front of the
queue, and all cells leased by a connection are requeued the moment that
connection dies.  Workers that understand renewal (the ``welcome`` frame
advertises it) send ``renew`` heartbeats while simulating, so a slow
cell's lease stays alive as long as its worker is -- requeue becomes a
*liveness* decision instead of an operator-guessed timeout race.  A cell
may still be simulated twice in rare races -- results are deterministic,
the first upload wins, and later duplicates are acknowledged but
ignored, so nothing is lost and nothing is counted twice.

A cell whose lease is lost ``max_lease_losses`` times (worker death or
expiry; default 3) is **quarantined** instead of requeued forever: the
job settles with that cell's attributed error while every unrelated
cell still completes.  This turns a poison cell -- one that reliably
kills whatever worker touches it -- from an infinite crash-loop into a
reported failure.

With a :class:`~repro.store.ResultStore` attached, cells already present
in the store are completed without ever being leased (checked at admit
time *and* again at lease time, so concurrent writers sharing the store
are honoured), and every uploaded result is persisted -- a killed
distributed sweep resumes exactly like ``repro sweep --resume``.  With a
:class:`~repro.dist.journal.CoordinatorJournal` attached as well, the
*jobs themselves* survive a coordinator crash: admitted jobs are
journalled durably before any cell is served, and a restarted
coordinator re-admits every unsettled one (leases treated as expired,
store-hits skipped as usual), so recovery is byte-identical to an
uninterrupted run.

Disk pressure degrades deliberately (:mod:`repro.common.diskguard`):
workers advertise ``low_disk`` in their hello/renew frames and the
coordinator stops granting them chunked-trace cells (whose chunks land
in the worker's spool) until the pressure clears, and new job
admissions are refused with one clear error while the store's own disk
is critical -- both surfaced as events and ``/metrics`` counters.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.specs import PredictorSpec
from repro.common import diskguard
from repro.dist import protocol
from repro.dist.journal import CoordinatorJournal
from repro.dist.protocol import ProtocolError
from repro.obs import default_registry, event_log_for, timing_log_for
from repro.predictors.composites import CompositeOptions
from repro.sim.engine import SimulationResult
from repro.sim.runner import DEFAULT_BATCH_CELLS, ConfigurationRun, core_schedule_key
from repro.store import ResultStore, profile_content, result_from_dict, result_to_dict
from repro.trace.chunked import ChunkedTrace, load_chunked_trace
from repro.trace.trace import Trace

__all__ = ["Coordinator", "SweepJob", "JobFailed"]


class JobFailed(RuntimeError):
    """A sweep job cannot complete (e.g. a cell's spec does not build)."""


@dataclass
class _Cell:
    """One schedulable ``(spec, trace)`` unit of work."""

    cell_id: int
    job: "SweepJob"
    label: str
    index: int
    spec_dict: Dict[str, Any]
    profile_payload: Dict[str, Any]
    trace_fingerprint: str
    trace_name: str
    store_key: Optional[str]
    #: Times this cell's lease was lost (expiry or worker death), with a
    #: human-readable reason per loss -- the quarantine retry budget.
    losses: int = 0
    loss_log: List[str] = field(default_factory=list)
    #: Monotonic stamp of the most recent lease grant (timing artifacts:
    #: the dist ``total`` phase is grant-to-accepted-upload).
    granted_at: Optional[float] = None

    def work_item(self) -> Dict[str, Any]:
        """The ``work`` frame payload workers receive."""
        return {
            "cell": self.cell_id,
            "label": self.label,
            "spec": self.spec_dict,
            "profile": self.profile_payload,
            "trace": self.trace_fingerprint,
            "trace_name": self.trace_name,
            "track_per_pc": self.job.track_per_pc,
            "store_key": self.store_key,
        }


def _core_key(spec: PredictorSpec, profile_payload: Dict[str, Any]) -> str:
    """Shared-core scheduling key of one admitted spec (best-effort).

    Degrades to ``""`` on any resolution problem -- admission order is a
    scheduling hint, never a correctness input.
    """
    try:
        return core_schedule_key(
            spec, protocol.profile_from_payload(profile_payload)
        )
    except Exception:
        return ""


@dataclass
class SweepJob:
    """One submitted sweep: its cells, result slots and completion state."""

    job_id: int
    labels: List[str]
    trace_names: List[str]
    track_per_pc: bool
    total: int = 0
    done: int = 0
    error: Optional[str] = None
    #: ``slots[label][index]`` is the cell's result once completed.
    slots: Dict[str, List[Optional[SimulationResult]]] = field(default_factory=dict)
    #: Poison cells: ``(label, trace index) -> attributed error``.  The
    #: job settles with these missing instead of requeueing them forever.
    quarantined: Dict[Tuple[str, int], str] = field(default_factory=dict)
    #: Degradation counters surfaced via progress frames / hooks.
    requeued: int = 0
    retried: int = 0
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        """Whether the job is settled (all cells done/quarantined, or failed)."""
        return self._event.is_set()

    def stats(self) -> Dict[str, int]:
        """Degradation counters (for progress displays and frames)."""
        return {
            "requeued": self.requeued,
            "retried": self.retried,
            "quarantined": len(self.quarantined),
        }

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles; ``False`` on timeout."""
        return self._event.wait(timeout)

    def completed_cells(self) -> List[Tuple[str, int, SimulationResult]]:
        """Every completed ``(label, trace index, result)`` cell."""
        return [
            (label, index, result)
            for label in self.labels
            for index, result in enumerate(self.slots[label])
            if result is not None
        ]

    def runs(self) -> Dict[str, ConfigurationRun]:
        """Per-label :class:`ConfigurationRun`, in submission order.

        Only meaningful for settled, fully populated jobs; raises
        :class:`JobFailed` when the job failed or cells are missing.
        """
        if self.error is not None:
            raise JobFailed(self.error)
        if self.quarantined:
            details = "; ".join(
                f"({label}, trace {index}): {message}"
                for (label, index), message in sorted(self.quarantined.items())
            )
            raise JobFailed(
                f"job {self.job_id}: {len(self.quarantined)} cell(s) "
                f"quarantined -- {details}"
            )
        runs: Dict[str, ConfigurationRun] = {}
        for label in self.labels:
            results = self.slots[label]
            if any(result is None for result in results):
                raise JobFailed(
                    f"job {self.job_id} is incomplete ({self.done}/{self.total} cells)"
                )
            runs[label] = ConfigurationRun(configuration=label, results=list(results))
        return runs


#: A lease: (owner connection id, expiry deadline in monotonic seconds).
_Lease = Tuple[int, float]


class Coordinator:
    """Serves sweep cells to workers over line-delimited JSON TCP.

    Parameters
    ----------
    host / port:
        Listen address; port 0 binds an ephemeral port (see
        :attr:`address` after :meth:`start`).
    store:
        Optional shared :class:`ResultStore`: already-present cells are
        never dispatched, uploaded results are persisted.
    lease_timeout:
        Seconds a leased cell may stay unfinished **without renewal**
        before it is requeued for another worker.  Renewing workers
        heartbeat well inside this, so for them it bounds how long a
        *dead* worker's cells stay stranded, not how long a cell may run.
    journal:
        Optional :class:`~repro.dist.journal.CoordinatorJournal` (or a
        path for one): admitted jobs are journalled durably and
        re-admitted by :meth:`start` after a crash (see
        :attr:`recovered_jobs`).
    max_lease_losses:
        Lease losses (expiry or worker death) a cell may suffer before
        it is quarantined with an attributed error instead of requeued.
    conn_idle_timeout:
        Seconds a connection may stay completely silent before it is
        presumed half-open and dropped (its leases requeue).  Defaults
        to ``max(60, 4 * lease_timeout)`` -- far above any healthy
        worker's frame cadence, renewal heartbeats included.
    batch:
        Ceiling on cells granted per lease request.  A worker asking for
        ``max_cells`` receives up to ``min(max_cells, batch)`` cells
        sharing one trace (and per-PC flag), so it can simulate them in
        one :func:`~repro.sim.engine.simulate_many` traversal.  ``1``
        disables lease batching (every grant is a single cell).
    progress:
        Optional ``(done, total)`` callable, invoked per completed cell
        of every job (e.g. a
        :class:`~repro.common.progress.ProgressPrinter`).
    log:
        Optional ``(message: str)`` callable for lifecycle events
        (connections, requeues, job completion).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Union[ResultStore, str, None, bool] = False,
        lease_timeout: float = 120.0,
        journal: Union[CoordinatorJournal, str, None] = None,
        max_lease_losses: int = 3,
        conn_idle_timeout: Optional[float] = None,
        batch: int = DEFAULT_BATCH_CELLS,
        progress: Optional[Callable[[int, int], None]] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        if max_lease_losses < 1:
            raise ValueError(
                f"max_lease_losses must be positive, got {max_lease_losses}"
            )
        if conn_idle_timeout is not None and conn_idle_timeout <= 0:
            raise ValueError(
                f"conn_idle_timeout must be positive, got {conn_idle_timeout}"
            )
        self._host = host
        self._port = port
        self.store = ResultStore.resolve(store)
        self.lease_timeout = float(lease_timeout)
        self.journal = (
            journal
            if isinstance(journal, CoordinatorJournal) or journal is None
            else CoordinatorJournal(journal)
        )
        self.max_lease_losses = int(max_lease_losses)
        self.conn_idle_timeout = (
            float(conn_idle_timeout)
            if conn_idle_timeout is not None
            else max(60.0, 4.0 * self.lease_timeout)
        )
        self.batch = int(batch)
        self.progress = progress
        self.log = log or (lambda message: None)
        #: Jobs re-admitted from the journal by :meth:`start`.
        self.recovered_jobs: List[SweepJob] = []
        #: Service-lifetime degradation counters (across all jobs).
        self.stats: Dict[str, int] = {"requeued": 0, "retried": 0, "quarantined": 0}

        # Observability (read-only over scheduler state; see repro.obs).
        # The store root anchors the event / timing artifacts; without a
        # store both are off and every hook below is a cheap no-op.
        store_root = self.store.root if self.store is not None else None
        self.metrics = default_registry()
        self.events = event_log_for(store_root, component="coordinator")
        self.timings = timing_log_for(store_root, component="coordinator")
        self.started_wall: Optional[float] = None
        self.started_mono: Optional[float] = None
        #: Cells completed service-wide, and a ring of recent completion
        #: stamps (monotonic) backing the sliding-window cells/s rate.
        self.cells_completed = 0
        self._completions: deque = deque(maxlen=4096)
        #: Live connections: conn id -> {name, role, connected stamps,
        #: last_seen, completed} for the /workers endpoint.
        self._conn_info: Dict[int, Dict[str, Any]] = {}
        self._metric_results = self.metrics.counter(
            "repro_results_accepted_total", "Results accepted from workers."
        )
        self._metric_duplicates = self.metrics.counter(
            "repro_results_duplicate_total",
            "Duplicate uploads acknowledged and dropped.",
        )
        self._metric_traces_served = self.metrics.counter(
            "repro_traces_served_total", "fetch_trace frames answered."
        )
        self._metric_chunks_served = self.metrics.counter(
            "repro_trace_chunks_served_total", "fetch_trace_chunk frames answered."
        )
        self._metric_connections = self.metrics.counter(
            "repro_connections_total", "TCP connections accepted."
        )
        self._metric_lease_shed = self.metrics.counter(
            "repro_lease_shed_low_disk_total",
            "Chunked-trace cells withheld from low_disk workers.",
        )
        self._metric_admits_shed = self.metrics.counter(
            "repro_jobs_shed_disk_critical_total",
            "Job admissions refused because the store disk was critical.",
        )

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._cells: Dict[int, _Cell] = {}
        self._pending: deque = deque()  # cell ids, FIFO across jobs
        self._leases: Dict[int, _Lease] = {}
        self._jobs: Dict[int, SweepJob] = {}
        self._traces: Dict[str, str] = {}  # fingerprint -> base64 payload
        #: Chunked traces by manifest fingerprint.  Chunks are read from
        #: disk per ``fetch_trace_chunk`` request, so a huge trace costs
        #: the coordinator one manifest of memory, never its records.
        self._chunked: Dict[str, ChunkedTrace] = {}
        self._cell_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._conn_ids = itertools.count(1)
        self._conn_names: Dict[int, str] = {}  # worker names, for attribution

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._open_sockets: Dict[int, socket.socket] = {}
        self._stopping = threading.Event()

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (only valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("coordinator is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns the address.

        With a journal attached, every admitted-but-unsettled job from a
        previous (crashed) coordinator is re-admitted first -- see
        :attr:`recovered_jobs` -- so its cells are served as soon as the
        listener is up.
        """
        if self._listener is not None:
            raise RuntimeError("coordinator is already started")
        self.started_wall = time.time()
        self.started_mono = time.monotonic()
        self._recover_journal()
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._listener.settimeout(0.2)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-accept", daemon=True
        )
        self._accept_thread.start()
        self.log(f"coordinator listening on {self.address[0]}:{self.address[1]}")
        if self.events is not None:
            self.events.emit(
                "coordinator_started",
                host=self.address[0],
                port=self.address[1],
                recovered_jobs=len(self.recovered_jobs),
            )
        return self.address

    def _recover_journal(self) -> None:
        """Re-admit every unsettled journalled job (crash recovery)."""
        if self.journal is None:
            return
        records = self.journal.replay()
        if not records:
            return
        # Fresh admits must never reuse a journalled job id.
        self._job_ids = itertools.count(self.journal.max_job_id() + 1)
        superseded: List[int] = []
        for record in records:
            try:
                job = self._admit_remote(record)
            except (ProtocolError, ValueError, TypeError, KeyError) as error:
                self.log(
                    f"journal: cannot recover job {record.get('job')}: {error}"
                )
                continue
            self.recovered_jobs.append(job)
            superseded.append(int(record["job"]))
            self.log(
                f"journal: job {record['job']} recovered as job {job.job_id} "
                f"({job.done}/{job.total} cells already in store)"
            )
        # The re-admits are journalled under new ids; retire the old
        # records so a second crash does not recover the job twice.
        for job_id in superseded:
            self.journal.record_settled(job_id)
        self.journal.compact()

    def shutdown(self, graceful: bool = True, grace: float = 2.0) -> None:
        """Stop serving: close the listener and every open connection.

        Graceful shutdown (the default) first lets worker connections
        drain naturally -- their next ``lease`` is answered with a
        ``shutdown`` frame, so workers exit cleanly instead of seeing the
        socket die and entering their reconnect loop.  ``graceful=False``
        slams every socket shut immediately; tests use it to simulate a
        coordinator crash.
        """
        self._stopping.set()
        with self._cond:
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if graceful and grace > 0:
            deadline = time.monotonic() + grace
            for thread in list(self._conn_threads):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(timeout=remaining)
        with self._lock:
            sockets = list(self._open_sockets.values())
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if graceful:
            for thread in list(self._conn_threads):
                thread.join(timeout=5)
        if self.journal is not None:
            self.journal.close()
        if self.timings is not None:
            self.timings.write_summary()
        if self.events is not None:
            self.events.emit("coordinator_stopped", cells_completed=self.cells_completed)

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ----------------------------------------------------------------- #
    # Job admission
    # ----------------------------------------------------------------- #

    def submit(
        self,
        specs: Sequence[PredictorSpec],
        traces: Sequence[Trace],
        track_per_pc: bool = False,
        registry=None,
        cells: Optional[Sequence[Tuple[str, int]]] = None,
    ) -> SweepJob:
        """Admit a sweep directly (in-process; ``repro serve`` and tests).

        Specs are resolved against ``registry`` exactly like the local
        runner resolves them, so store keys -- and therefore resume
        behaviour -- match ``repro sweep --store`` byte for byte.
        ``cells`` optionally restricts the job to a subset of
        ``(label, trace index)`` pairs.

        Traces may be monolithic :class:`Trace` objects (shipped to
        workers as one base64 frame; a trace over the frame cap raises the
        actionable :class:`ProtocolError` from
        :func:`~repro.dist.protocol.encode_trace`) or
        :class:`~repro.trace.chunked.ChunkedTrace` objects, which workers
        fetch chunk by chunk -- store keys use the manifest fingerprint,
        identical to local streaming simulation.
        """
        if registry is None:
            from repro.api.registry import default_registry

            registry = default_registry()
        entries = []
        for spec in specs:
            resolved = spec.resolve(registry)
            sizes = registry.resolve_profile(resolved.profile)
            entries.append(
                {
                    "label": spec.label,
                    "spec": resolved.to_dict(),
                    "profile": protocol.profile_to_payload(sizes),
                }
            )
        payloads: Dict[str, str] = {}
        chunked: Dict[str, ChunkedTrace] = {}
        for trace in traces:
            if getattr(trace, "iter_chunks", None) is not None:
                chunked[trace.fingerprint()] = trace
            else:
                payloads[trace.fingerprint()] = protocol.encode_trace(trace)
        return self._admit(
            entries, list(traces), payloads, track_per_pc, cells, chunked
        )

    def _admit(
        self,
        entries: Sequence[Dict[str, Any]],
        traces: Sequence[Trace],
        trace_payloads: Dict[str, str],
        track_per_pc: bool,
        cells: Optional[Sequence[Tuple[str, int]]] = None,
        chunked: Optional[Dict[str, ChunkedTrace]] = None,
    ) -> SweepJob:
        """Expand spec entries x traces into cells and enqueue them.

        Refuses up front (with one actionable error) while the store's
        disk is critically low: admitting a sweep whose every result
        write would fail only converts disk exhaustion into thousands
        of store errors downstream.
        """
        if self.store is not None:
            try:
                diskguard.check_writable(self.store.root, what="new job admission")
            except diskguard.DiskPressureError as error:
                self._metric_admits_shed.inc()
                self.log(f"job admission shed: {error}")
                if self.events is not None:
                    self.events.emit(
                        "job_shed_disk_critical",
                        store=str(self.store.root),
                        free_bytes=error.free,
                    )
                raise ValueError(str(error)) from None
        labels = [str(entry["label"]) for entry in entries]
        if len(set(labels)) != len(labels):
            raise ValueError("two specs share a label; give one an explicit name")
        wanted: Optional[set] = None
        if cells is not None:
            wanted = {(str(label), int(index)) for label, index in cells}
            for label, index in wanted:
                if label not in labels or not 0 <= index < len(traces):
                    raise ValueError(f"unknown cell ({label!r}, {index})")
        with self._cond:
            job = SweepJob(
                job_id=next(self._job_ids),
                labels=labels,
                trace_names=[trace.name for trace in traces],
                track_per_pc=bool(track_per_pc),
                slots={label: [None] * len(traces) for label in labels},
            )
            self._jobs[job.job_id] = job
            self._traces.update(trace_payloads)
            if chunked:
                self._chunked.update(chunked)
            if self.journal is not None:
                # Durable before any cell is served: a crash after this
                # point recovers the job, byte-identical.  Chunked traces
                # are journalled by manifest directory (their bytes
                # already live durably on disk), monolithic ones inline.
                def _journal_trace(trace: Trace) -> Any:
                    fingerprint = trace.fingerprint()
                    if chunked and fingerprint in chunked:
                        return {"chunked": str(chunked[fingerprint].directory)}
                    return trace_payloads[fingerprint]

                try:
                    self.journal.record_admit(
                        job.job_id,
                        {
                            "protocol": protocol.PROTOCOL_VERSION,
                            "track_per_pc": bool(track_per_pc),
                            "specs": [dict(entry) for entry in entries],
                            "traces": [
                                _journal_trace(trace) for trace in traces
                            ],
                            "cells": (
                                sorted([label, index] for label, index in wanted)
                                if wanted is not None
                                else None
                            ),
                        },
                    )
                except OSError as error:
                    self.log(f"journal: cannot record job admission: {error}")
            prefilled: List[Tuple[_Cell, SimulationResult]] = []
            admitted: List[Tuple[int, str, int]] = []
            for entry in entries:
                label = str(entry["label"])
                spec_dict = entry["spec"]
                spec = PredictorSpec.from_dict(spec_dict)  # validates
                store_keys = self._store_keys(spec, entry["profile"], traces, job)
                core_key = _core_key(spec, entry["profile"])
                for index, trace in enumerate(traces):
                    if wanted is not None and (label, index) not in wanted:
                        continue
                    cell = _Cell(
                        cell_id=next(self._cell_ids),
                        job=job,
                        label=label,
                        index=index,
                        spec_dict=spec_dict,
                        profile_payload=entry["profile"],
                        trace_fingerprint=trace.fingerprint(),
                        trace_name=trace.name,
                        store_key=store_keys[index] if store_keys else None,
                    )
                    job.total += 1
                    self._cells[cell.cell_id] = cell
                    stored = self._store_get(cell)
                    if stored is not None:
                        prefilled.append((cell, stored))
                    else:
                        admitted.append((index, core_key, cell.cell_id))
            # Enqueue trace-major, and within one trace ordered by
            # shared-core key (stable: cell-id creation order breaks
            # ties), so trace-affinity lease grants hand workers
            # same-core cells that ``simulate_many`` can fan out of one
            # core.  Pure scheduling hint: grant composition never
            # changes results.
            admitted.sort(key=lambda item: (item[0], item[1], item[2]))
            self._pending.extend(cell_id for _, _, cell_id in admitted)
            self.log(
                f"job {job.job_id}: {job.total} cell(s) over {len(labels)} spec(s) "
                f"x {len(traces)} trace(s)"
                + (f", {len(prefilled)} already in store" if prefilled else "")
            )
            if self.events is not None:
                self.events.emit(
                    "job_admitted",
                    job=job.job_id,
                    cells=job.total,
                    specs=len(labels),
                    traces=len(traces),
                    prefilled=len(prefilled),
                )
            for cell, stored in prefilled:
                self._complete_locked(cell, stored, persist=False)
            self._cond.notify_all()
            return job

    def _store_keys(
        self,
        spec: PredictorSpec,
        profile_payload: Dict[str, Any],
        traces: Sequence[Trace],
        job: SweepJob,
    ) -> Optional[List[str]]:
        """Per-trace store keys (``None`` without a store / identity)."""
        if self.store is None or not isinstance(spec.base, CompositeOptions):
            return None
        sizes = protocol.profile_from_payload(profile_payload)
        content = spec.content()
        sizes_content = profile_content(sizes)
        return [
            ResultStore.cell_key(
                content, sizes_content, trace.fingerprint(), job.track_per_pc
            )
            for trace in traces
        ]

    # ----------------------------------------------------------------- #
    # Scheduler core (all under self._lock)
    # ----------------------------------------------------------------- #

    def _store_get(self, cell: _Cell) -> Optional[SimulationResult]:
        if self.store is None or cell.store_key is None:
            return None
        return self.store.get(cell.store_key)

    def _reap_expired_locked(self) -> None:
        now = time.monotonic()
        expired = [
            (cell_id, owner)
            for cell_id, (owner, deadline) in self._leases.items()
            if deadline <= now
        ]
        for cell_id, owner in expired:
            del self._leases[cell_id]
            name = self._conn_names.get(owner, f"connection {owner}")
            self._lose_lease_locked(
                cell_id, f"lease expired on worker {name!r} (no renewal)"
            )

    def _lose_lease_locked(self, cell_id: int, reason: str) -> None:
        """A lease was lost: requeue the cell, or quarantine it when its
        retry budget (``max_lease_losses``) is spent."""
        cell = self._cells.get(cell_id)
        if cell is None or cell.job.finished:
            return
        if cell.job.slots[cell.label][cell.index] is not None:
            return  # completed by another upload; nothing was lost
        cell.losses += 1
        cell.loss_log.append(reason)
        if cell.losses >= self.max_lease_losses:
            self._quarantine_locked(cell)
            return
        cell.job.requeued += 1
        self.stats["requeued"] += 1
        self._pending.appendleft(cell_id)
        self.log(
            f"cell {cell_id} ({cell.label} / {cell.trace_name}): {reason}; "
            f"requeued (loss {cell.losses}/{self.max_lease_losses})"
        )
        if self.events is not None:
            self.events.emit(
                "cell_requeued",
                cell=cell_id,
                job=cell.job.job_id,
                label=cell.label,
                trace=cell.trace_name,
                losses=cell.losses,
                reason=reason,
            )
        self._notify_progress_locked(cell.job)

    def _quarantine_locked(self, cell: _Cell) -> None:
        """Retry budget exhausted: park the cell with its attributed error."""
        job = cell.job
        history = "; ".join(cell.loss_log)
        message = (
            f"quarantined after {cell.losses} lost lease(s) "
            f"[{history}] -- the cell likely crashes or stalls every "
            f"worker that runs it"
        )
        job.quarantined[(cell.label, cell.index)] = message
        self.stats["quarantined"] += 1
        self.log(
            f"cell {cell.cell_id} ({cell.label} / {cell.trace_name}): {message}"
        )
        if self.events is not None:
            self.events.emit(
                "cell_quarantined",
                cell=cell.cell_id,
                job=job.job_id,
                label=cell.label,
                trace=cell.trace_name,
                losses=cell.losses,
            )
        self._notify_progress_locked(job)
        if job.done + len(job.quarantined) >= job.total:
            self.log(
                f"job {job.job_id}: settled with "
                f"{len(job.quarantined)} quarantined cell(s)"
            )
            self._settle_locked(job)

    def _settle_locked(self, job: SweepJob) -> None:
        """Mark a job settled (complete, failed or quarantine-settled)."""
        job._event.set()
        if self.events is not None:
            self.events.emit(
                "job_settled",
                job=job.job_id,
                done=job.done,
                total=job.total,
                error=job.error,
                quarantined=len(job.quarantined),
            )
        if self.journal is not None:
            try:
                self.journal.record_settled(job.job_id)
            except OSError as error:
                self.log(f"journal: cannot record job settlement: {error}")
        self._cond.notify_all()

    def _notify_progress_locked(self, job: SweepJob) -> None:
        """Invoke the progress hook; stats-aware hooks (``stats_aware``
        attribute, e.g. :class:`~repro.common.progress.ProgressPrinter`)
        additionally receive requeue/retry/quarantine counters."""
        if self.progress is None:
            return
        if getattr(self.progress, "stats_aware", False):
            self.progress(job.done, job.total, stats=job.stats())
        else:
            self.progress(job.done, job.total)

    def _renew(self, owner: int, cell_ids: Sequence[int]) -> Tuple[List[int], List[int]]:
        """Extend the leases ``owner`` still holds; the second list is the
        cells it no longer does (expired and requeued, or completed by a
        faster upload) so the worker can stop renewing them."""
        renewed: List[int] = []
        lost: List[int] = []
        with self._cond:
            self._reap_expired_locked()
            deadline = time.monotonic() + self.lease_timeout
            for cell_id in cell_ids:
                lease = self._leases.get(cell_id)
                if lease is not None and lease[0] == owner:
                    self._leases[cell_id] = (owner, deadline)
                    renewed.append(cell_id)
                else:
                    lost.append(cell_id)
        return renewed, lost

    def _lease(self, owner: int, max_cells: int = 1) -> Tuple[str, List[_Cell]]:
        """One scheduling decision: ``("work", cells)``, ``("wait", [])``
        or ``("shutdown", [])``.

        With ``max_cells > 1`` the grant has **trace affinity**: after the
        first leasable cell anchors the grant, up to
        ``min(max_cells, batch) - 1`` more pending cells sharing its trace
        fingerprint and per-PC flag are leased in the same grant (queue
        order preserved for the rest), so the worker simulates the whole
        grant over one decoded trace in one batched traversal.  The lease
        deadline scales with the grant: an N-cell grant only uploads after
        one shared traversal of roughly N cells' work, so every cell in it
        gets ``N * lease_timeout`` -- ``lease_timeout`` keeps meaning "time
        budget per cell", independent of batching.
        """
        limit = max(1, min(int(max_cells), self.batch))
        with self._cond:
            if self._stopping.is_set():
                return ("shutdown", [])
            self._reap_expired_locked()
            owner_info = self._conn_info.get(owner)
            low_disk = bool(owner_info and owner_info.get("low_disk"))
            shed = 0
            granted: List[_Cell] = []
            anchor: Optional[Tuple[str, bool]] = None
            passed_over: List[int] = []
            while self._pending and len(granted) < limit:
                cell_id = self._pending.popleft()
                cell = self._cells.get(cell_id)
                if cell is None:  # job released after settling
                    continue
                if cell.job.finished:  # failed job: drop its queued cells
                    continue
                if cell.job.slots[cell.label][cell.index] is not None:
                    continue  # completed while queued (duplicate requeue)
                if low_disk and cell.trace_fingerprint in self._chunked:
                    # This worker's spool disk is low: chunked-trace cells
                    # (whose chunks land in that spool) are withheld until
                    # its renew frames report the pressure cleared.  The
                    # cell stays queued for any other worker.
                    passed_over.append(cell_id)
                    shed += 1
                    continue
                affinity = (cell.trace_fingerprint, cell.job.track_per_pc)
                if anchor is not None and affinity != anchor:
                    # A different trace: not part of this grant.  Skipped
                    # cells go back to the queue front afterwards -- the
                    # store check below is deliberately not run for them
                    # (one disk probe per *granted* cell, not per scan).
                    passed_over.append(cell_id)
                    continue
                stored = self._store_get(cell)
                if stored is not None:  # a concurrent writer beat us to it
                    self._complete_locked(cell, stored, persist=False)
                    continue
                anchor = affinity
                granted.append(cell)
            for cell_id in reversed(passed_over):
                self._pending.appendleft(cell_id)
            if shed:
                self._metric_lease_shed.inc(shed)
                if owner_info is not None and not owner_info.get("shed_logged"):
                    # One event per low-disk episode, not per 0.25s poll.
                    owner_info["shed_logged"] = True
                    name = self._conn_names.get(owner, f"connection {owner}")
                    self.log(
                        f"worker {name!r}: withholding chunked-trace cells "
                        f"(low disk)"
                    )
                    if self.events is not None:
                        self.events.emit(
                            "lease_shed_low_disk", worker=name, cells=shed
                        )
            if granted:
                now = time.monotonic()
                deadline = now + self.lease_timeout * len(granted)
                for cell in granted:
                    self._leases[cell.cell_id] = (owner, deadline)
                    cell.granted_at = now
                    if cell.losses:
                        cell.job.retried += 1
                        self.stats["retried"] += 1
                return ("work", granted)
            return ("wait", [])

    def _complete(
        self,
        cell_id: int,
        result: SimulationResult,
        owner: int,
        timings: Optional[Dict[str, Any]] = None,
        batch: Any = 1,
    ) -> bool:
        """Accept an uploaded result; ``False`` when it was a duplicate.

        ``timings``/``batch`` mirror the additive keys a worker may attach
        to its result frame (worker-measured phase walls); accepted cells
        are recorded into the dist timing artifact with a coordinator-side
        ``total`` (lease grant to accepted upload) added.
        """
        record: Optional[Dict[str, Any]] = None
        with self._cond:
            cell = self._cells.get(cell_id)
            if cell is None:
                return False
            self._leases.pop(cell_id, None)
            if cell.job.slots[cell.label][cell.index] is not None:
                self._metric_duplicates.inc()
                return False  # first upload won; drop the duplicate
            accepted = self._complete_locked(cell, result)
            if accepted:
                self._metric_results.inc()
                if self.timings is not None:
                    phases = {
                        str(name): float(value)
                        for name, value in (timings or {}).items()
                        if isinstance(value, (int, float))
                    }
                    if cell.granted_at is not None:
                        phases["total"] = max(
                            0.0, time.monotonic() - cell.granted_at
                        )
                    if phases:
                        record = {
                            "label": cell.label,
                            "trace": cell.trace_name,
                            "phases": phases,
                            "batch": batch if isinstance(batch, int) and batch >= 1 else 1,
                        }
        # The artifact write happens outside the scheduler lock: a slow
        # disk must never stall lease grants or renewals.
        if record is not None:
            self.timings.record(backend="dist", **record)
        return accepted

    def _complete_locked(
        self, cell: _Cell, result: SimulationResult, persist: bool = True
    ) -> bool:
        # Stored cells may carry the display name of whichever run wrote
        # them; results are normalised to this sweep's label.
        result.predictor_name = cell.label
        cell.job.slots[cell.label][cell.index] = result
        cell.job.done += 1
        self.cells_completed += 1
        self._completions.append(time.monotonic())
        # A late result for a not-yet-settled quarantined cell un-poisons
        # it -- a real result always beats an attributed failure.
        cell.job.quarantined.pop((cell.label, cell.index), None)
        if persist and self.store is not None and cell.store_key is not None:
            try:
                self.store.put(
                    cell.store_key,
                    result,
                    label=cell.label,
                    trace_fingerprint=cell.trace_fingerprint,
                    spec=cell.spec_dict,
                )
            except diskguard.DiskPressureError as error:
                # Best-effort still, but a shed persist is worth one log
                # line per episode -- the sweep completes with the cells
                # held in memory and an empty (or partial) store.
                if self.store.writes_shed == 1:
                    self.log(f"store: shedding result persists ({error})")
                    if self.events is not None:
                        self.events.emit(
                            "store_write_shed_disk_critical", key=cell.store_key
                        )
            except (OSError, TypeError, ValueError):
                pass  # an unwritable store must not fail the sweep
        self._notify_progress_locked(cell.job)
        if cell.job.done + len(cell.job.quarantined) >= cell.job.total:
            self.log(f"job {cell.job.job_id}: complete ({cell.job.done} cells)")
            self._settle_locked(cell.job)
        self._cond.notify_all()
        return True

    def _fail_job(self, cell_id: int, message: str) -> None:
        """A cell is unbuildable: the whole job fails fast."""
        with self._cond:
            cell = self._cells.get(cell_id)
            if cell is None or cell.job.finished:
                return
            if cell.job.slots[cell.label][cell.index] is not None:
                return  # a stale failure for a cell another worker completed
            self._leases.pop(cell_id, None)
            job = cell.job
            job.error = (
                f"cell {cell_id} ({cell.label} / {cell.trace_name}) failed: {message}"
            )
            self.log(f"job {job.job_id}: failed -- {job.error}")
            self._settle_locked(job)

    def release_job(self, job: SweepJob) -> None:
        """Drop a settled job's scheduler state (a long-lived service must
        not grow with every job it has ever served).

        The job object itself — its slots, :meth:`SweepJob.runs` — stays
        valid for the caller; only the coordinator's cell map, leases and
        now-unreferenced trace payloads are pruned.  Submitter
        connections call this after answering; ``repro serve`` sweeps
        exit anyway.
        """
        with self._cond:
            self._jobs.pop(job.job_id, None)
            released = [
                cell_id for cell_id, cell in self._cells.items()
                if cell.job is job
            ]
            for cell_id in released:
                del self._cells[cell_id]
                self._leases.pop(cell_id, None)
            live = {cell.trace_fingerprint for cell in self._cells.values()}
            for fingerprint in [fp for fp in self._traces if fp not in live]:
                del self._traces[fingerprint]
            for fingerprint in [fp for fp in self._chunked if fp not in live]:
                del self._chunked[fingerprint]
            self._cond.notify_all()

    def _release_owner(self, owner: int) -> None:
        """Requeue (or quarantine) every cell the dead connection held."""
        with self._cond:
            held = [
                cell_id for cell_id, (held_by, _) in self._leases.items()
                if held_by == owner
            ]
            name = self._conn_names.pop(owner, f"connection {owner}")
            for cell_id in held:
                del self._leases[cell_id]
                self._lose_lease_locked(
                    cell_id, f"worker {name!r} died mid-lease"
                )
            if held:
                self.log(
                    f"worker {name!r} died holding {len(held)} lease(s)"
                )
            self._cond.notify_all()

    # ----------------------------------------------------------------- #
    # Status snapshots (read-only; served by repro.obs.http)
    # ----------------------------------------------------------------- #

    def _touch(self, conn_id: int) -> None:
        """Stamp a connection's last-seen time (any inbound frame)."""
        with self._lock:
            info = self._conn_info.get(conn_id)
            if info is not None:
                info["last_seen"] = time.monotonic()

    def _rate_locked(self, now: float, window: float = 60.0) -> float:
        """Recent completion rate: cells/s over at most ``window`` seconds
        of the completion ring (0.0 with fewer than two samples)."""
        stamps = [stamp for stamp in self._completions if now - stamp <= window]
        if len(stamps) < 2:
            return 0.0
        span = stamps[-1] - stamps[0]
        if span <= 1e-9:
            return 0.0
        return (len(stamps) - 1) / span

    def status_snapshot(self) -> Dict[str, Any]:
        """One JSON-safe view of overall service state (``/status``)."""
        now = time.monotonic()
        with self._lock:
            jobs_total = len(self._jobs)
            jobs_active = sum(
                1 for job in self._jobs.values() if not job.finished
            )
            cells_total = sum(job.total for job in self._jobs.values())
            cells_done = sum(job.done for job in self._jobs.values())
            rate = self._rate_locked(now)
            snapshot = {
                "uptime_seconds": (
                    now - self.started_mono if self.started_mono is not None else None
                ),
                "started": self.started_wall,
                "protocol": protocol.PROTOCOL_VERSION,
                "jobs_total": jobs_total,
                "jobs_active": jobs_active,
                "cells_total": cells_total,
                "cells_done": cells_done,
                "cells_pending": len(self._pending),
                "cells_leased": len(self._leases),
                "cells_completed_lifetime": self.cells_completed,
                "cells_per_second": rate,
                "eta_seconds": (
                    (cells_total - cells_done) / rate
                    if rate > 0 and cells_total > cells_done
                    else None
                ),
                "stats": dict(self.stats),
                "workers": sum(
                    1
                    for info in self._conn_info.values()
                    if info["role"] == "worker"
                ),
                "workers_low_disk": sum(
                    1
                    for info in self._conn_info.values()
                    if info["role"] == "worker" and info.get("low_disk")
                ),
                "connections": len(self._conn_info),
                "store": str(self.store.root) if self.store is not None else None,
            }
        return snapshot

    def jobs_snapshot(self) -> List[Dict[str, Any]]:
        """Per-job progress records (``/jobs``), in admission order."""
        with self._lock:
            return [
                {
                    "job": job.job_id,
                    "total": job.total,
                    "done": job.done,
                    "finished": job.finished,
                    "error": job.error,
                    "requeued": job.requeued,
                    "retried": job.retried,
                    "quarantined": len(job.quarantined),
                    "labels": list(job.labels),
                    "traces": len(job.trace_names),
                    "track_per_pc": job.track_per_pc,
                }
                for job in sorted(self._jobs.values(), key=lambda j: j.job_id)
            ]

    def workers_snapshot(self) -> List[Dict[str, Any]]:
        """Per-connection worker health (``/workers``): lease counts,
        cells completed over this connection, seconds since last frame."""
        now = time.monotonic()
        with self._lock:
            leases_by_owner: Dict[int, int] = {}
            for owner, _ in self._leases.values():
                leases_by_owner[owner] = leases_by_owner.get(owner, 0) + 1
            return [
                {
                    "connection": conn_id,
                    "name": info["name"],
                    "connected_seconds": now - info["connected_mono"],
                    "last_seen_seconds": now - info["last_seen"],
                    "leases": leases_by_owner.get(conn_id, 0),
                    "completed": info["completed"],
                    "low_disk": bool(info.get("low_disk")),
                }
                for conn_id, info in sorted(self._conn_info.items())
                if info["role"] == "worker"
            ]

    # ----------------------------------------------------------------- #
    # Connection handling
    # ----------------------------------------------------------------- #

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            # Bounded idle timeout: a half-open peer (silent but never
            # closing) times out the blocking read and is dropped like a
            # dead connection, instead of pinning this thread forever.
            sock.settimeout(self.conn_idle_timeout)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn_id = next(self._conn_ids)
            now = time.monotonic()
            with self._lock:
                self._open_sockets[conn_id] = sock
                self._conn_info[conn_id] = {
                    "name": f"conn-{conn_id}",
                    "role": "unknown",
                    "connected_mono": now,
                    "last_seen": now,
                    "completed": 0,
                    "low_disk": False,
                }
            self._metric_connections.inc()
            self._conn_threads = [
                thread for thread in self._conn_threads if thread.is_alive()
            ]
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn_id, sock),
                name=f"repro-dist-conn-{conn_id}",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn_id: int, sock: socket.socket) -> None:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            try:
                frame = protocol.read_frame(rfile)
            except ProtocolError as error:
                self._send_error(wfile, str(error))
                return
            if frame is None:
                return
            if frame["type"] == "hello":
                self._serve_worker(conn_id, frame, rfile, wfile)
            elif frame["type"] == "submit":
                self._serve_submitter(conn_id, frame, wfile)
            else:
                self._send_error(
                    wfile, f"expected hello or submit, got {frame['type']!r}"
                )
        finally:
            self._release_owner(conn_id)
            with self._lock:
                self._open_sockets.pop(conn_id, None)
                self._conn_info.pop(conn_id, None)
            for stream in (wfile, rfile):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass

    def _send_error(self, wfile, message: str) -> None:
        try:
            protocol.write_frame(wfile, {"type": "error", "message": message})
        except (ProtocolError, OSError, ValueError):
            pass  # best effort: the peer may already be gone

    def _serve_worker(self, conn_id: int, hello: Dict[str, Any], rfile, wfile) -> None:
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            self._send_error(
                wfile,
                f"protocol mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, worker sent {hello.get('protocol')!r}",
            )
            return
        worker_name = str(hello.get("worker") or f"conn-{conn_id}")
        # "low_disk" is an additive version-1 hello/renew key; absent
        # means a pre-diskguard worker (treated as having headroom).
        low_disk = bool(hello.get("low_disk"))
        with self._lock:
            self._conn_names[conn_id] = worker_name
            info = self._conn_info.get(conn_id)
            if info is not None:
                info["name"] = worker_name
                info["role"] = "worker"
                info["low_disk"] = low_disk
        self.log(f"worker {worker_name} connected (connection {conn_id})")
        if self.events is not None:
            self.events.emit(
                "worker_connected",
                worker=worker_name,
                connection=conn_id,
                low_disk=low_disk,
            )
            if low_disk:
                self.events.emit(
                    "worker_low_disk", worker=worker_name, low_disk=True
                )
        protocol.write_frame(
            wfile,
            {
                "type": "welcome",
                "protocol": protocol.PROTOCOL_VERSION,
                "lease_timeout": self.lease_timeout,
                # Additive capability flag: workers that understand it
                # heartbeat with "renew" frames; older workers ignore it.
                "renew": True,
            },
        )
        try:
            while True:
                frame = protocol.read_frame(rfile)
                if frame is None:
                    break
                self._touch(conn_id)
                kind = frame["type"]
                if kind == "lease":
                    if self._stopping.is_set():
                        # Graceful shutdown: tell the worker instead of
                        # slamming the socket, so it exits rather than
                        # entering its reconnect loop.
                        protocol.write_frame(wfile, {"type": "shutdown"})
                        break
                    max_cells = frame.get("max_cells", 1)
                    if not isinstance(max_cells, int) or max_cells < 1:
                        max_cells = 1
                    state, cells = self._lease(conn_id, max_cells)
                    if state == "work":
                        if "max_cells" in frame:
                            # A batching worker asked; it understands the
                            # multi-cell grant shape.
                            protocol.write_frame(
                                wfile,
                                {
                                    "type": "work",
                                    "items": [cell.work_item() for cell in cells],
                                },
                            )
                        else:
                            protocol.write_frame(
                                wfile, {"type": "work", "item": cells[0].work_item()}
                            )
                    elif state == "wait":
                        protocol.write_frame(wfile, {"type": "wait", "delay": 0.25})
                    else:
                        protocol.write_frame(wfile, {"type": "shutdown"})
                        break
                elif kind == "renew":
                    cell_ids = frame.get("cells")
                    if not isinstance(cell_ids, list) or not all(
                        isinstance(cell_id, int) for cell_id in cell_ids
                    ):
                        raise ProtocolError("renew frame needs a 'cells' id list")
                    if "low_disk" in frame:
                        # Heartbeat refresh of the worker's disk state;
                        # transitions are logged once per episode.
                        low_disk = bool(frame.get("low_disk"))
                        changed = False
                        with self._lock:
                            info = self._conn_info.get(conn_id)
                            if info is not None and info["low_disk"] != low_disk:
                                info["low_disk"] = low_disk
                                info["shed_logged"] = False
                                changed = True
                        if changed:
                            self.log(
                                f"worker {worker_name}: low_disk -> {low_disk}"
                            )
                            if self.events is not None:
                                self.events.emit(
                                    "worker_low_disk",
                                    worker=worker_name,
                                    low_disk=low_disk,
                                )
                    renewed, lost = self._renew(conn_id, cell_ids)
                    protocol.write_frame(
                        wfile,
                        {"type": "renewed", "cells": renewed, "lost": lost},
                    )
                elif kind == "fetch_trace":
                    self._metric_traces_served.inc()
                    fingerprint = frame.get("fingerprint")
                    payload = self._traces.get(fingerprint)
                    if payload is not None:
                        protocol.write_frame(
                            wfile,
                            {
                                "type": "trace",
                                "fingerprint": fingerprint,
                                "data": payload,
                            },
                        )
                    else:
                        chunked = self._chunked.get(fingerprint)
                        if chunked is None:
                            raise ProtocolError(f"unknown trace {fingerprint!r}")
                        # Chunked trace: ship the manifest; the worker
                        # pulls chunks with fetch_trace_chunk frames.
                        protocol.write_frame(
                            wfile,
                            {
                                "type": "trace",
                                "fingerprint": fingerprint,
                                "manifest": chunked.manifest,
                            },
                        )
                elif kind == "fetch_trace_chunk":
                    self._metric_chunks_served.inc()
                    fingerprint = frame.get("fingerprint")
                    index = frame.get("chunk")
                    chunked = self._chunked.get(fingerprint)
                    if chunked is None:
                        raise ProtocolError(
                            f"unknown chunked trace {fingerprint!r}"
                        )
                    if (
                        not isinstance(index, int)
                        or not 0 <= index < chunked.chunk_count
                    ):
                        raise ProtocolError(
                            f"chunk index {index!r} out of range for trace "
                            f"{fingerprint!r} ({chunked.chunk_count} chunks)"
                        )
                    try:
                        # Read per request: the coordinator never holds
                        # more than one chunk's bytes in memory.
                        data = chunked.chunk_path(index).read_bytes()
                    except OSError as error:
                        raise ProtocolError(
                            f"chunk {index} of trace {fingerprint!r} is "
                            f"unreadable: {error}"
                        ) from None
                    protocol.write_frame(
                        wfile,
                        {
                            "type": "trace_chunk",
                            "fingerprint": fingerprint,
                            "chunk": index,
                            "data": protocol.encode_chunk(data),
                        },
                    )
                elif kind == "result":
                    cell_id = frame.get("cell")
                    try:
                        result = result_from_dict(frame["result"])
                    except (KeyError, TypeError, ValueError) as error:
                        raise ProtocolError(f"malformed result: {error}") from None
                    if not isinstance(cell_id, int):
                        raise ProtocolError("result frame without a cell id")
                    # "timings" / "batch" are additive version-1 keys: a
                    # worker may attach its measured phase walls; absent
                    # keys mean a pre-instrumentation worker.
                    frame_timings = frame.get("timings")
                    accepted = self._complete(
                        cell_id,
                        result,
                        conn_id,
                        timings=(
                            frame_timings
                            if isinstance(frame_timings, dict)
                            else None
                        ),
                        batch=frame.get("batch", 1),
                    )
                    if accepted:
                        with self._lock:
                            info = self._conn_info.get(conn_id)
                            if info is not None:
                                info["completed"] += 1
                    protocol.write_frame(
                        wfile, {"type": "ack", "cell": cell_id, "accepted": accepted}
                    )
                elif kind == "failure":
                    cell_id = frame.get("cell")
                    if not isinstance(cell_id, int):
                        raise ProtocolError("failure frame without a cell id")
                    self._fail_job(cell_id, str(frame.get("message", "unknown error")))
                    protocol.write_frame(
                        wfile, {"type": "ack", "cell": cell_id, "accepted": False}
                    )
                else:
                    raise ProtocolError(f"unexpected frame type {kind!r}")
        except protocol.ConnectionClosed:
            pass  # the worker went away; its leases are requeued below
        except ProtocolError as error:
            self.log(f"worker {worker_name}: protocol error: {error}")
            self._send_error(wfile, str(error))
        except OSError:
            pass
        self.log(f"worker {worker_name} disconnected")
        if self.events is not None:
            self.events.emit(
                "worker_disconnected", worker=worker_name, connection=conn_id
            )

    def _serve_submitter(self, conn_id: int, frame: Dict[str, Any], wfile) -> None:
        try:
            job = self._admit_remote(frame)
        except (ProtocolError, ValueError, TypeError, KeyError) as error:
            self._send_error(wfile, f"bad submit: {error}")
            return
        self.log(f"job {job.job_id} submitted by connection {conn_id}")
        with self._lock:
            info = self._conn_info.get(conn_id)
            if info is not None:
                info["role"] = "submitter"
        try:
            protocol.write_frame(
                wfile,
                {
                    "type": "accepted",
                    "job": job.job_id,
                    "total": job.total,
                    "done": job.done,
                },
            )
            last_state = (-1, ())
            while True:
                finished = job.wait(timeout=0.2)
                # Degradation counters travel in every progress frame
                # (additive keys; pre-renewal clients simply ignore them)
                # so a submitter watching --progress sees requeues and
                # quarantines while they happen, not post mortem.
                stats = job.stats()
                state = (job.done, tuple(sorted(stats.items())))
                if state != last_state and not finished:
                    last_state = state
                    frame_out = {
                        "type": "progress",
                        "job": job.job_id,
                        "done": job.done,
                        "total": job.total,
                    }
                    frame_out.update(stats)
                    protocol.write_frame(wfile, frame_out)
                if finished:
                    reply: Dict[str, Any] = {
                        "type": "job_done",
                        "job": job.job_id,
                        "done": job.done,
                        "total": job.total,
                    }
                    reply.update(job.stats())
                    if job.error is not None:
                        reply["error"] = job.error
                    else:
                        reply["cells"] = [
                            {
                                "label": label,
                                "index": index,
                                "result": result_to_dict(result),
                            }
                            for label, index, result in job.completed_cells()
                        ]
                        if job.quarantined:
                            reply["quarantined_cells"] = [
                                {"label": label, "index": index, "error": message}
                                for (label, index), message in sorted(
                                    job.quarantined.items()
                                )
                            ]
                    protocol.write_frame(wfile, reply)
                    break
                if self._stopping.is_set():
                    self._send_error(wfile, "coordinator is shutting down")
                    break
        except (ProtocolError, OSError, ValueError):
            self.log(
                f"submitter of job {job.job_id} disconnected; job keeps running"
            )
        if job.finished:
            self.release_job(job)

    def _admit_remote(self, frame: Dict[str, Any]) -> SweepJob:
        """Admit a job from a ``submit`` frame (payloads are validated)."""
        if frame.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol mismatch: coordinator speaks "
                f"{protocol.PROTOCOL_VERSION}, submitter sent {frame.get('protocol')!r}"
            )
        raw_specs = frame.get("specs")
        raw_traces = frame.get("traces")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ProtocolError("submit needs a non-empty 'specs' list")
        if not isinstance(raw_traces, list) or not raw_traces:
            raise ProtocolError("submit needs a non-empty 'traces' list")
        entries = []
        for raw in raw_specs:
            if not isinstance(raw, dict):
                raise ProtocolError("each spec entry must be an object")
            label = raw.get("label")
            spec_dict = raw.get("spec")
            profile_payload = raw.get("profile")
            if not isinstance(label, str) or not label:
                raise ProtocolError("spec entry without a label")
            if not isinstance(spec_dict, dict) or not isinstance(profile_payload, dict):
                raise ProtocolError(f"spec entry {label!r} is malformed")
            PredictorSpec.from_dict(spec_dict)  # raises ValueError on junk
            protocol.profile_from_payload(profile_payload)
            entries.append(
                {"label": label, "spec": spec_dict, "profile": profile_payload}
            )
        traces: List[Trace] = []
        payloads: Dict[str, str] = {}
        chunked: Dict[str, ChunkedTrace] = {}
        for raw in raw_traces:
            if isinstance(raw, dict) and isinstance(raw.get("chunked"), str):
                # A coordinator-local chunked trace referenced by manifest
                # directory -- written by the journal (and only meaningful
                # on this host, which is where the journal replays).
                try:
                    trace = load_chunked_trace(raw["chunked"])
                except (OSError, ValueError) as error:
                    raise ProtocolError(
                        f"chunked trace {raw['chunked']!r} is unreadable: "
                        f"{error}"
                    ) from None
                traces.append(trace)
                chunked[trace.fingerprint()] = trace
                continue
            if not isinstance(raw, str):
                raise ProtocolError(
                    "each trace must be a base64 string or a "
                    "{'chunked': <manifest dir>} reference"
                )
            trace = protocol.decode_trace(raw)
            traces.append(trace)
            payloads[trace.fingerprint()] = raw
        cells = None
        if frame.get("cells") is not None:
            if not isinstance(frame["cells"], list):
                raise ProtocolError("'cells' must be a list of [label, index] pairs")
            try:
                cells = [(str(label), int(index)) for label, index in frame["cells"]]
            except (TypeError, ValueError) as error:
                raise ProtocolError(f"malformed 'cells' entry: {error}") from None
        return self._admit(
            entries, traces, payloads, bool(frame.get("track_per_pc")), cells,
            chunked,
        )
