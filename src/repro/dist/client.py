"""Client side of the distributed sweep service.

Two entry points:

* :func:`submit_sweep` -- upload a whole sweep (specs x traces) to a
  running coordinator, stream its progress, and return the per-cell
  results.  ``repro submit`` is a thin wrapper.
* :class:`DistBackend` -- the pluggable execution backend
  :class:`~repro.sim.runner.SuiteRunner` and
  :class:`~repro.api.experiment.Experiment` accept (``backend=``): the
  runner's batch of missing cells is submitted instead of being fanned
  over the local process pool, so ``Experiment(...,
  backend=DistBackend("host:4780"))`` transparently runs on the cluster
  and stays bit-identical to a serial run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.api.specs import PredictorSpec
from repro.dist import protocol
from repro.dist.protocol import ProtocolError
from repro.predictors.composites import SizeProfile
from repro.sim.engine import SimulationResult
from repro.store import result_from_dict
from repro.trace.trace import Trace

__all__ = ["DistBackend", "submit_sweep", "parse_address"]

#: Results keyed by ``(label, trace index)``.
CellResults = Dict[Tuple[str, int], SimulationResult]


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Coerce ``"host:port"`` (or a ready tuple) into ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, _, port_text = str(address).rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"coordinator address needs HOST:PORT, got {address!r}")
    return host, int(port_text)


def submit_cells(
    address: Union[str, Tuple[str, int]],
    entries: Sequence[Dict[str, Any]],
    traces: Sequence[Trace],
    track_per_pc: bool = False,
    cells: Optional[Sequence[Tuple[str, int]]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    timeout: Optional[float] = None,
) -> CellResults:
    """Low-level submit: pre-resolved spec entries, explicit traces.

    ``entries`` are ``{"label", "spec", "profile"}`` dicts exactly as the
    protocol defines them; ``cells`` optionally restricts the job to a
    subset of ``(label, trace index)`` pairs.  Blocks until the job
    settles; raises ``RuntimeError`` when the coordinator reports a
    failure and :class:`ProtocolError` on wire trouble.
    """
    host, port = parse_address(address)
    frame: Dict[str, Any] = {
        "type": "submit",
        "protocol": protocol.PROTOCOL_VERSION,
        "track_per_pc": bool(track_per_pc),
        "specs": list(entries),
        "traces": [protocol.encode_trace(trace) for trace in traces],
    }
    if cells is not None:
        frame["cells"] = [[label, index] for label, index in cells]
    sock = protocol.connect(host, port, timeout=timeout)
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    try:
        protocol.write_frame(wfile, frame)
        accepted = protocol.expect(protocol.read_frame(rfile), "accepted")
        total = int(accepted.get("total", 0))
        if progress is not None:
            progress(int(accepted.get("done", 0)), total)
        while True:
            reply = protocol.expect(
                protocol.read_frame(rfile), "progress", "job_done"
            )
            if reply["type"] == "progress":
                if progress is not None:
                    progress(int(reply.get("done", 0)), total)
                continue
            if "error" in reply:
                raise RuntimeError(f"distributed sweep failed: {reply['error']}")
            if progress is not None:
                progress(int(reply.get("done", 0)), total)
            results: CellResults = {}
            for cell in reply.get("cells", []):
                try:
                    key = (str(cell["label"]), int(cell["index"]))
                    results[key] = result_from_dict(cell["result"])
                except (KeyError, TypeError, ValueError) as error:
                    raise ProtocolError(f"malformed job_done cell: {error}") from None
            return results
    finally:
        for stream in (wfile, rfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass


def submit_sweep(
    address: Union[str, Tuple[str, int]],
    specs: Sequence[PredictorSpec],
    traces: Sequence[Trace],
    track_per_pc: bool = False,
    registry=None,
    progress: Optional[Callable[[int, int], None]] = None,
    timeout: Optional[float] = None,
) -> CellResults:
    """Submit a sweep of :class:`PredictorSpec` over ``traces``.

    Specs are resolved locally (against ``registry``), so the caller's
    registrations -- custom configurations and size profiles -- travel to
    the coordinator as self-contained payloads.
    """
    if registry is None:
        from repro.api.registry import default_registry

        registry = default_registry()
    entries = []
    for spec in specs:
        resolved = spec.resolve(registry)
        sizes = registry.resolve_profile(resolved.profile)
        entries.append(
            {
                "label": spec.label,
                "spec": resolved.to_dict(),
                "profile": protocol.profile_to_payload(sizes),
            }
        )
    return submit_cells(
        address, entries, traces,
        track_per_pc=track_per_pc, progress=progress, timeout=timeout,
    )


class DistBackend:
    """Execution backend that dispatches runner batches to a coordinator.

    Use it anywhere the local pool would run::

        backend = DistBackend("127.0.0.1:4780")
        Experiment(specs, ..., backend=backend).run()

    The runner hands over its already-resolved specs, profiles and the
    exact set of missing cells; results come back per cell and are merged
    (and persisted to a configured store) exactly like pool results, so
    distributed runs are bit-identical to serial ones.
    """

    name = "dist"

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: Optional[float] = None,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistBackend({self.address[0]}:{self.address[1]})"

    def execute(
        self,
        specs: Mapping[str, PredictorSpec],
        sizes: Mapping[str, SizeProfile],
        traces: Sequence[Trace],
        pending: Sequence[Tuple[str, int]],
        track_per_pc: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CellResults:
        """Run ``pending`` ``(label, trace index)`` cells remotely."""
        entries = [
            {
                "label": label,
                "spec": spec.to_dict(),
                "profile": protocol.profile_to_payload(sizes[label]),
            }
            for label, spec in specs.items()
        ]
        return submit_cells(
            self.address, entries, traces,
            track_per_pc=track_per_pc, cells=pending,
            progress=progress, timeout=self.timeout,
        )
