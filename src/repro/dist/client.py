"""Client side of the distributed sweep service.

Two entry points:

* :func:`submit_sweep` -- upload a whole sweep (specs x traces) to a
  running coordinator, stream its progress, and return the per-cell
  results.  ``repro submit`` is a thin wrapper.
* :class:`DistBackend` -- the pluggable execution backend
  :class:`~repro.sim.runner.SuiteRunner` and
  :class:`~repro.api.experiment.Experiment` accept (``backend=``): the
  runner's batch of missing cells is submitted instead of being fanned
  over the local process pool, so ``Experiment(...,
  backend=DistBackend("host:4780"))`` transparently runs on the cluster
  and stays bit-identical to a serial run.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.api.specs import PredictorSpec
from repro.dist import protocol
from repro.dist.protocol import ConnectionClosed, ProtocolError
from repro.predictors.composites import SizeProfile
from repro.sim.engine import SimulationResult
from repro.store import result_from_dict
from repro.trace.trace import Trace

__all__ = ["DistBackend", "submit_sweep", "parse_address"]

#: Results keyed by ``(label, trace index)``.
CellResults = Dict[Tuple[str, int], SimulationResult]


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Coerce ``"host:port"`` (or a ready tuple) into ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, _, port_text = str(address).rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"coordinator address needs HOST:PORT, got {address!r}")
    return host, int(port_text)


def _notify(progress, done: int, total: int, frame: Dict[str, Any]) -> None:
    """Invoke a progress callable, forwarding requeued/retried/quarantined
    stats to callables that declare ``stats_aware`` (duck-typed so plain
    ``(done, total)`` callables keep working unchanged)."""
    if progress is None:
        return
    if getattr(progress, "stats_aware", False):
        stats = {
            key: int(frame[key])
            for key in ("requeued", "retried", "quarantined")
            if isinstance(frame.get(key), int)
        }
        progress(done, total, stats=stats or None)
    else:
        progress(done, total)


def submit_cells(
    address: Union[str, Tuple[str, int]],
    entries: Sequence[Dict[str, Any]],
    traces: Sequence[Trace],
    track_per_pc: bool = False,
    cells: Optional[Sequence[Tuple[str, int]]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    timeout: Optional[float] = None,
    submit_retry: float = 10.0,
) -> CellResults:
    """Low-level submit: pre-resolved spec entries, explicit traces.

    ``entries`` are ``{"label", "spec", "profile"}`` dicts exactly as the
    protocol defines them; ``cells`` optionally restricts the job to a
    subset of ``(label, trace index)`` pairs.  Blocks until the job
    settles; raises ``RuntimeError`` when the coordinator reports a
    failure (including quarantined cells, each with its attributed error)
    and :class:`ProtocolError` on wire trouble.

    Transient connect/submit failures -- the coordinator not yet
    listening, or restarting -- are retried with jittered backoff for up
    to ``submit_retry`` seconds until the job is *accepted*.  After
    acceptance there is nothing safe to retry into (resubmitting would
    start a second job), so wire trouble then surfaces to the caller,
    whose store-backed ``--resume`` is the recovery path.
    """
    host, port = parse_address(address)
    frame: Dict[str, Any] = {
        "type": "submit",
        "protocol": protocol.PROTOCOL_VERSION,
        "track_per_pc": bool(track_per_pc),
        "specs": list(entries),
        "traces": [protocol.encode_trace(trace) for trace in traces],
    }
    if cells is not None:
        frame["cells"] = [[label, index] for label, index in cells]
    sock, rfile, wfile, accepted = _submit_until_accepted(
        host, port, frame, timeout, submit_retry
    )
    try:
        total = int(accepted.get("total", 0))
        _notify(progress, int(accepted.get("done", 0)), total, accepted)
        while True:
            reply = protocol.expect(
                protocol.read_frame(rfile), "progress", "job_done"
            )
            if reply["type"] == "progress":
                _notify(progress, int(reply.get("done", 0)), total, reply)
                continue
            if "error" in reply:
                raise RuntimeError(f"distributed sweep failed: {reply['error']}")
            _notify(progress, int(reply.get("done", 0)), total, reply)
            quarantined = reply.get("quarantined_cells")
            if quarantined:
                details = "; ".join(
                    f"({cell.get('label')}, {cell.get('index')}): {cell.get('error')}"
                    for cell in quarantined
                )
                raise RuntimeError(
                    f"distributed sweep failed: {len(quarantined)} cell(s) "
                    f"quarantined -- {details}"
                )
            results: CellResults = {}
            for cell in reply.get("cells", []):
                try:
                    key = (str(cell["label"]), int(cell["index"]))
                    results[key] = result_from_dict(cell["result"])
                except (KeyError, TypeError, ValueError) as error:
                    raise ProtocolError(f"malformed job_done cell: {error}") from None
            return results
    finally:
        for stream in (wfile, rfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass


def _submit_until_accepted(
    host: str,
    port: int,
    frame: Dict[str, Any],
    timeout: Optional[float],
    submit_retry: float,
):
    """Connect and submit until an ``accepted`` frame arrives.

    Each attempt is a fresh connection, so a half-delivered submit frame
    on a dying socket is simply abandoned -- the coordinator only admits
    (and journals) a job whose submit frame parsed completely, so retrying
    can never double-admit.
    """
    deadline = time.monotonic() + max(0.0, float(submit_retry))
    delay = 0.05
    while True:
        sock = None
        rfile = wfile = None
        try:
            sock = protocol.connect(host, port, timeout=timeout)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            protocol.write_frame(wfile, frame)
            accepted = protocol.expect(protocol.read_frame(rfile), "accepted")
            return sock, rfile, wfile, accepted
        except (OSError, ConnectionClosed) as error:
            for stream in (wfile, rfile):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"cannot submit to coordinator at {host}:{port} "
                    f"within {submit_retry:.0f}s: {error}"
                ) from None
            time.sleep(delay * (0.5 + random.random()))
            delay = min(delay * 2, 2.0)


def submit_sweep(
    address: Union[str, Tuple[str, int]],
    specs: Sequence[PredictorSpec],
    traces: Sequence[Trace],
    track_per_pc: bool = False,
    registry=None,
    progress: Optional[Callable[[int, int], None]] = None,
    timeout: Optional[float] = None,
    submit_retry: float = 10.0,
) -> CellResults:
    """Submit a sweep of :class:`PredictorSpec` over ``traces``.

    Specs are resolved locally (against ``registry``), so the caller's
    registrations -- custom configurations and size profiles -- travel to
    the coordinator as self-contained payloads.
    """
    if registry is None:
        from repro.api.registry import default_registry

        registry = default_registry()
    entries = []
    for spec in specs:
        resolved = spec.resolve(registry)
        sizes = registry.resolve_profile(resolved.profile)
        entries.append(
            {
                "label": spec.label,
                "spec": resolved.to_dict(),
                "profile": protocol.profile_to_payload(sizes),
            }
        )
    return submit_cells(
        address, entries, traces,
        track_per_pc=track_per_pc, progress=progress, timeout=timeout,
        submit_retry=submit_retry,
    )


class DistBackend:
    """Execution backend that dispatches runner batches to a coordinator.

    Use it anywhere the local pool would run::

        backend = DistBackend("127.0.0.1:4780")
        Experiment(specs, ..., backend=backend).run()

    The runner hands over its already-resolved specs, profiles and the
    exact set of missing cells; results come back per cell and are merged
    (and persisted to a configured store) exactly like pool results, so
    distributed runs are bit-identical to serial ones.
    """

    name = "dist"

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        timeout: Optional[float] = None,
    ) -> None:
        self.address = parse_address(address)
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistBackend({self.address[0]}:{self.address[1]})"

    def execute(
        self,
        specs: Mapping[str, PredictorSpec],
        sizes: Mapping[str, SizeProfile],
        traces: Sequence[Trace],
        pending: Sequence[Tuple[str, int]],
        track_per_pc: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CellResults:
        """Run ``pending`` ``(label, trace index)`` cells remotely."""
        entries = [
            {
                "label": label,
                "spec": spec.to_dict(),
                "profile": protocol.profile_to_payload(sizes[label]),
            }
            for label, spec in specs.items()
        ]
        return submit_cells(
            self.address, entries, traces,
            track_per_pc=track_per_pc, cells=pending,
            progress=progress, timeout=self.timeout,
        )
