"""Fault injection for the distributed sweep path.

The dist code is littered with *named fault points* -- places where, in
production, the process crashes, the network drops, or a frame gets
mangled.  This module turns each of those points into something a test
(or a CI chaos job) can trigger on demand, so the fault-tolerance
machinery (lease renewal, requeue, quarantine, the coordinator journal,
worker reconnect) is exercised against *real* injected faults rather
than hand-mocked ones.

When no faults are configured -- the overwhelmingly common case -- every
fault point is a single attribute check (``_FAULTS is None``), so the
harness costs nothing on production paths.

Configuration comes from the ``REPRO_CHAOS`` environment variable (so it
reaches ``repro worker`` subprocesses and their pool children without
any plumbing) or programmatically via :func:`configure` in tests::

    REPRO_CHAOS="worker.simulate.kill:1:1,worker.upload.corrupt:0.5"

Each comma-separated entry is ``point[:probability[:limit[:value]]]``:

``point``
    One of the :data:`FAULT_POINTS` names below.
``probability``
    Chance in [0, 1] that an *ask* fires the fault (default 1).  Draws
    come from a dedicated RNG seeded by ``REPRO_CHAOS_SEED`` (default 0)
    so chaos runs are reproducible.
``limit``
    Maximum number of firings, per process (default 0 = unlimited).
    ``worker.simulate.kill:1:1`` kills the worker exactly once.
``value``
    Fault-specific float parameter -- seconds for the ``delay`` faults,
    ignored elsewhere.

The ``worker.*`` points (process/network faults on the worker, where
they physically originate):

========================== ==================================================
``worker.lease.drop``      drop the TCP connection right after a work grant
                           (the coordinator must requeue the leased cells)
``worker.frame.delay``     sleep ``value`` seconds before sending a frame
                           (a slow network between worker and coordinator)
``worker.simulate.delay``  sleep ``value`` seconds mid-simulation (a slow
                           cell; heartbeat renewal must keep its lease)
``worker.simulate.kill``   hard-exit the worker process mid-simulation
                           (``os._exit``; nothing is flushed or uploaded)
``worker.upload.corrupt``  mangle the bytes of a result frame on the wire
                           (the coordinator must reject it and requeue)
``worker.upload.duplicate`` send a result frame twice (the second upload
                           must be acknowledged but ignored)
========================== ==================================================

The filesystem-boundary points (storage faults; they fire in whichever
process owns the touched file -- coordinator, worker or a serial run):

========================== ==================================================
``store.write_enospc``     raise ``ENOSPC`` from a result-record write,
                           after the scratch file exists but before the
                           atomic rename (the store must leave no partial
                           record and the sweep must still converge)
``store.read_corrupt``     hand the record reader flipped payload bytes (a
                           bit-rotted record; the checksum must catch it
                           and the cell must be recomputed, never served)
``journal.torn_tail``      append only a truncated, newline-less prefix of
                           a journal record and fail the append (a crash
                           mid-append; replay must skip the torn line and
                           the next append must heal the tail)
``spool.enospc``           raise ``ENOSPC`` from a worker trace-spool
                           chunk write (the worker must fail the lease
                           cleanly so the coordinator requeues it)
========================== ==================================================

Faults deliberately produce only *recoverable* damage: every one of them
maps to a failure mode the service guarantees to survive with
bit-identical results (``tests/test_dist_chaos.py`` asserts exactly
that).
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "FAULT_POINTS",
    "active",
    "configure",
    "delay",
    "kill_process",
    "should",
]

ENV_VAR = "REPRO_CHAOS"
SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Every fault point the dist code compiles in.  ``configure`` rejects
#: unknown names so a typo in a CI job fails loudly instead of silently
#: injecting nothing.
FAULT_POINTS = frozenset(
    {
        "worker.lease.drop",
        "worker.frame.delay",
        "worker.simulate.delay",
        "worker.simulate.kill",
        "worker.upload.corrupt",
        "worker.upload.duplicate",
        "store.write_enospc",
        "store.read_corrupt",
        "journal.torn_tail",
        "spool.enospc",
    }
)


@dataclass
class _Fault:
    point: str
    probability: float = 1.0
    limit: int = 0  # 0 = unlimited
    value: float = 0.0
    fired: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def ask(self, rng: random.Random) -> bool:
        """One atomic should-this-fault-fire decision."""
        with self._lock:
            if self.limit and self.fired >= self.limit:
                return False
            if self.probability < 1.0 and rng.random() >= self.probability:
                return False
            self.fired += 1
            return True


#: ``None`` when chaos is off -- the fast-path check every fault point makes.
_FAULTS: Optional[Dict[str, _Fault]] = None
_RNG = random.Random(0)
_LOADED_FROM_ENV = False


def _parse(spec: str) -> Dict[str, _Fault]:
    faults: Dict[str, _Fault] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        point = parts[0].strip()
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown chaos fault point {point!r}; "
                f"known: {', '.join(sorted(FAULT_POINTS))}"
            )
        try:
            probability = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
            limit = int(parts[2]) if len(parts) > 2 and parts[2] else 0
            value = float(parts[3]) if len(parts) > 3 and parts[3] else 0.0
        except ValueError as error:
            raise ValueError(f"malformed chaos entry {chunk!r}: {error}") from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"chaos probability must be in [0, 1], got {chunk!r}")
        faults[point] = _Fault(point, probability, limit, value)
    return faults


def configure(spec: Optional[str], seed: int = 0) -> None:
    """Install a chaos configuration (``None``/empty turns chaos off).

    Replaces any previous configuration and resets all firing counters;
    tests call this directly, production processes inherit the same via
    ``REPRO_CHAOS``.
    """
    global _FAULTS, _RNG
    faults = _parse(spec) if spec else {}
    _FAULTS = faults or None
    _RNG = random.Random(seed)


def _load_env() -> None:
    global _LOADED_FROM_ENV
    if _LOADED_FROM_ENV:
        return
    _LOADED_FROM_ENV = True
    spec = os.environ.get(ENV_VAR)
    if spec:
        configure(spec, seed=int(os.environ.get(SEED_ENV_VAR, "0") or "0"))


def active() -> bool:
    """Whether any fault is configured (cheap; safe to call anywhere)."""
    _load_env()
    return _FAULTS is not None


def should(point: str) -> bool:
    """Whether the fault at ``point`` fires right now.

    The call site implements the fault itself (drop, kill, corrupt, ...);
    this only answers the question and does the bookkeeping.
    """
    _load_env()
    if _FAULTS is None:
        return False
    fault = _FAULTS.get(point)
    return fault is not None and fault.ask(_RNG)


def fault_value(point: str, default: float = 0.0) -> float:
    """The configured ``value`` parameter of ``point`` (delays etc.)."""
    if _FAULTS is None:
        return default
    fault = _FAULTS.get(point)
    return fault.value if fault is not None else default


def delay(point: str) -> None:
    """Sleep the configured duration when the delay fault at ``point`` fires."""
    if should(point):
        import time

        time.sleep(fault_value(point))


def kill_process(point: str) -> None:
    """Hard-exit the process (``os._exit(137)``) when ``point`` fires.

    ``os._exit`` skips atexit handlers, buffered I/O and ``finally``
    blocks -- exactly what a SIGKILL'd worker looks like to the rest of
    the system.
    """
    if should(point):
        os._exit(137)
