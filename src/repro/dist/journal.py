"""Crash-safe journal of admitted coordinator jobs.

A coordinator crash must not lose admitted work: a submitter that got an
``accepted`` frame (or an operator who started ``repro serve``) is owed
every cell of that job, even if the submitter itself is long gone when
the coordinator comes back.  The journal is the minimal durable record
that makes this true: an **append-only JSONL file** next to the
:class:`~repro.store.ResultStore` with one record per event --

``{"event": "admit", "job": N, ...full job payload...}``
    Written (flushed and fsync'd) the moment a job is admitted, *before*
    any cell of it is served.  The payload is exactly the self-contained
    protocol form of the job -- resolved spec entries, base64 traces,
    the per-PC flag and the optional cell subset -- so replaying it is
    re-admitting the identical job with identical store keys.
``{"event": "settled", "job": N}``
    Appended when the job completes or fails; settled jobs are not
    recovered.

On restart, :meth:`CoordinatorJournal.replay` returns the admitted-but-
unsettled records; the coordinator re-admits each one.  Leases are
implicitly treated as expired (a fresh coordinator has none), and cells
whose results reached the store before the crash are completed at
re-admit time without being dispatched -- so a crash costs at most the
cells that were in flight, never the job.  Results themselves are *not*
journalled: the store is their durable home, and a journal-only
coordinator (no store) still recovers the job, just recomputing its
cells.

The file format is deliberately boring: one JSON object per line, append
only.  A crash mid-append leaves at most one truncated final line, which
replay skips; a corrupt interior line is skipped the same way (losing
one job beats refusing to start).  Re-opening a journal whose last line
is torn *heals* the tail (writes the missing newline) before appending,
so the torn record costs one event, never two.  :meth:`compact` rewrites
the file without settled jobs -- explicitly at recovery, and
automatically whenever the file grows a :attr:`compact_threshold` of
bytes past its last compacted size -- preserving the fsync'd
write-then-rename discipline, so a long-lived service's journal does not
grow forever.  Appends refuse up front with one actionable error when
disk headroom is critical (:mod:`repro.common.diskguard`) rather than
tearing the file.
"""

from __future__ import annotations

import errno
import json
import os
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.common import diskguard

__all__ = ["CoordinatorJournal", "DEFAULT_COMPACT_THRESHOLD"]

#: Auto-compaction trigger: compact once the journal grows this many
#: bytes past its last compacted size (0 disables auto-compaction).
DEFAULT_COMPACT_THRESHOLD = 1024 * 1024


def _chaos_should(point: str) -> bool:
    """Lazily-bound chaos check (mirrors the store's: one env lookup
    unless ``REPRO_CHAOS`` is set or the chaos module is already loaded)."""
    module = sys.modules.get("repro.dist.chaos")
    if module is None:
        if not os.environ.get("REPRO_CHAOS"):
            return False
        from repro.dist import chaos as module
    return module.should(point)


class CoordinatorJournal:
    """Append-only JSONL log of admitted jobs (see module docstring)."""

    def __init__(
        self,
        path: Union[str, Path],
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.compact_threshold = int(compact_threshold)
        self._lock = threading.Lock()
        # Line-buffered append handle, opened lazily so replay-before-
        # append never sees our own empty write.
        self._handle = None
        # True when a failed append may have left a newline-less tail;
        # the next append starts a fresh line before writing.
        self._dirty_tail = False
        # Next size (bytes) at which an append triggers auto-compaction.
        self._compact_floor = self.compact_threshold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoordinatorJournal({str(self.path)!r})"

    # ----------------------------------------------------------------- #
    # Writing
    # ----------------------------------------------------------------- #

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), ensure_ascii=False)
        data = line.encode("utf-8") + b"\n"
        with self._lock:
            diskguard.check_writable(
                self.path.parent, what="coordinator journal append"
            )
            if self._handle is None:
                self._open_locked()
            if self._dirty_tail:
                # A previous append failed partway through its line; start
                # a fresh one so the torn record costs one event, not two.
                self._handle.write(b"\n")
                self._dirty_tail = False
            if _chaos_should("journal.torn_tail"):
                # Persist only a newline-less prefix, exactly what a crash
                # mid-append leaves behind, then fail the append.
                self._handle.write(data[: max(1, len(data) // 2)])
                self._handle.flush()
                try:
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
                self._dirty_tail = True
                raise OSError(
                    errno.EIO, "chaos: torn journal append (crash mid-write)"
                )
            try:
                self._handle.write(data)
                self._handle.flush()
            except OSError:
                self._dirty_tail = True  # unknown how much reached the disk
                raise
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._maybe_compact_locked()

    def _open_locked(self) -> None:
        self._handle = open(self.path, "ab")
        # Heal a torn tail left by a crashed predecessor: appending to a
        # newline-less final line would corrupt the *next* record too.
        try:
            if self._handle.tell() > 0:
                with open(self.path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    if reader.read(1) != b"\n":
                        self._handle.write(b"\n")
                        self._handle.flush()
        except OSError:  # pragma: no cover - probe is best-effort
            pass

    def record_admit(self, job_id: int, payload: Dict[str, Any]) -> None:
        """Durably record an admitted job before any cell is served.

        ``payload`` is the self-contained protocol form: ``specs`` (label
        / spec / profile entries), ``traces`` (base64), ``track_per_pc``
        and the optional ``cells`` subset.
        """
        record = {"event": "admit", "job": int(job_id)}
        record.update(payload)
        self._append(record)

    def record_settled(self, job_id: int) -> None:
        """Record that a job completed or failed (it will not be recovered)."""
        self._append({"event": "settled", "job": int(job_id)})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    # ----------------------------------------------------------------- #
    # Recovery
    # ----------------------------------------------------------------- #

    def _records(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with open(self.path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # truncated final line: crash mid-append
                try:
                    record = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue  # a corrupt line loses one event, not the file
                if isinstance(record, dict) and isinstance(record.get("job"), int):
                    records.append(record)
        return records

    def replay(self) -> List[Dict[str, Any]]:
        """The admit records of every job never marked settled, in order."""
        admits: Dict[int, Dict[str, Any]] = {}
        for record in self._records():
            if record.get("event") == "admit":
                admits[record["job"]] = record
            elif record.get("event") == "settled":
                admits.pop(record["job"], None)
        return list(admits.values())

    def max_job_id(self) -> int:
        """Highest job id ever journalled (0 for an empty journal).

        A restarted coordinator seeds its job counter past this so a
        recovered job and a fresh one can never share an id in the log.
        """
        return max((record["job"] for record in self._records()), default=0)

    def compact(self) -> int:
        """Rewrite the journal keeping only unsettled jobs; returns kept count.

        Uses write-then-rename so a crash mid-compaction leaves either the
        old or the new journal, never a half-written one.  Called
        explicitly after recovery and automatically by :meth:`_append`
        once the file crosses :attr:`compact_threshold` (see
        :meth:`_maybe_compact_locked`).
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        live = self.replay()
        temp = self.path.with_suffix(".compact.tmp")
        with open(temp, "wb") as handle:
            for record in live:
                line = json.dumps(record, separators=(",", ":"))
                handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover
                pass
        os.replace(temp, self.path)
        self._dirty_tail = False  # the compacted file always ends cleanly
        return len(live)

    def _maybe_compact_locked(self) -> None:
        """Opportunistic in-place compaction once the file outgrows the
        threshold (caller holds ``self._lock``; the append already
        landed, so a failed compaction costs nothing)."""
        if self.compact_threshold <= 0:
            return
        try:
            size = (
                self._handle.tell()
                if self._handle is not None
                else self.path.stat().st_size
            )
        except (OSError, ValueError):
            return
        if size < self._compact_floor:
            return
        try:
            self._compact_locked()
            size = self.path.stat().st_size
        except OSError:
            pass
        # Re-arm a full threshold above the (possibly uncompactable --
        # all-live) current size, so a journal that cannot shrink is not
        # re-compacted on every append.
        self._compact_floor = size + self.compact_threshold
