"""Accuracy metrics and aggregation helpers.

The paper reports arithmetic-mean MPKI over each championship trace set and
relative MPKI reductions between configurations; these helpers compute both
from :class:`~repro.sim.engine.SimulationResult` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.sim.engine import SimulationResult

__all__ = [
    "average_mpki",
    "mpki_by_trace",
    "mpki_delta",
    "mpki_reduction_percent",
    "most_improved",
    "most_affected",
]


def average_mpki(results: Iterable[SimulationResult]) -> float:
    """Arithmetic mean MPKI over a collection of per-trace results."""
    results = list(results)
    if not results:
        raise ValueError("cannot average an empty result collection")
    return sum(result.mpki for result in results) / len(results)


def mpki_by_trace(results: Iterable[SimulationResult]) -> Dict[str, float]:
    """Map of trace name to MPKI."""
    return {result.trace_name: result.mpki for result in results}


def mpki_delta(
    baseline: Mapping[str, float], candidate: Mapping[str, float]
) -> Dict[str, float]:
    """Per-trace MPKI reduction (positive = candidate is better).

    Both mappings must cover the same trace names.
    """
    missing = set(baseline) ^ set(candidate)
    if missing:
        raise ValueError(f"baseline and candidate trace sets differ: {sorted(missing)}")
    return {name: baseline[name] - candidate[name] for name in baseline}


def mpki_reduction_percent(baseline_mpki: float, candidate_mpki: float) -> float:
    """Relative MPKI reduction in percent (positive = candidate is better)."""
    if baseline_mpki == 0:
        return 0.0
    return 100.0 * (baseline_mpki - candidate_mpki) / baseline_mpki


def most_improved(
    baseline: Mapping[str, float],
    candidate: Mapping[str, float],
    count: int,
) -> List[Tuple[str, float]]:
    """The ``count`` traces with the largest MPKI reduction, best first."""
    deltas = mpki_delta(baseline, candidate)
    ordered = sorted(deltas.items(), key=lambda item: item[1], reverse=True)
    return ordered[:count]


def most_affected(
    baseline: Mapping[str, float],
    candidates: Sequence[Mapping[str, float]],
    count: int,
) -> List[str]:
    """Trace names most affected (absolute MPKI change) by any candidate.

    Used to pick the "25 most affected benchmarks" of Figures 14 and 15.
    """
    impact: Dict[str, float] = {name: 0.0 for name in baseline}
    for candidate in candidates:
        for name, delta in mpki_delta(baseline, candidate).items():
            impact[name] = max(impact[name], abs(delta))
    ordered = sorted(impact.items(), key=lambda item: item[1], reverse=True)
    return [name for name, _ in ordered[:count]]
