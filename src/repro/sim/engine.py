"""The trace-driven simulation engine.

Following the experimental framework of the paper (Section 3), predictors
are evaluated by replaying branch traces with immediate updates: for every
conditional branch the predictor is asked for a prediction and then
immediately trained with the resolved outcome; non-conditional branches are
passed to the predictor so path-history-like structures can observe them.

Accuracy is reported in MisPredictions per Kilo Instructions (MPKI), the
metric used throughout the paper.

Two execution strategies are provided behind one entry point:

* the *reference* path iterates :class:`~repro.trace.branch.BranchRecord`
  views and drives the classic ``predict()`` / ``update()`` protocol;
* the *fast* path iterates the trace's columnar storage directly and drives
  the combined ``predict_update(pc, target, taken, kind, gap)`` /
  ``observe_pc(pc)`` protocol for predictors that opt in (see
  ``docs/PERFORMANCE.md``).

Both paths produce bit-identical results; :func:`simulate` picks the fast
path automatically whenever the predictor and the trace support it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.predictors.base import BranchPredictor
from repro.trace.branch import CONDITIONAL_CODE
from repro.trace.trace import Trace

__all__ = ["ENGINE_VERSION", "SimulationResult", "simulate", "supports_fast_path"]

#: Version of the simulation semantics.  Bump whenever a change alters the
#: numbers :func:`simulate` produces for an unchanged (predictor, trace)
#: pair -- the persistent result store (:mod:`repro.store`) folds this into
#: its cell keys, so bumping it retires every stored result at once.
#: Pure-speed changes that keep results bit-identical must NOT bump it.
ENGINE_VERSION = 1


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace."""

    trace_name: str
    predictor_name: str
    conditional_branches: int
    mispredictions: int
    instructions: int
    storage_bits: int
    per_pc_mispredictions: Dict[int, int] = field(default_factory=dict)

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def misprediction_rate(self) -> float:
        """Fraction of conditional branches mispredicted."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return 1.0 - self.misprediction_rate

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.predictor_name} on {self.trace_name}: "
            f"{self.mpki:.3f} MPKI "
            f"({self.mispredictions}/{self.conditional_branches} mispredicted, "
            f"{self.storage_bits / 1024:.1f} Kbits)"
        )


def supports_fast_path(predictor: BranchPredictor, trace: Trace) -> bool:
    """``True`` when ``predictor`` and ``trace`` support the columnar fast path."""
    return (
        getattr(predictor, "predict_update", None) is not None
        and getattr(predictor, "observe_pc", None) is not None
        and getattr(trace, "columns", None) is not None
    )


def simulate(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_fraction: float = 0.0,
    track_per_pc: bool = False,
    use_fast_path: Optional[bool] = None,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` and measure its accuracy.

    Parameters
    ----------
    predictor:
        The predictor under test; it is trained in place.
    trace:
        The branch trace to replay.
    warmup_fraction:
        Fraction (0 to 1) of the trace's conditional branches whose
        mispredictions are excluded from the metric; the predictor is still
        trained during warm-up.  The paper's championship framework measures
        the full trace, so the default is 0.
    track_per_pc:
        Record per-static-branch misprediction counts (used by the analysis
        helpers to identify which branch classes a component fixes).
    use_fast_path:
        ``None`` (default) picks the columnar fast path automatically when
        the predictor opts into the combined-step protocol; ``False`` forces
        the record-based reference path; ``True`` requires the fast path and
        raises :class:`ValueError` when it is unsupported.  Both paths
        produce bit-identical results.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    fast_available = supports_fast_path(predictor, trace)
    if use_fast_path is None:
        use_fast_path = fast_available
    elif use_fast_path and not fast_available:
        raise ValueError(
            f"predictor {predictor.name!r} does not support the fast-path "
            "protocol (predict_update / observe_pc)"
        )
    total_conditional = trace.conditional_count
    warmup_limit = int(total_conditional * warmup_fraction)

    if use_fast_path:
        mispredictions, measured_conditional, measured_instructions, per_pc = (
            _simulate_columns(predictor, trace, warmup_limit, track_per_pc)
        )
    else:
        mispredictions, measured_conditional, measured_instructions, per_pc = (
            _simulate_records(predictor, trace, warmup_limit, track_per_pc)
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        conditional_branches=measured_conditional,
        mispredictions=mispredictions,
        instructions=measured_instructions,
        storage_bits=predictor.storage_bits(),
        per_pc_mispredictions=per_pc,
    )


def _simulate_records(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Reference path: record views and the predict()/update() protocol."""
    mispredictions = 0
    measured_conditional = 0
    measured_instructions = 0
    per_pc: Dict[int, int] = defaultdict(int)
    seen_conditional = 0

    for record in trace:
        if not record.is_conditional:
            predictor.observe_unconditional(record)
            if seen_conditional >= warmup_limit:
                measured_instructions += record.instruction_gap + 1
            continue
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        seen_conditional += 1
        if seen_conditional <= warmup_limit:
            continue
        measured_conditional += 1
        measured_instructions += record.instruction_gap + 1
        if prediction != record.taken:
            mispredictions += 1
            if track_per_pc:
                per_pc[record.pc] += 1

    return mispredictions, measured_conditional, measured_instructions, dict(per_pc)


def _simulate_columns(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Fast path: columnar iteration and the combined-step protocol."""
    pcs, targets, takens, kinds, gaps = trace.columns()
    predict_update = predictor.predict_update
    observe_pc = predictor.observe_pc
    conditional_code = CONDITIONAL_CODE
    mispredictions = 0

    if warmup_limit == 0 and not track_per_pc:
        # The hottest loop: no warm-up or per-PC bookkeeping, and the
        # measured totals equal the trace's cached aggregates.
        for pc, target, taken, kind, gap in zip(pcs, targets, takens, kinds, gaps):
            if kind != conditional_code:
                observe_pc(pc)
            elif predict_update(pc, target, taken, kind, gap) != taken:
                mispredictions += 1
        return mispredictions, trace.conditional_count, trace.instruction_count, {}

    measured_conditional = 0
    measured_instructions = 0
    per_pc: Dict[int, int] = defaultdict(int)
    seen_conditional = 0
    for index in range(len(pcs)):
        pc = pcs[index]
        kind = kinds[index]
        if kind != conditional_code:
            observe_pc(pc)
            if seen_conditional >= warmup_limit:
                measured_instructions += gaps[index] + 1
            continue
        taken = takens[index]
        prediction = predict_update(pc, targets[index], taken, kind, gaps[index])
        seen_conditional += 1
        if seen_conditional <= warmup_limit:
            continue
        measured_conditional += 1
        measured_instructions += gaps[index] + 1
        if prediction != taken:
            mispredictions += 1
            if track_per_pc:
                per_pc[pc] += 1

    return mispredictions, measured_conditional, measured_instructions, dict(per_pc)
