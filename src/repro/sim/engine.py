"""The trace-driven simulation engine.

Following the experimental framework of the paper (Section 3), predictors
are evaluated by replaying branch traces with immediate updates: for every
conditional branch the predictor is asked for a prediction and then
immediately trained with the resolved outcome; non-conditional branches are
passed to the predictor so path-history-like structures can observe them.

Accuracy is reported in MisPredictions per Kilo Instructions (MPKI), the
metric used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace."""

    trace_name: str
    predictor_name: str
    conditional_branches: int
    mispredictions: int
    instructions: int
    storage_bits: int
    per_pc_mispredictions: Dict[int, int] = field(default_factory=dict)

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def misprediction_rate(self) -> float:
        """Fraction of conditional branches mispredicted."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return 1.0 - self.misprediction_rate

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.predictor_name} on {self.trace_name}: "
            f"{self.mpki:.3f} MPKI "
            f"({self.mispredictions}/{self.conditional_branches} mispredicted, "
            f"{self.storage_bits / 1024:.1f} Kbits)"
        )


def simulate(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_fraction: float = 0.0,
    track_per_pc: bool = False,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` and measure its accuracy.

    Parameters
    ----------
    predictor:
        The predictor under test; it is trained in place.
    trace:
        The branch trace to replay.
    warmup_fraction:
        Fraction (0 to 1) of the trace's conditional branches whose
        mispredictions are excluded from the metric; the predictor is still
        trained during warm-up.  The paper's championship framework measures
        the full trace, so the default is 0.
    track_per_pc:
        Record per-static-branch misprediction counts (used by the analysis
        helpers to identify which branch classes a component fixes).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    total_conditional = trace.conditional_count
    warmup_limit = int(total_conditional * warmup_fraction)

    mispredictions = 0
    measured_conditional = 0
    measured_instructions = 0
    per_pc: Dict[int, int] = {}
    seen_conditional = 0

    for record in trace:
        if not record.is_conditional:
            predictor.observe_unconditional(record)
            if seen_conditional >= warmup_limit:
                measured_instructions += record.instruction_gap + 1
            continue
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        seen_conditional += 1
        if seen_conditional <= warmup_limit:
            continue
        measured_conditional += 1
        measured_instructions += record.instruction_gap + 1
        if prediction != record.taken:
            mispredictions += 1
            if track_per_pc:
                per_pc[record.pc] = per_pc.get(record.pc, 0) + 1

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        conditional_branches=measured_conditional,
        mispredictions=mispredictions,
        instructions=measured_instructions,
        storage_bits=predictor.storage_bits(),
        per_pc_mispredictions=per_pc,
    )
