"""The trace-driven simulation engine.

Following the experimental framework of the paper (Section 3), predictors
are evaluated by replaying branch traces with immediate updates: for every
conditional branch the predictor is asked for a prediction and then
immediately trained with the resolved outcome; non-conditional branches are
passed to the predictor so path-history-like structures can observe them.

Accuracy is reported in MisPredictions per Kilo Instructions (MPKI), the
metric used throughout the paper.

Two execution strategies are provided behind one entry point:

* the *reference* path iterates :class:`~repro.trace.branch.BranchRecord`
  views and drives the classic ``predict()`` / ``update()`` protocol;
* the *fast* path iterates the trace's columnar storage directly and drives
  the combined ``predict_update(pc, target, taken, kind, gap)`` /
  ``observe_pc(pc)`` protocol for predictors that opt in (see
  ``docs/PERFORMANCE.md``).

Both paths produce bit-identical results; :func:`simulate` picks the fast
path automatically whenever the predictor and the trace support it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.predictors.base import BranchPredictor
from repro.predictors.shared_core import plan_groups
from repro.trace.branch import CONDITIONAL_CODE
from repro.trace.trace import Trace

__all__ = [
    "ENGINE_VERSION",
    "SimulationResult",
    "simulate",
    "simulate_many",
    "supports_fast_path",
]

#: Version of the simulation semantics.  Bump whenever a change alters the
#: numbers :func:`simulate` produces for an unchanged (predictor, trace)
#: pair -- the persistent result store (:mod:`repro.store`) folds this into
#: its cell keys, so bumping it retires every stored result at once.
#: Pure-speed changes that keep results bit-identical must NOT bump it.
ENGINE_VERSION = 1


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace."""

    trace_name: str
    predictor_name: str
    conditional_branches: int
    mispredictions: int
    instructions: int
    storage_bits: int
    per_pc_mispredictions: Dict[int, int] = field(default_factory=dict)

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def misprediction_rate(self) -> float:
        """Fraction of conditional branches mispredicted."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        return 1.0 - self.misprediction_rate

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.predictor_name} on {self.trace_name}: "
            f"{self.mpki:.3f} MPKI "
            f"({self.mispredictions}/{self.conditional_branches} mispredicted, "
            f"{self.storage_bits / 1024:.1f} Kbits)"
        )


def supports_fast_path(predictor: BranchPredictor, trace: Trace) -> bool:
    """``True`` when ``predictor`` and ``trace`` support the columnar fast path.

    A trace qualifies either by exposing its columns directly
    (:meth:`~repro.trace.trace.Trace.columns`) or by streaming columnar
    blocks (``iter_chunks()``, the
    :class:`~repro.trace.chunked.ChunkedTrace` protocol).
    """
    return (
        getattr(predictor, "predict_update", None) is not None
        and getattr(predictor, "observe_pc", None) is not None
        and (
            getattr(trace, "columns", None) is not None
            or getattr(trace, "iter_chunks", None) is not None
        )
    )


def _column_blocks(trace: Trace):
    """Yield ``(pc, target, taken, kind, gap)`` column blocks of a trace.

    A monolithic :class:`Trace` is one block (its own columns -- zero
    copies, identical to the pre-chunking code path); a chunked trace
    yields one block per chunk, so the fast loops below stream it in
    bounded memory.  The simulation state is carried across blocks by the
    callers, which makes block iteration bit-identical to a single flat
    traversal by construction: the per-branch step sequence is unchanged.
    """
    chunks = getattr(trace, "iter_chunks", None)
    if chunks is not None:
        for chunk in chunks():
            yield chunk.columns()
    else:
        yield trace.columns()


def simulate(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_fraction: float = 0.0,
    track_per_pc: bool = False,
    use_fast_path: Optional[bool] = None,
) -> SimulationResult:
    """Replay ``trace`` through ``predictor`` and measure its accuracy.

    Parameters
    ----------
    predictor:
        The predictor under test; it is trained in place.
    trace:
        The branch trace to replay.
    warmup_fraction:
        Fraction (0 to 1) of the trace's conditional branches whose
        mispredictions are excluded from the metric; the predictor is still
        trained during warm-up.  The paper's championship framework measures
        the full trace, so the default is 0.
    track_per_pc:
        Record per-static-branch misprediction counts (used by the analysis
        helpers to identify which branch classes a component fixes).
    use_fast_path:
        ``None`` (default) picks the columnar fast path automatically when
        the predictor opts into the combined-step protocol; ``False`` forces
        the record-based reference path; ``True`` requires the fast path and
        raises :class:`ValueError` when it is unsupported.  Both paths
        produce bit-identical results.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    fast_available = supports_fast_path(predictor, trace)
    if use_fast_path is None:
        use_fast_path = fast_available
    elif use_fast_path and not fast_available:
        raise ValueError(
            f"predictor {predictor.name!r} does not support the fast-path "
            "protocol (predict_update / observe_pc)"
        )
    total_conditional = trace.conditional_count
    warmup_limit = int(total_conditional * warmup_fraction)

    if use_fast_path:
        mispredictions, measured_conditional, measured_instructions, per_pc = (
            _simulate_columns(predictor, trace, warmup_limit, track_per_pc)
        )
    else:
        mispredictions, measured_conditional, measured_instructions, per_pc = (
            _simulate_records(predictor, trace, warmup_limit, track_per_pc)
        )

    return SimulationResult(
        trace_name=trace.name,
        predictor_name=predictor.name,
        conditional_branches=measured_conditional,
        mispredictions=mispredictions,
        instructions=measured_instructions,
        storage_bits=predictor.storage_bits(),
        per_pc_mispredictions=per_pc,
    )


def _simulate_records(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Reference path: record views and the predict()/update() protocol."""
    mispredictions = 0
    measured_conditional = 0
    measured_instructions = 0
    per_pc: Dict[int, int] = defaultdict(int)
    seen_conditional = 0

    for record in trace:
        if not record.is_conditional:
            predictor.observe_unconditional(record)
            if seen_conditional >= warmup_limit:
                measured_instructions += record.instruction_gap + 1
            continue
        prediction = predictor.predict(record)
        predictor.update(record, prediction)
        seen_conditional += 1
        if seen_conditional <= warmup_limit:
            continue
        measured_conditional += 1
        measured_instructions += record.instruction_gap + 1
        if prediction != record.taken:
            mispredictions += 1
            if track_per_pc:
                per_pc[record.pc] += 1

    return mispredictions, measured_conditional, measured_instructions, dict(per_pc)


def _simulate_columns(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Fast path: columnar iteration and the combined-step protocol.

    Iterates the trace's column blocks (one block for a monolithic trace,
    one per chunk for a chunked trace) with all measurement state carried
    across block boundaries, so streaming is bit-identical to a flat
    traversal while peak memory stays bounded by the block size.
    """
    predict_update = predictor.predict_update
    observe_pc = predictor.observe_pc
    conditional_code = CONDITIONAL_CODE
    mispredictions = 0

    if warmup_limit == 0 and not track_per_pc:
        block_step = getattr(predictor, "predict_update_block", None)
        if block_step is not None:
            # Column-block protocol: the predictor consumes whole column
            # blocks and returns its misprediction count, eliminating the
            # per-branch Python dispatch entirely (see
            # ``BimodalPredictor.predict_update_block``).
            for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
                mispredictions += block_step(pcs, targets, takens, kinds, gaps)
            return (
                mispredictions,
                trace.conditional_count,
                trace.instruction_count,
                {},
            )
        # The hottest loop: no warm-up or per-PC bookkeeping, and the
        # measured totals equal the trace's cached aggregates.
        for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
            for pc, target, taken, kind, gap in zip(
                pcs, targets, takens, kinds, gaps
            ):
                if kind != conditional_code:
                    observe_pc(pc)
                elif predict_update(pc, target, taken, kind, gap) != taken:
                    mispredictions += 1
        return mispredictions, trace.conditional_count, trace.instruction_count, {}

    measured_conditional = 0
    measured_instructions = 0
    per_pc: Dict[int, int] = defaultdict(int)
    seen_conditional = 0
    for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
        for index in range(len(pcs)):
            pc = pcs[index]
            kind = kinds[index]
            if kind != conditional_code:
                observe_pc(pc)
                if seen_conditional >= warmup_limit:
                    measured_instructions += gaps[index] + 1
                continue
            taken = takens[index]
            prediction = predict_update(pc, targets[index], taken, kind, gaps[index])
            seen_conditional += 1
            if seen_conditional <= warmup_limit:
                continue
            measured_conditional += 1
            measured_instructions += gaps[index] + 1
            if prediction != taken:
                mispredictions += 1
                if track_per_pc:
                    per_pc[pc] += 1

    return mispredictions, measured_conditional, measured_instructions, dict(per_pc)


def simulate_many(
    predictors: Sequence[BranchPredictor],
    trace: Trace,
    warmup_fraction: float = 0.0,
    track_per_pc: bool = False,
    use_fast_path: Optional[bool] = None,
    share_cores: Optional[bool] = None,
) -> List[SimulationResult]:
    """Replay ``trace`` through every predictor in one traversal.

    Bit-identical to ``[simulate(p, trace, ...) for p in predictors]`` --
    the predictors are independent instances, so driving them all from one
    pass over the columns changes nothing about what each one observes --
    but the columnar decode, Python-level iteration and branch-kind
    dispatch are paid once per *trace* instead of once per *(predictor,
    trace)* cell.  This is the execution primitive of batched sweeps: the
    suite runner, the process-pool path and the distributed workers all
    group same-trace cells and drive them through here.

    On top of the shared traversal, batch members that advertise the same
    shared-core key (:mod:`repro.predictors.shared_core`) are executed as
    one core plus N light heads -- the dominant TAGE/GEHL core work is
    paid once per branch for the whole group.  Grouped members' original
    predictor instances are left untouched (the group runs its own fresh
    cores and heads), so don't rely on batch members being trained after
    a grouped run; pass ``share_cores=False`` if you need that.

    Parameters match :func:`simulate` (``warmup_fraction`` and
    ``track_per_pc`` apply to every predictor in the batch).  The batched
    loop needs the fast-path protocol; with ``use_fast_path=None`` a batch
    containing any predictor without it falls back to independent
    :func:`simulate` calls (still bit-identical, each picking its own best
    path), ``True`` requires the fast path for the whole batch, and
    ``False`` forces the record-based reference path throughout.
    ``share_cores=None`` (default) groups same-core members automatically;
    ``False`` disables grouping and runs every member through its own
    combined step, exactly as before this optimization existed.  Every
    setting produces bit-identical results.
    """
    predictors = list(predictors)
    if not predictors:
        return []
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction}"
        )
    fast_available = all(
        supports_fast_path(predictor, trace) for predictor in predictors
    )
    if use_fast_path and not fast_available:
        missing = next(
            predictor.name
            for predictor in predictors
            if not supports_fast_path(predictor, trace)
        )
        raise ValueError(
            f"predictor {missing!r} does not support the fast-path "
            "protocol (predict_update / observe_pc)"
        )
    batched = use_fast_path is not False and fast_available and len(predictors) > 1
    if not batched:
        # One predictor, a reference-path request, or a mixed batch:
        # delegate to independent simulate() calls, each with the caller's
        # path choice (``None`` lets every predictor pick its own best).
        return [
            simulate(
                predictor,
                trace,
                warmup_fraction=warmup_fraction,
                track_per_pc=track_per_pc,
                use_fast_path=use_fast_path,
            )
            for predictor in predictors
        ]

    warmup_limit = int(trace.conditional_count * warmup_fraction)
    plan = None if share_cores is False else plan_groups(predictors)
    if plan is not None:
        groups, solos = plan
        if warmup_limit == 0 and not track_per_pc:
            counts = _simulate_columns_grouped_fast(predictors, trace, groups, solos)
            measured_conditional = trace.conditional_count
            measured_instructions = trace.instruction_count
            per_pc_maps: List[Dict[int, int]] = [{} for _ in predictors]
        else:
            counts, measured_conditional, measured_instructions, per_pc_maps = (
                _simulate_columns_grouped(
                    predictors, trace, groups, solos, warmup_limit, track_per_pc
                )
            )
    elif warmup_limit == 0 and not track_per_pc:
        counts = _simulate_columns_batch_fast(predictors, trace)
        measured_conditional = trace.conditional_count
        measured_instructions = trace.instruction_count
        per_pc_maps = [{} for _ in predictors]
    else:
        counts, measured_conditional, measured_instructions, per_pc_maps = (
            _simulate_columns_batch(predictors, trace, warmup_limit, track_per_pc)
        )
    return [
        SimulationResult(
            trace_name=trace.name,
            predictor_name=predictor.name,
            conditional_branches=measured_conditional,
            mispredictions=counts[index],
            instructions=measured_instructions,
            storage_bits=predictor.storage_bits(),
            per_pc_mispredictions=per_pc_maps[index],
        )
        for index, predictor in enumerate(predictors)
    ]


def _simulate_columns_batch_fast(
    predictors: Sequence[BranchPredictor], trace: Trace
) -> List[int]:
    """Batched hot loop: no warm-up, no per-PC tracking.

    The traversal state (tuple unpack, kind test) is shared across the
    batch; per predictor and branch only the combined-step call and the
    misprediction compare remain.  Chunked traces stream block by block
    with the counters carried across boundaries.
    """
    steps = [predictor.predict_update for predictor in predictors]
    observes = [predictor.observe_pc for predictor in predictors]
    conditional_code = CONDITIONAL_CODE
    counts = [0] * len(steps)
    for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
        for pc, target, taken, kind, gap in zip(pcs, targets, takens, kinds, gaps):
            if kind != conditional_code:
                for observe in observes:
                    observe(pc)
            else:
                index = 0
                for step in steps:
                    if step(pc, target, taken, kind, gap) != taken:
                        counts[index] += 1
                    index += 1
    return counts


def _simulate_columns_batch(
    predictors: Sequence[BranchPredictor],
    trace: Trace,
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Batched general loop: warm-up and/or per-PC bookkeeping.

    The warm-up window is a property of the trace position, so the
    ``seen_conditional`` counter -- and therefore the measured totals --
    are shared by every predictor in the batch, exactly as N independent
    :func:`simulate` calls would each compute them.  The counter survives
    block boundaries, so a warm-up window ending mid-chunk measures
    exactly the same records as it would on the monolithic trace.
    """
    steps = [predictor.predict_update for predictor in predictors]
    observes = [predictor.observe_pc for predictor in predictors]
    conditional_code = CONDITIONAL_CODE
    counts = [0] * len(steps)
    per_pc_maps: List[Dict[int, int]] = [defaultdict(int) for _ in steps]
    measured_conditional = 0
    measured_instructions = 0
    seen_conditional = 0
    for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
        for position in range(len(pcs)):
            pc = pcs[position]
            kind = kinds[position]
            if kind != conditional_code:
                for observe in observes:
                    observe(pc)
                if seen_conditional >= warmup_limit:
                    measured_instructions += gaps[position] + 1
                continue
            taken = takens[position]
            target = targets[position]
            gap = gaps[position]
            seen_conditional += 1
            if seen_conditional <= warmup_limit:
                for step in steps:
                    step(pc, target, taken, kind, gap)
                continue
            measured_conditional += 1
            measured_instructions += gap + 1
            index = 0
            for step in steps:
                if step(pc, target, taken, kind, gap) != taken:
                    counts[index] += 1
                    if track_per_pc:
                        per_pc_maps[index][pc] += 1
                index += 1
    return (
        counts,
        measured_conditional,
        measured_instructions,
        [dict(per_pc) for per_pc in per_pc_maps],
    )


def _simulate_columns_grouped_fast(
    predictors: Sequence[BranchPredictor],
    trace: Trace,
    groups: Sequence,
    solos: Sequence[int],
) -> List[int]:
    """Grouped hot loop: shared cores stepped once, heads fanned per branch.

    Each group's ``step_count`` runs its core once and every head once,
    bumping the group's internal per-head misprediction counters; solo
    predictors keep the flat combined-step protocol.  After the traversal
    the group counters are scattered back to batch positions.
    """
    solo_steps = [(index, predictors[index].predict_update) for index in solos]
    observes = [predictors[index].observe_pc for index in solos]
    observes.extend(group.observe for group in groups)
    group_steps = [group.step_count for group in groups]
    conditional_code = CONDITIONAL_CODE
    counts = [0] * len(predictors)
    for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
        for pc, target, taken, kind, gap in zip(pcs, targets, takens, kinds, gaps):
            if kind != conditional_code:
                for observe in observes:
                    observe(pc)
            else:
                for group_step in group_steps:
                    group_step(pc, target, taken, gap)
                for index, step in solo_steps:
                    if step(pc, target, taken, kind, gap) != taken:
                        counts[index] += 1
    for group in groups:
        for slot, index in enumerate(group.indices):
            counts[index] = group.counts[slot]
    return counts


def _simulate_columns_grouped(
    predictors: Sequence[BranchPredictor],
    trace: Trace,
    groups: Sequence,
    solos: Sequence[int],
    warmup_limit: int,
    track_per_pc: bool,
) -> tuple:
    """Grouped general loop: warm-up and/or per-PC bookkeeping.

    The warm-up window is shared across the batch exactly as in
    :func:`_simulate_columns_batch`; groups return per-head predictions
    through ``step_list`` so the measurement logic stays per member.
    """
    solo_steps = [(index, predictors[index].predict_update) for index in solos]
    observes = [predictors[index].observe_pc for index in solos]
    observes.extend(group.observe for group in groups)
    group_list = [(group.indices, group.step_list) for group in groups]
    conditional_code = CONDITIONAL_CODE
    counts = [0] * len(predictors)
    per_pc_maps: List[Dict[int, int]] = [defaultdict(int) for _ in predictors]
    measured_conditional = 0
    measured_instructions = 0
    seen_conditional = 0
    for pcs, targets, takens, kinds, gaps in _column_blocks(trace):
        for position in range(len(pcs)):
            pc = pcs[position]
            kind = kinds[position]
            if kind != conditional_code:
                for observe in observes:
                    observe(pc)
                if seen_conditional >= warmup_limit:
                    measured_instructions += gaps[position] + 1
                continue
            taken = takens[position]
            target = targets[position]
            gap = gaps[position]
            seen_conditional += 1
            if seen_conditional <= warmup_limit:
                for indices, step_list in group_list:
                    step_list(pc, target, taken, gap)
                for index, step in solo_steps:
                    step(pc, target, taken, kind, gap)
                continue
            measured_conditional += 1
            measured_instructions += gap + 1
            for indices, step_list in group_list:
                predictions = step_list(pc, target, taken, gap)
                for slot, index in enumerate(indices):
                    if predictions[slot] != taken:
                        counts[index] += 1
                        if track_per_pc:
                            per_pc_maps[index][pc] += 1
            for index, step in solo_steps:
                if step(pc, target, taken, kind, gap) != taken:
                    counts[index] += 1
                    if track_per_pc:
                        per_pc_maps[index][pc] += 1
    return (
        counts,
        measured_conditional,
        measured_instructions,
        [dict(per_pc) for per_pc in per_pc_maps],
    )
