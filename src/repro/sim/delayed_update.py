"""Delayed-update experiment for the IMLI outer-history table.

Section 4.3.2 of the paper argues that precise speculative management of
the IMLI history table is unnecessary: the authors simulate a configuration
where each branch's write into the IMLI history table only becomes visible
after the next 63 conditional branches (modelling a very large instruction
window) and observe virtually no accuracy loss (0.002 MPKI).

This module reproduces that experiment: it runs an IMLI-augmented
configuration with immediate updates and with a configurable update delay
applied to the IMLI outer-history structures, and reports the average MPKI
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import CompositeOptions, build
from repro.sim.engine import simulate
from repro.sim.metrics import average_mpki
from repro.trace.trace import Trace

__all__ = ["DelayedUpdateResult", "run_delayed_update_experiment"]


@dataclass(frozen=True)
class DelayedUpdateResult:
    """Average MPKI with immediate and delayed IMLI history updates."""

    base: str
    delay: int
    immediate_mpki: float
    delayed_mpki: float

    @property
    def mpki_loss(self) -> float:
        """Accuracy loss caused by the delayed update (positive = worse)."""
        return self.delayed_mpki - self.immediate_mpki


def _build_imli_predictor(base: str, delay: int, profile: str) -> BranchPredictor:
    options = CompositeOptions(
        base=base, imli_sic=True, imli_oh=True, oh_update_delay=delay
    )
    predictor = build(options, profile=profile)
    predictor.name = f"{base}+imli(delay={delay})"
    return predictor


def run_delayed_update_experiment(
    traces: Sequence[Trace],
    base: str = "tage-gsc",
    delays: Sequence[int] = (63,),
    profile: str = "default",
) -> List[DelayedUpdateResult]:
    """Run the Section 4.3.2 delayed-update experiment.

    Parameters
    ----------
    traces:
        Traces to evaluate on.
    base:
        Base predictor (``"tage-gsc"`` or ``"gehl"``).
    delays:
        Update delays (in conditional branches) to evaluate; the paper uses
        63.
    profile:
        Predictor size profile.
    """
    immediate_results = [
        simulate(_build_imli_predictor(base, 0, profile), trace) for trace in traces
    ]
    immediate = average_mpki(immediate_results)
    experiment: List[DelayedUpdateResult] = []
    for delay in delays:
        if delay <= 0:
            raise ValueError(f"delays must be positive, got {delay}")
        delayed_results = [
            simulate(_build_imli_predictor(base, delay, profile), trace)
            for trace in traces
        ]
        experiment.append(
            DelayedUpdateResult(
                base=base,
                delay=delay,
                immediate_mpki=immediate,
                delayed_mpki=average_mpki(delayed_results),
            )
        )
    return experiment


def summarize(results: Sequence[DelayedUpdateResult]) -> Dict[int, float]:
    """Map of delay to MPKI loss, for quick reporting."""
    return {result.delay: result.mpki_loss for result in results}
