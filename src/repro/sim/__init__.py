"""Trace-driven simulation framework.

* :mod:`repro.sim.engine` -- the immediate-update trace-driven simulator and
  the MPKI-based :class:`SimulationResult`.
* :mod:`repro.sim.metrics` -- aggregation helpers (average MPKI, per-trace
  deltas, most-improved / most-affected selections).
* :mod:`repro.sim.runner` -- the memoising suite runner used by the
  benchmark harness.
* :mod:`repro.sim.storage` -- storage and speculative-state accounting.
* :mod:`repro.sim.delayed_update` -- the Section 4.3.2 delayed-update
  experiment.
* :mod:`repro.sim.checkpointing` -- the speculative checkpoint/recovery
  model backing the paper's practicality argument.
"""

from repro.sim.checkpointing import (
    CheckpointRecoveryReport,
    run_checkpoint_recovery,
    speculative_management_cost,
)
from repro.sim.delayed_update import DelayedUpdateResult, run_delayed_update_experiment
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import (
    average_mpki,
    most_affected,
    most_improved,
    mpki_by_trace,
    mpki_delta,
    mpki_reduction_percent,
)
from repro.sim.runner import ConfigurationRun, SuiteRunner
from repro.sim.storage import (
    StorageReport,
    imli_component_cost_bits,
    speculative_state_report,
    storage_report,
)

__all__ = [
    "CheckpointRecoveryReport",
    "ConfigurationRun",
    "DelayedUpdateResult",
    "SimulationResult",
    "StorageReport",
    "SuiteRunner",
    "average_mpki",
    "imli_component_cost_bits",
    "most_affected",
    "most_improved",
    "mpki_by_trace",
    "mpki_delta",
    "mpki_reduction_percent",
    "run_checkpoint_recovery",
    "run_delayed_update_experiment",
    "simulate",
    "speculative_management_cost",
    "speculative_state_report",
    "storage_report",
]
