"""Suite runner: evaluate many predictor configurations over many traces.

The benchmark harness and the examples all follow the same pattern: build a
set of traces (one or both synthetic suites), run a set of predictor
configurations over every trace, and aggregate per-suite average MPKI.
:class:`SuiteRunner` implements that pattern once, with memoisation so that
several experiments sharing a configuration (for example Table 1 and
Figure 8, which both need ``tage-gsc`` and ``tage-gsc+imli``) only pay for
the simulation once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import build_named
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import average_mpki
from repro.trace.trace import Trace

__all__ = ["ConfigurationRun", "SuiteRunner"]

PredictorFactory = Callable[[], BranchPredictor]


@dataclass
class ConfigurationRun:
    """Results of one configuration over one collection of traces."""

    configuration: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def average_mpki(self) -> float:
        """Arithmetic mean MPKI over the traces."""
        return average_mpki(self.results)

    @property
    def storage_bits(self) -> int:
        """Storage of the configuration (identical across traces)."""
        if not self.results:
            return 0
        return self.results[0].storage_bits

    def mpki_by_trace(self) -> Dict[str, float]:
        """Map of trace name to MPKI."""
        return {result.trace_name: result.mpki for result in self.results}

    def result_for(self, trace_name: str) -> SimulationResult:
        """The :class:`SimulationResult` for ``trace_name``."""
        for result in self.results:
            if result.trace_name == trace_name:
                return result
        raise KeyError(f"no result for trace {trace_name!r}")


class SuiteRunner:
    """Runs predictor configurations over a fixed set of traces.

    Parameters
    ----------
    traces:
        The traces to evaluate on (typically one synthetic suite, or the
        concatenation of both).
    profile:
        Size profile passed to :func:`repro.predictors.composites.build_named`
        when a configuration is referenced by name.
    """

    def __init__(self, traces: Sequence[Trace], profile: str = "default") -> None:
        if not traces:
            raise ValueError("the runner needs at least one trace")
        self.traces = list(traces)
        self.profile = profile
        self._cache: Dict[str, ConfigurationRun] = {}

    def trace_names(self) -> List[str]:
        """Names of the traces the runner evaluates on."""
        return [trace.name for trace in self.traces]

    def run(
        self,
        configuration: str,
        factory: Optional[PredictorFactory] = None,
        track_per_pc: bool = False,
    ) -> ConfigurationRun:
        """Run ``configuration`` over every trace (memoised by name).

        ``factory`` overrides how the predictor is built; by default the
        configuration name is looked up in the composite registry.  A fresh
        predictor instance is built per trace, as in the championship
        framework.
        """
        cached = self._cache.get(configuration)
        if cached is not None:
            return cached
        if factory is None:
            factory = lambda: build_named(configuration, profile=self.profile)  # noqa: E731
        run = ConfigurationRun(configuration=configuration)
        for trace in self.traces:
            predictor = factory()
            run.results.append(simulate(predictor, trace, track_per_pc=track_per_pc))
        self._cache[configuration] = run
        return run

    def run_many(
        self,
        configurations: Iterable[str],
        factories: Optional[Mapping[str, PredictorFactory]] = None,
    ) -> Dict[str, ConfigurationRun]:
        """Run several configurations and return them keyed by name."""
        factories = factories or {}
        return {
            configuration: self.run(configuration, factories.get(configuration))
            for configuration in configurations
        }

    def invalidate(self, configuration: Optional[str] = None) -> None:
        """Drop memoised results (all of them, or one configuration)."""
        if configuration is None:
            self._cache.clear()
        else:
            self._cache.pop(configuration, None)
