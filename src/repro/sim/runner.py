"""Suite runner: evaluate many predictor configurations over many traces.

The benchmark harness and the examples all follow the same pattern: build a
set of traces (one or both synthetic suites), run a set of predictor
configurations over every trace, and aggregate per-suite average MPKI.
:class:`SuiteRunner` implements that pattern once, with memoisation so that
several experiments sharing a configuration (for example Table 1 and
Figure 8, which both need ``tage-gsc`` and ``tage-gsc+imli``) only pay for
the simulation once.

Execution is **backend-pluggable**: the same batch of independent
``(configuration, trace)`` cells can run in-process (``serial``), across a
:class:`concurrent.futures.ProcessPoolExecutor` (``pool``, selected
automatically by ``max_workers``), or on a cluster through a
:class:`~repro.dist.client.DistBackend` connected to a ``repro serve``
coordinator.  Each cell is a self-contained unit of work (a fresh
predictor trained on one trace), so every backend produces bit-identical
results, merged back into the same memoisation cache and persistent
store.  Registry-named configurations and declarative
:class:`~repro.api.specs.PredictorSpec` objects (after resolving to
explicit options) can be dispatched to any backend; configurations with
custom (potentially unpicklable) factories or builder-based specs fall
back to in-process simulation transparently.

Traces are duck-typed: anything exposing ``name``, ``fingerprint()`` and
the engine's column surface works, so
:class:`~repro.trace.chunked.ChunkedTrace` objects stream through every
backend in bounded memory -- memo keys, store cell keys and results are
byte-identical to the same trace loaded monolithically (chunked traces
pickle by directory, so the pool backend works unchanged).
"""

from __future__ import annotations

import hashlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common import diskguard
from repro.obs.timings import TimingLog, timing_log_for
from repro.predictors.base import BranchPredictor
from repro.predictors.composites import CompositeOptions, SizeProfile, core_key_for
from repro.sim.engine import SimulationResult, simulate, simulate_many
from repro.sim.metrics import average_mpki
from repro.store import ResultStore, profile_content
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim must not
    from repro.api.specs import PredictorSpec  # depend on api at runtime)

__all__ = [
    "BatchCellError",
    "ConfigurationRun",
    "DEFAULT_BATCH_CELLS",
    "ExecutionBackend",
    "SuiteRunner",
    "core_schedule_key",
]


def core_schedule_key(spec: "PredictorSpec", sizes: SizeProfile) -> str:
    """Best-effort shared-core key of ``spec`` for scheduling order.

    Schedulers (the suite runner's batch chunking, the dist coordinator's
    admission queue) sort same-trace cells by this string so cells that
    can share a core (:mod:`repro.predictors.shared_core`) land in the
    same batch or lease grant.  It is purely a scheduling hint -- batch
    membership never changes results -- so any resolution failure
    (builder-based specs, unknown base names, invalid overrides) degrades
    to ``""`` instead of raising; such cells simply keep their submission
    order.  The spec is duck-typed (``resolve()``/``base``/``overrides``)
    so this layer stays import-independent of :mod:`repro.api`.
    """
    try:
        options = spec.resolve().base
        if not isinstance(options, CompositeOptions):
            return ""
        overrides = getattr(spec, "overrides", None)
        if overrides:
            options = replace(options, **dict(overrides))
        return repr(core_key_for(options, sizes))
    except Exception:
        return ""

PredictorFactory = Callable[[], BranchPredictor]

#: Default ceiling on how many same-trace cells one batched task (or one
#: distributed lease grant) covers.  Large enough to amortise the shared
#: trace traversal over a typical sweep grid, small enough that an
#: interrupted batch (or an expired worker lease) forfeits bounded work.
DEFAULT_BATCH_CELLS = 16

#: Memoisation key: (label, profile, per-PC tracking requested, registry
#: uid, content token, traces digest).  The profile is part of the key
#: because specs carry their own profile which may differ from the
#: runner's; the tracking flag is part of the key because a run simulated
#: without per-PC tracking has empty ``per_pc_mispredictions`` and must
#: not satisfy a later request that needs them; the registry uid (the
#: stable ``Registry.uid`` of whichever registry resolves the spec; 0 for
#: registry-free factory runs) keeps results built against different
#: registries from shadowing each other; the content token (a canonical
#: dump of the spec minus its display name, or ``"factory"``) keeps two
#: specs that merely share a label from poisoning each other's entries;
#: and the traces digest (a hash over the traces' content fingerprints,
#: recomputed per lookup) keeps results keyed on what the traces *are*,
#: not which benchmarks they are named after -- a trace regenerated with
#: different content (e.g. after ``REPRO_TRACE_CACHE`` invalidation, or
#: mutated in place) can never be served a stale run.
#:
#: Each entry stores a validity stamp next to the run: the registry's
#: mutation ``token`` for spec entries (a registry mutation bumps the
#: token, so stale results are never served and are replaced in place --
#: bounded growth), or the factory object itself for factory entries (a
#: hit requires the same factory identity; holding the reference also
#: keeps the cache bounded at one entry per label).
_CacheKey = Tuple[str, str, bool, int, str, str]
_CacheEntry = Tuple[object, "ConfigurationRun"]


def _registry_identity(registry) -> Tuple[int, int]:
    """(stable uid, current mutation token) of a registry (default if None)."""
    if registry is None:
        from repro.api.registry import default_registry

        registry = default_registry()
    return registry.uid, registry.token


def _spec_content(spec: "PredictorSpec") -> str:
    """Canonical content token of a spec, independent of its display name."""
    return spec.content()


def _default_profile(profile: str) -> SizeProfile:
    """Resolve a profile name against the default registry (parent side)."""
    from repro.api.registry import default_registry

    return default_registry().resolve_profile(profile)


class BatchCellError(Exception):
    """One cell of a batched task failed; the others may still be good.

    Carries the failing cell's position in the batch and the original
    error, so callers (the suite runner, the distributed worker) can
    surface the cell's real exception and retry or report the rest.  The
    ``(index, original)`` args keep the exception picklable across the
    process pool.
    """

    def __init__(self, index: int, original: BaseException) -> None:
        super().__init__(index, original)
        self.index = index
        self.original = original

    def __str__(self) -> str:
        return f"cell {self.index} of the batch failed: {self.original}"


def _build_spec_predictor(
    spec_dict: Dict[str, object], sizes: "SizeProfile"
) -> BranchPredictor:
    """Build a predictor from a spec's portable ``(dict, SizeProfile)`` form.

    The spec travels as its plain-dict form and the size profile as the
    parent-resolved :class:`SizeProfile` instance (both picklable), so the
    worker needs none of the parent process's registrations -- custom
    profiles work even under the ``spawn`` start method.
    """
    from repro.api.registry import Registry
    from repro.api.specs import PredictorSpec

    spec = PredictorSpec.from_dict(spec_dict)
    registry = Registry.with_defaults()
    registry.register_profile(str(spec.profile), sizes, overwrite=True)
    return spec.build(registry)


def _simulate_spec(
    spec_dict: Dict[str, object],
    sizes: "SizeProfile",
    trace: Trace,
    track_per_pc: bool,
) -> SimulationResult:
    """Worker entry point: build a predictor from a spec dict and simulate."""
    predictor = _build_spec_predictor(spec_dict, sizes)
    return simulate(predictor, trace, track_per_pc=track_per_pc)


def _simulate_spec_batch(
    entries: Sequence[Tuple[Dict[str, object], "SizeProfile"]],
    trace: Trace,
    track_per_pc: bool,
) -> List[SimulationResult]:
    """Batched worker entry point: N same-trace cells, one traversal.

    ``entries`` holds one ``(spec dict, resolved SizeProfile)`` pair per
    cell; the returned results are positionally aligned with it and
    bit-identical to :func:`_simulate_spec` per cell.  A cell whose spec
    fails deterministically (bad name, bad override, bad geometry) raises
    :class:`BatchCellError` naming it, so the caller can drop that cell
    and keep the rest of the batch.
    """
    predictors = []
    for index, (spec_dict, sizes) in enumerate(entries):
        try:
            predictors.append(_build_spec_predictor(spec_dict, sizes))
        except Exception as error:
            raise BatchCellError(index, error) from error
    try:
        return simulate_many(predictors, trace, track_per_pc=track_per_pc)
    except (KeyError, TypeError, ValueError, AttributeError):
        # A deterministic failure mid-traversal cannot be attributed to a
        # cell from here (the batch shares one loop).  Re-run the cells
        # independently -- simulation is deterministic, so the culprit
        # fails again, this time with its identity attached.  Fresh
        # predictors are required: the batch traversal already mutated
        # the original instances.
        results = []
        for index, (spec_dict, sizes) in enumerate(entries):
            try:
                results.append(
                    _simulate_spec(spec_dict, sizes, trace, track_per_pc)
                )
            except Exception as error:
                raise BatchCellError(index, error) from error
        return results


class ExecutionBackend:
    """Structural interface of pluggable cell-execution backends.

    A backend object (``SuiteRunner(backend=...)``) receives one batch of
    missing ``(label, trace index)`` cells together with everything needed
    to simulate them anywhere -- resolved specs, resolved size profiles
    and the traces themselves -- and returns one
    :class:`~repro.sim.engine.SimulationResult` per requested cell.
    :class:`repro.dist.client.DistBackend` is the shipped implementation;
    duck typing is enough, subclassing this is optional.
    """

    name = "custom"

    def execute(
        self,
        specs: Mapping[str, "PredictorSpec"],
        sizes: Mapping[str, SizeProfile],
        traces: Sequence[Trace],
        pending: Sequence[Tuple[str, int]],
        track_per_pc: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> Dict[Tuple[str, int], SimulationResult]:
        """Simulate every ``pending`` cell and return results keyed by cell.

        ``pending`` holds ``(label, trace index)`` pairs; ``specs`` and
        ``sizes`` map each label to its resolved spec and size profile.
        Implementations must return one result per requested cell and may
        call ``progress(done, total)`` as cells complete.
        """
        raise NotImplementedError


@dataclass
class ConfigurationRun:
    """Results of one configuration over one collection of traces."""

    configuration: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def average_mpki(self) -> float:
        """Arithmetic mean MPKI over the traces."""
        return average_mpki(self.results)

    @property
    def storage_bits(self) -> int:
        """Storage of the configuration (identical across traces)."""
        if not self.results:
            return 0
        return self.results[0].storage_bits

    def mpki_by_trace(self) -> Dict[str, float]:
        """Map of trace name to MPKI."""
        return {result.trace_name: result.mpki for result in self.results}

    def result_for(self, trace_name: str) -> SimulationResult:
        """The :class:`SimulationResult` for ``trace_name``."""
        for result in self.results:
            if result.trace_name == trace_name:
                return result
        raise KeyError(f"no result for trace {trace_name!r}")


class SuiteRunner:
    """Runs predictor configurations over a fixed set of traces.

    Parameters
    ----------
    traces:
        The traces to evaluate on (typically one synthetic suite, or the
        concatenation of both).
    profile:
        Size profile passed to :func:`repro.predictors.composites.build_named`
        when a configuration is referenced by name.
    max_workers:
        When greater than 1, registry-named configurations are simulated in
        a process pool with this many workers; ``None`` or 1 keeps
        everything in-process.
    store:
        Persistent result store: a :class:`~repro.store.ResultStore`, a
        directory path, ``None`` (default -- honour ``REPRO_RESULT_STORE``)
        or ``False`` (no store even when the variable is set).  With a
        store, every options-based ``(spec, trace)`` cell is looked up
        before simulating and persisted after, so killed or extended
        sweeps resume from completed cells and separate runs (and
        concurrent workers) sharing one store directory reuse each other's
        results.  Factory and builder-based runs have no content-addressed
        identity and bypass the store.
    backend:
        Execution backend for portable spec cells: ``None`` (default --
        ``"pool"`` when ``max_workers`` asks for one, ``"serial"``
        otherwise), the explicit strings ``"serial"`` / ``"pool"``, or an
        object with the :class:`~repro.dist.client.DistBackend` ``execute``
        signature to run cells on a cluster.  ``"serial"`` forces
        in-process simulation even when ``max_workers`` is set.
    progress:
        Optional ``(done, total)`` callable invoked as cells complete
        (simulated, loaded from the store, or already memoised) -- e.g. a
        :class:`~repro.common.progress.ProgressPrinter` for live sweep
        output.
    batch:
        Same-trace cell batching for the serial and pool execution paths
        (:func:`~repro.sim.engine.simulate_many` drives every cell of a
        group in one trace traversal).  ``None``/``True`` (default)
        enables it with the :data:`DEFAULT_BATCH_CELLS` group ceiling, an
        ``int`` caps group size explicitly, and ``False`` disables
        batching entirely, restoring one simulation task per cell.
        Batching never changes results, store cell keys or exported
        bytes -- it only changes how many cells one task covers.
    timings:
        Per-cell timing artifact (see :mod:`repro.obs.timings`).
        ``None``/``True`` (default) writes ``timings.jsonl`` next to the
        result store when one is configured (honouring
        ``REPRO_TIMINGS``); ``False`` disables capture; a path or
        :class:`~repro.obs.timings.TimingLog` redirects it.  Timing
        capture never changes results or store bytes.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        profile: str = "default",
        max_workers: Optional[int] = None,
        store: Union[ResultStore, str, Path, None, bool] = None,
        backend: Union[str, "ExecutionBackend", None] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        batch: Union[bool, int, None] = None,
        timings: Union[TimingLog, str, Path, None, bool] = None,
    ) -> None:
        if not traces:
            raise ValueError("the runner needs at least one trace")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if isinstance(batch, int) and not isinstance(batch, bool) and batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        if isinstance(backend, str):
            if backend not in ("serial", "pool"):
                raise ValueError(
                    f"unknown backend {backend!r}; use 'serial', 'pool' or a "
                    "backend object (e.g. repro.dist.DistBackend)"
                )
        elif backend is not None and not callable(getattr(backend, "execute", None)):
            raise TypeError(
                "a backend object needs an execute() method "
                f"(got {type(backend).__name__})"
            )
        self.traces = list(traces)
        self.profile = profile
        self.max_workers = max_workers
        self.store = ResultStore.resolve(store)
        self.backend = backend
        self.progress = progress
        self.batch = batch
        if timings is False:
            self.timings: Optional[TimingLog] = None
        elif isinstance(timings, TimingLog):
            self.timings = timings
        elif isinstance(timings, (str, Path)):
            self.timings = TimingLog(timings, component="runner")
        else:  # None / True: anchor next to the store, when there is one
            self.timings = timing_log_for(
                self.store.root if self.store is not None else None,
                component="runner",
            )
        #: (validity stamp, run) per key -- see ``_CacheKey``/``_CacheEntry``.
        self._cache: Dict[_CacheKey, _CacheEntry] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._progress_total = 0
        self._progress_done = 0
        self._progress_active = False

    def trace_names(self) -> List[str]:
        """Names of the traces the runner evaluates on."""
        return [trace.name for trace in self.traces]

    def _traces_digest(self) -> str:
        """Hash over the traces' content fingerprints (memo key component).

        Recomputed per lookup from the traces' cached fingerprints, so a
        trace mutated (or regenerated) in place changes the digest and the
        memo can never serve a run computed from the old content.
        """
        digest = hashlib.sha256()
        for trace in self.traces:
            digest.update(trace.fingerprint().encode("ascii"))
        return digest.hexdigest()

    def _batch_enabled(self) -> bool:
        """Whether same-trace cell batching is on (the default)."""
        return self.batch is not False

    def _batch_limit(self) -> int:
        """Ceiling on cells per batched task."""
        if isinstance(self.batch, int) and not isinstance(self.batch, bool):
            return self.batch
        return DEFAULT_BATCH_CELLS

    def _use_batch(self, units: int) -> bool:
        """Whether ``units`` independent cells go through the batch path.

        The batch path fans cells over the configured backend: always for
        an explicit backend object (a remote backend handles even one
        cell), for more than one cell under ``backend="pool"``, when the
        ``backend=None`` default has ``max_workers`` configure a pool, and
        -- with cell batching enabled, its default -- for more than one
        cell even in-process, so same-trace cells share one traversal.
        ``backend="serial"`` with ``batch=False`` never batches.
        """
        if self.backend is None:
            if self.max_workers is not None and self.max_workers > 1 and units > 1:
                return True
            return self._batch_enabled() and units > 1
        if self.backend == "serial":
            return self._batch_enabled() and units > 1
        if self.backend == "pool":
            return units > 1
        return units >= 1

    # ----------------------------------------------------------------- #
    # Progress accounting
    # ----------------------------------------------------------------- #
    #
    # One top-level run_spec/run_specs call owns a progress "session":
    # it fixes the cell total up front and every completed cell --
    # simulated, loaded from the store, or served from the memo --
    # advances the shared counter, so nested calls (run_specs delegating
    # to run_spec, the batch path) all report into one display.

    def _progress_begin(self, total: int) -> bool:
        if self.progress is None or self._progress_active:
            return False
        self._progress_active = True
        self._progress_total = total
        self._progress_done = 0
        self.progress(0, total)  # starts the display's clock
        return True

    def _progress_advance(self, cells: int = 1) -> None:
        if not self._progress_active or cells <= 0:
            return
        self._progress_done = min(
            self._progress_done + cells, self._progress_total
        )
        self.progress(self._progress_done, self._progress_total)

    def _progress_end(self, owned: bool) -> None:
        if owned:
            self._progress_active = False

    def run(
        self,
        configuration: str,
        factory: Optional[PredictorFactory] = None,
        track_per_pc: bool = False,
    ) -> ConfigurationRun:
        """Run ``configuration`` over every trace (memoised).

        ``factory`` overrides how the predictor is built; by default the
        configuration name is looked up in the composite registry (the
        call is equivalent to :meth:`run_spec` with a named spec, and
        shares its memoisation).  A fresh predictor instance is built per
        trace, as in the championship framework.  Factory runs are always
        in-process and are memoised on the factory's identity, so they
        never shadow registry results for the same name (nor each other).
        """
        if factory is None:
            from repro.api.specs import PredictorSpec

            return self.run_spec(
                PredictorSpec.from_named(configuration, profile=self.profile),
                track_per_pc,
            )
        key = (
            configuration, self.profile, bool(track_per_pc), 0, "factory",
            self._traces_digest(),
        )
        cached = self._cache.get(key)
        if cached is not None and cached[0] is factory:
            return cached[1]
        owned = self._progress_begin(len(self.traces))
        try:
            run = ConfigurationRun(configuration=configuration)
            for trace in self.traces:
                run.results.append(
                    simulate(factory(), trace, track_per_pc=track_per_pc)
                )
                self._progress_advance()
        finally:
            self._progress_end(owned)
        self._cache[key] = (factory, run)
        return run

    def _spec_key(
        self, spec: "PredictorSpec", track_per_pc: bool, uid: int
    ) -> _CacheKey:
        return (
            spec.label,
            str(spec.profile),
            bool(track_per_pc),
            uid,
            _spec_content(spec),
            self._traces_digest(),
        )

    def _cached_spec_run(
        self, key: _CacheKey, token: int
    ) -> Optional[ConfigurationRun]:
        cached = self._cache.get(key)
        if cached is not None and cached[0] == token:
            return cached[1]
        return None

    def _store_keys(
        self, resolved: "PredictorSpec", track_per_pc: bool, registry
    ) -> Optional[List[str]]:
        """Per-trace persistent-store keys for a resolved spec.

        ``None`` when the store does not apply: no store configured, the
        spec did not resolve to explicit options (builder-based specs have
        no content-addressed identity), or its profile name does not
        resolve (the subsequent build will raise the real error).
        """
        if self.store is None or not isinstance(resolved.base, CompositeOptions):
            return None
        if registry is None:
            from repro.api.registry import default_registry

            registry = default_registry()
        try:
            sizes = registry.resolve_profile(resolved.profile)
        except KeyError:
            return None
        content = resolved.content()
        sizes_content = profile_content(sizes)
        return [
            ResultStore.cell_key(
                content, sizes_content, trace.fingerprint(), track_per_pc
            )
            for trace in self.traces
        ]

    def _store_put(
        self,
        key: str,
        result: SimulationResult,
        resolved: "PredictorSpec",
        trace: Trace,
    ) -> None:
        """Best-effort persist: an unwritable store must not fail the run."""
        try:
            self.store.put(
                key,
                result,
                label=resolved.label,
                trace_fingerprint=trace.fingerprint(),
                spec=resolved.to_dict(),
            )
        except diskguard.DiskPressureError as error:
            # The run keeps its results in memory; warn once so a sweep
            # that silently produced an empty store is explicable.
            if self.store.writes_shed == 1:
                print(f"store: shedding result persists ({error})", file=sys.stderr)
        except (OSError, TypeError, ValueError):
            pass

    def run_spec(
        self,
        spec: "PredictorSpec",
        track_per_pc: bool = False,
        registry=None,
    ) -> ConfigurationRun:
        """Run a declarative :class:`~repro.api.specs.PredictorSpec`.

        The spec carries its own profile and overrides; results are
        memoised on the spec's label *and* content (see ``_CacheKey``), so
        same-label specs with different content never shadow each other,
        and :meth:`run`-style named callers share work with specs built
        via ``from_named`` (content is compared textually, so an
        options-based spec does not share with the equivalent named one).
        A registry mutation invalidates its entries (stale entries are
        replaced in place, so mutate-then-run cycles do not grow the
        cache).  Specs that resolve to explicit options are dispatched to
        the worker pool when one is configured (and no scoped ``registry``
        is in play); builder-based specs run in-process.
        """
        uid, token = _registry_identity(registry)
        key = self._spec_key(spec, track_per_pc, uid)
        cached = self._cached_spec_run(key, token)
        if cached is not None:
            return cached
        owned = self._progress_begin(len(self.traces))
        try:
            resolved = spec.resolve(registry)
            if (
                registry is None
                and self._use_batch(len(self.traces))
                and isinstance(resolved.base, CompositeOptions)
            ):
                run = self._run_batch_specs({spec.label: resolved}, track_per_pc)[
                    spec.label
                ]
            else:
                store_keys = self._store_keys(resolved, track_per_pc, registry)
                run = ConfigurationRun(configuration=spec.label)
                for index, trace in enumerate(self.traces):
                    result = (
                        self.store.get(store_keys[index]) if store_keys else None
                    )
                    if result is None:
                        simulate_started = time.monotonic()
                        result = simulate(
                            spec.build(registry), trace, track_per_pc=track_per_pc
                        )
                        simulate_seconds = time.monotonic() - simulate_started
                        store_seconds = None
                        if store_keys:
                            store_started = time.monotonic()
                            self._store_put(store_keys[index], result, resolved, trace)
                            store_seconds = time.monotonic() - store_started
                        if self.timings is not None:
                            phases = {"simulate": simulate_seconds}
                            if store_seconds is not None:
                                phases["store_write"] = store_seconds
                            self.timings.record(
                                backend="serial",
                                label=spec.label,
                                trace=trace.name,
                                phases=phases,
                            )
                    else:
                        # The stored cell may have been written under another
                        # display name for the same content.
                        result.predictor_name = spec.label
                    run.results.append(result)
                    self._progress_advance()
        finally:
            self._progress_end(owned)
            if self.timings is not None:
                self.timings.write_summary()
        self._cache[key] = (token, run)
        return run

    def run_specs(
        self,
        specs: Iterable["PredictorSpec"],
        track_per_pc: bool = False,
        registry=None,
    ) -> Dict[str, ConfigurationRun]:
        """Run several specs and return their runs keyed by label.

        Like :meth:`run_many`, all missing portable specs are dispatched to
        the process pool as one batch of ``(spec, trace)`` pairs.  Two
        different specs sharing one label would shadow each other in the
        returned dict, so that is rejected.
        """
        specs = list(specs)
        contents: Dict[str, str] = {}
        for spec in specs:
            content = _spec_content(spec)
            if contents.setdefault(spec.label, content) != content:
                raise ValueError(
                    f"two different specs share the label {spec.label!r}; "
                    "give one an explicit name"
                )
        owned = self._progress_begin(len(specs) * len(self.traces))
        try:
            # Cells of specs that are already memoised (or duplicated in
            # this call) complete instantly; count them up front so the
            # session total is honest.
            uid, token = _registry_identity(registry)
            instant = 0
            seen: set = set()
            for spec in specs:
                key = self._spec_key(spec, track_per_pc, uid)
                if (
                    self._cached_spec_run(key, token) is not None
                    or spec.label in seen
                ):
                    instant += len(self.traces)
                seen.add(spec.label)
            self._progress_advance(instant)
            if registry is None:
                batch: Dict[str, "PredictorSpec"] = {}
                keys: Dict[str, _CacheKey] = {}
                for spec in specs:
                    key = self._spec_key(spec, track_per_pc, uid)
                    if (
                        self._cached_spec_run(key, token) is not None
                        or spec.label in batch
                    ):
                        continue
                    resolved = spec.resolve(registry)
                    if isinstance(resolved.base, CompositeOptions):
                        batch[spec.label] = resolved
                        keys[spec.label] = key
                if self._use_batch(len(batch) * len(self.traces)):
                    for label, run in self._run_batch_specs(
                        batch, track_per_pc
                    ).items():
                        self._cache[keys[label]] = (token, run)
            return {
                spec.label: self.run_spec(spec, track_per_pc, registry=registry)
                for spec in specs
            }
        finally:
            self._progress_end(owned)
            if self.timings is not None:
                self.timings.write_summary()

    def _get_pool(self) -> ProcessPoolExecutor:
        """Worker pool, created on first use and reused across runs.

        Reusing the pool avoids paying process start-up once per
        configuration when experiments call :meth:`run` one configuration
        at a time.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self.timings is not None:
            self.timings.write_summary()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def _run_batch_specs(
        self, specs: Mapping[str, "PredictorSpec"], track_per_pc: bool
    ) -> Dict[str, ConfigurationRun]:
        """Fan every (resolved spec, trace) pair across the active backend.

        Profiles are resolved to :class:`SizeProfile` instances here, in
        the parent, so pool workers and remote backends never consult a
        registry for them (custom profiles survive the ``spawn`` start
        method and the wire protocol, and unknown profile names fail fast
        with a parent-side KeyError).

        With a persistent store, cells already on disk are filled in
        directly and only the misses are executed -- a fully stored batch
        never even touches the backend.
        """
        runs = {label: ConfigurationRun(configuration=label) for label in specs}
        slots: Dict[str, List[Optional[SimulationResult]]] = {
            label: [None] * len(self.traces) for label in specs
        }
        store_keys = {
            label: self._store_keys(spec, track_per_pc, None)
            for label, spec in specs.items()
        }
        pending: List[Tuple[str, int]] = []
        for label in specs:
            keys = store_keys[label]
            for index in range(len(self.traces)):
                cached = self.store.get(keys[index]) if keys else None
                if cached is not None:
                    cached.predictor_name = label
                    slots[label][index] = cached
                    self._progress_advance()
                else:
                    pending.append((label, index))
        if pending:
            sizes = {
                label: _default_profile(spec.profile)
                for label, spec in specs.items()
            }
            for (label, index), result, timing in self._execute_pending(
                specs, sizes, pending, track_per_pc
            ):
                keys = store_keys[label]
                store_seconds = None
                if keys:
                    store_started = time.monotonic()
                    self._store_put(
                        keys[index], result, specs[label], self.traces[index]
                    )
                    store_seconds = time.monotonic() - store_started
                if self.timings is not None and timing is not None:
                    phases = dict(timing["phases"])
                    if store_seconds is not None:
                        phases["store_write"] = store_seconds
                    self.timings.record(
                        backend=timing["backend"],
                        label=label,
                        trace=self.traces[index].name,
                        phases=phases,
                        batch=timing.get("batch", 1),
                    )
                slots[label][index] = result
        for label in specs:
            runs[label].results.extend(slots[label])
        return runs

    def _group_pending(
        self,
        pending: Sequence[Tuple[str, int]],
        use_pool: bool,
        specs: Optional[Mapping[str, "PredictorSpec"]] = None,
        sizes: Optional[Mapping[str, SizeProfile]] = None,
    ) -> List[Tuple[int, List[str]]]:
        """Chunk missing cells into same-trace ``(trace index, labels)`` groups.

        Cells sharing a trace share one traversal, so they are grouped by
        trace index and chunked at the batch ceiling.  Within one trace
        the labels are ordered by their shared-core key
        (:func:`~repro.api.specs.core_schedule_key`, stable -- submission
        order breaks ties) so that same-core cells land in the same chunk
        and :func:`~repro.sim.engine.simulate_many` can fan them out of
        one core; this is a scheduling hint only and never changes
        results.  On the pool path the ceiling is additionally capped at
        a fair share of the pending cells, so a grid over few traces
        still keeps every worker busy instead of serialising into a few
        giant tasks.
        """
        by_trace: Dict[int, List[str]] = {}
        for label, index in pending:
            by_trace.setdefault(index, []).append(label)
        if specs is not None and sizes is not None:
            keys = {
                label: core_schedule_key(specs[label], sizes[label])
                for labels in by_trace.values()
                for label in labels
            }
            for labels in by_trace.values():
                labels.sort(key=keys.__getitem__)
        limit = self._batch_limit()
        if use_pool and self.max_workers:
            fair = -(-len(pending) // self.max_workers)  # ceil division
            limit = max(1, min(limit, fair))
        groups: List[Tuple[int, List[str]]] = []
        for index, labels in by_trace.items():
            for start in range(0, len(labels), limit):
                groups.append((index, labels[start:start + limit]))
        return groups

    def _execute_pending(
        self,
        specs: Mapping[str, "PredictorSpec"],
        sizes: Mapping[str, SizeProfile],
        pending: Sequence[Tuple[str, int]],
        track_per_pc: bool,
    ) -> Iterable[Tuple[Tuple[str, int], SimulationResult, Optional[Dict[str, Any]]]]:
        """Yield ``((label, index), result, timing)`` for every missing cell.

        Dispatches to the backend object when one is set; otherwise
        same-trace cells are grouped into batched tasks (one
        :func:`~repro.sim.engine.simulate_many` traversal per group) and
        run in-process or across the local pool -- or, with ``batch``
        disabled, one per-cell pool task each, the pre-batching layout.
        Results are yielded as they become available so the caller
        persists completed cells incrementally (an interrupted sweep
        keeps what finished).

        ``timing`` is ``None`` (backend-object cells: the backend owns its
        own timing artifact) or ``{"backend", "phases", "batch"}`` with a
        measured ``simulate`` wall -- pool cells measure submit-to-result
        turnaround (queue wait included), and batched cells share one
        group wall across their ``batch`` cells.
        """
        backend = self.backend if not isinstance(self.backend, str) else None
        if backend is not None:
            last = 0

            def _advance_remote(done: int, total: int) -> None:
                nonlocal last
                self._progress_advance(done - last)
                last = done

            results = backend.execute(
                specs=specs,
                sizes=sizes,
                traces=self.traces,
                pending=list(pending),
                track_per_pc=track_per_pc,
                progress=_advance_remote,
            )
            for cell in pending:
                result = results.get(cell)
                if result is None:
                    label, index = cell
                    raise RuntimeError(
                        f"backend {getattr(backend, 'name', backend)!r} returned "
                        f"no result for cell ({label!r}, {self.traces[index].name})"
                    )
                yield cell, result, None
            return
        use_pool = self.backend == "pool" or (
            self.backend is None
            and self.max_workers is not None
            and self.max_workers > 1
        )
        if not self._batch_enabled():
            pool = self._get_pool()
            futures = {
                pool.submit(
                    _simulate_spec,
                    specs[label].to_dict(),
                    sizes[label],
                    self.traces[index],
                    track_per_pc,
                ): (label, index, time.monotonic())
                for label, index in pending
            }
            for future in as_completed(futures):
                self._progress_advance()
                label, index, submitted = futures[future]
                timing = {
                    "backend": "pool",
                    "phases": {"simulate": time.monotonic() - submitted},
                    "batch": 1,
                }
                yield (label, index), future.result(), timing
            return
        groups = self._group_pending(pending, use_pool, specs, sizes)
        if use_pool:
            pool = self._get_pool()
            batch_futures = {
                pool.submit(
                    _simulate_spec_batch,
                    [(specs[label].to_dict(), sizes[label]) for label in labels],
                    self.traces[index],
                    track_per_pc,
                ): (index, labels, time.monotonic())
                for index, labels in groups
            }
            for future in as_completed(batch_futures):
                index, labels, submitted = batch_futures[future]
                timing = {
                    "backend": "pool",
                    "phases": {"simulate": time.monotonic() - submitted},
                    "batch": len(labels),
                }
                for label, result in zip(labels, self._batch_results(future.result)):
                    self._progress_advance()
                    yield (label, index), result, timing
            return
        for index, labels in groups:
            entries = [(specs[label].to_dict(), sizes[label]) for label in labels]

            def _run(entries=entries, index=index):
                return _simulate_spec_batch(entries, self.traces[index], track_per_pc)

            group_started = time.monotonic()
            results = self._batch_results(_run)
            timing = {
                "backend": "serial",
                "phases": {"simulate": time.monotonic() - group_started},
                "batch": len(labels),
            }
            for label, result in zip(labels, results):
                self._progress_advance()
                yield (label, index), result, timing

    @staticmethod
    def _batch_results(run: Callable[[], List[SimulationResult]]) -> List[SimulationResult]:
        """Run one batched task, unwrapping a cell failure to its real error.

        The runner fails the whole run on the first bad cell (as the
        per-cell path did via ``future.result()``), so the cell's original
        exception -- not the :class:`BatchCellError` envelope -- is what
        callers see.
        """
        try:
            return run()
        except BatchCellError as error:
            raise error.original from error

    def run_many(
        self,
        configurations: Iterable[str],
        factories: Optional[Mapping[str, PredictorFactory]] = None,
        track_per_pc: bool = False,
    ) -> Dict[str, ConfigurationRun]:
        """Run several configurations and return them keyed by name.

        With ``max_workers`` set, all missing registry-named configurations
        are dispatched to the process pool as one batch of
        ``(configuration, trace)`` pairs, which keeps every worker busy even
        when individual configurations have fewer traces than workers.
        Configurations with custom factories run in-process.
        """
        from repro.api.specs import PredictorSpec

        factories = factories or {}
        configurations = list(configurations)
        named = [c for c in configurations if c not in factories]
        named_runs = self.run_specs(
            (PredictorSpec.from_named(c, profile=self.profile) for c in named),
            track_per_pc,
        )
        return {
            configuration: (
                named_runs[configuration]
                if configuration in named_runs
                else self.run(
                    configuration, factories[configuration], track_per_pc
                )
            )
            for configuration in configurations
        }

    def invalidate(self, configuration: Optional[str] = None) -> None:
        """Drop memoised results (all of them, or one configuration/label)."""
        if configuration is None:
            self._cache.clear()
        else:
            for key in [k for k in self._cache if k[0] == configuration]:
                del self._cache[key]
