"""Suite runner: evaluate many predictor configurations over many traces.

The benchmark harness and the examples all follow the same pattern: build a
set of traces (one or both synthetic suites), run a set of predictor
configurations over every trace, and aggregate per-suite average MPKI.
:class:`SuiteRunner` implements that pattern once, with memoisation so that
several experiments sharing a configuration (for example Table 1 and
Figure 8, which both need ``tage-gsc`` and ``tage-gsc+imli``) only pay for
the simulation once.

With ``max_workers`` set, the runner fans independent ``(configuration,
trace)`` simulations across a :class:`concurrent.futures.ProcessPoolExecutor`
-- each pair is a self-contained unit of work (a fresh predictor trained on
one trace), so the parallel results are bit-identical to the serial ones and
are merged back into the same memoisation cache.  Only configurations built
from the composite registry by name can be dispatched to workers;
configurations with custom (potentially unpicklable) factories fall back to
in-process simulation transparently.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import build_named
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import average_mpki
from repro.trace.trace import Trace

__all__ = ["ConfigurationRun", "SuiteRunner"]

PredictorFactory = Callable[[], BranchPredictor]

#: Memoisation key: (configuration name, per-PC tracking requested).  The
#: tracking flag is part of the key because a run simulated without per-PC
#: tracking has empty ``per_pc_mispredictions`` and must not satisfy a
#: later request that needs them.
_CacheKey = Tuple[str, bool]


def _simulate_named(
    configuration: str, profile: str, trace: Trace, track_per_pc: bool
) -> SimulationResult:
    """Worker entry point: build a registry predictor and simulate one trace."""
    predictor = build_named(configuration, profile=profile)
    return simulate(predictor, trace, track_per_pc=track_per_pc)


@dataclass
class ConfigurationRun:
    """Results of one configuration over one collection of traces."""

    configuration: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def average_mpki(self) -> float:
        """Arithmetic mean MPKI over the traces."""
        return average_mpki(self.results)

    @property
    def storage_bits(self) -> int:
        """Storage of the configuration (identical across traces)."""
        if not self.results:
            return 0
        return self.results[0].storage_bits

    def mpki_by_trace(self) -> Dict[str, float]:
        """Map of trace name to MPKI."""
        return {result.trace_name: result.mpki for result in self.results}

    def result_for(self, trace_name: str) -> SimulationResult:
        """The :class:`SimulationResult` for ``trace_name``."""
        for result in self.results:
            if result.trace_name == trace_name:
                return result
        raise KeyError(f"no result for trace {trace_name!r}")


class SuiteRunner:
    """Runs predictor configurations over a fixed set of traces.

    Parameters
    ----------
    traces:
        The traces to evaluate on (typically one synthetic suite, or the
        concatenation of both).
    profile:
        Size profile passed to :func:`repro.predictors.composites.build_named`
        when a configuration is referenced by name.
    max_workers:
        When greater than 1, registry-named configurations are simulated in
        a process pool with this many workers; ``None`` or 1 keeps
        everything in-process.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        profile: str = "default",
        max_workers: Optional[int] = None,
    ) -> None:
        if not traces:
            raise ValueError("the runner needs at least one trace")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.traces = list(traces)
        self.profile = profile
        self.max_workers = max_workers
        self._cache: Dict[_CacheKey, ConfigurationRun] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    def trace_names(self) -> List[str]:
        """Names of the traces the runner evaluates on."""
        return [trace.name for trace in self.traces]

    @property
    def _parallel(self) -> bool:
        return self.max_workers is not None and self.max_workers > 1 and len(self.traces) > 1

    def run(
        self,
        configuration: str,
        factory: Optional[PredictorFactory] = None,
        track_per_pc: bool = False,
    ) -> ConfigurationRun:
        """Run ``configuration`` over every trace (memoised by name).

        ``factory`` overrides how the predictor is built; by default the
        configuration name is looked up in the composite registry.  A fresh
        predictor instance is built per trace, as in the championship
        framework.  Results are memoised per ``(configuration,
        track_per_pc)`` so a cached run without per-PC data is never
        returned when per-PC data is requested.
        """
        key = (configuration, bool(track_per_pc))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if factory is None and self._parallel:
            run = self._run_parallel([configuration], track_per_pc)[configuration]
        else:
            run = self._run_serial(configuration, factory, track_per_pc)
        self._cache[key] = run
        return run

    def _run_serial(
        self,
        configuration: str,
        factory: Optional[PredictorFactory],
        track_per_pc: bool,
    ) -> ConfigurationRun:
        if factory is None:
            factory = lambda: build_named(configuration, profile=self.profile)  # noqa: E731
        run = ConfigurationRun(configuration=configuration)
        for trace in self.traces:
            predictor = factory()
            run.results.append(simulate(predictor, trace, track_per_pc=track_per_pc))
        return run

    def _get_pool(self) -> ProcessPoolExecutor:
        """Worker pool, created on first use and reused across runs.

        Reusing the pool avoids paying process start-up once per
        configuration when experiments call :meth:`run` one configuration
        at a time.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def _run_parallel(
        self, configurations: Sequence[str], track_per_pc: bool
    ) -> Dict[str, ConfigurationRun]:
        """Fan every (configuration, trace) pair across the process pool."""
        runs = {
            configuration: ConfigurationRun(configuration=configuration)
            for configuration in configurations
        }
        pool = self._get_pool()
        futures = [
            (
                configuration,
                pool.submit(
                    _simulate_named,
                    configuration,
                    self.profile,
                    trace,
                    track_per_pc,
                ),
            )
            for configuration in configurations
            for trace in self.traces
        ]
        # Futures were submitted in trace order per configuration, so
        # appending in submission order preserves the serial layout.
        for configuration, future in futures:
            runs[configuration].results.append(future.result())
        return runs

    def run_many(
        self,
        configurations: Iterable[str],
        factories: Optional[Mapping[str, PredictorFactory]] = None,
        track_per_pc: bool = False,
    ) -> Dict[str, ConfigurationRun]:
        """Run several configurations and return them keyed by name.

        With ``max_workers`` set, all missing registry-named configurations
        are dispatched to the process pool as one batch of
        ``(configuration, trace)`` pairs, which keeps every worker busy even
        when individual configurations have fewer traces than workers.
        """
        factories = factories or {}
        configurations = list(configurations)
        runs: Dict[str, ConfigurationRun] = {}
        if self._parallel:
            missing = [
                configuration
                for configuration in configurations
                if (configuration, bool(track_per_pc)) not in self._cache
                and configuration not in factories
            ]
            if missing:
                for configuration, run in self._run_parallel(
                    missing, track_per_pc
                ).items():
                    self._cache[(configuration, bool(track_per_pc))] = run
        for configuration in configurations:
            runs[configuration] = self.run(
                configuration, factories.get(configuration), track_per_pc
            )
        return runs

    def invalidate(self, configuration: Optional[str] = None) -> None:
        """Drop memoised results (all of them, or one configuration)."""
        if configuration is None:
            self._cache.clear()
        else:
            for track_per_pc in (False, True):
                self._cache.pop((configuration, track_per_pc), None)
