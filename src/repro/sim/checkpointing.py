"""Speculative-state checkpointing model.

The paper's practicality argument (Sections 2.3, 4.2.1 and 4.3.2) is that
the speculative state of the IMLI components can be managed exactly like
the speculative global history: checkpoint a few tens of bits per in-flight
branch and restore the checkpoint on a misprediction.  Local-history
components (and the wormhole predictor) instead require an associative
search of the window of in-flight branches on every fetch.

This module provides a small front-end model that demonstrates and
quantifies both points:

* :func:`run_checkpoint_recovery` drives a predictor over a trace while a
  *speculative* IMLI counter is advanced with predicted directions,
  checkpointed per branch, and restored on mispredictions.  It verifies that
  after every recovery the speculative counter agrees with the committed
  (architectural) counter -- i.e. checkpoint recovery is sufficient, no
  associative structure is needed.
* :func:`speculative_management_cost` compares the bookkeeping cost per
  fetched branch: checkpoint bits for global-history/IMLI state versus
  associative comparisons for local-history state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.imli import IMLIState
from repro.core.speculative import SpeculativeIMLITracker
from repro.predictors.base import BranchPredictor
from repro.trace.trace import Trace

__all__ = [
    "CheckpointRecoveryReport",
    "run_checkpoint_recovery",
    "speculative_management_cost",
]


@dataclass(frozen=True)
class CheckpointRecoveryReport:
    """Outcome of the speculative IMLI checkpoint/recovery model."""

    trace_name: str
    predictor_name: str
    conditional_branches: int
    mispredictions: int
    recoveries: int
    checkpoint_bits_per_branch: int
    divergence_events: int

    @property
    def recovered_correctly(self) -> bool:
        """True when every misprediction recovery restored the exact state."""
        return self.divergence_events == 0


def run_checkpoint_recovery(
    predictor: BranchPredictor,
    trace: Trace,
    counter_bits: int = 10,
) -> CheckpointRecoveryReport:
    """Model speculative IMLI tracking with checkpoint-based recovery.

    The committed (architectural) IMLI counter is advanced with actual
    outcomes; the speculative counter is advanced with *predicted*
    directions.  A checkpoint is taken before each branch is speculated.  On
    a misprediction the checkpoint is restored and the speculative counter
    is advanced with the correct outcome, modelling squash-and-restart.  A
    divergence event is recorded whenever, after this recovery discipline,
    the speculative counter disagrees with the committed counter -- the
    report should always show zero divergences.
    """
    committed = IMLIState(counter_bits)
    tracker = SpeculativeIMLITracker(counter_bits)
    mispredictions = 0
    recoveries = 0
    divergences = 0
    conditional = 0

    for record in trace:
        if not record.is_conditional:
            predictor.observe_unconditional(record)
            continue
        conditional += 1
        checkpoint = tracker.checkpoint()
        prediction = predictor.predict(record)
        tracker.speculate(record.is_backward, prediction)
        predictor.update(record, prediction)
        committed.update(record)
        if prediction != record.taken:
            mispredictions += 1
            recoveries += 1
            tracker.recover(checkpoint, record.is_backward, record.taken)
        if tracker.count != committed.count:
            divergences += 1
            # Resynchronise so one bug does not cascade into every later branch.
            tracker.speculative.restore(committed.count)

    return CheckpointRecoveryReport(
        trace_name=trace.name,
        predictor_name=predictor.name,
        conditional_branches=conditional,
        mispredictions=mispredictions,
        recoveries=recoveries,
        checkpoint_bits_per_branch=tracker.checkpoint_bits(),
        divergence_events=divergences,
    )


def speculative_management_cost(
    inflight_window: int = 64,
    global_history_capacity: int = 1024,
    path_history_capacity: int = 32,
    imli_counter_bits: int = 10,
    pipe_vector_bits: int = 16,
    local_history_bits: int = 16,
    wormhole_history_bits: Optional[int] = 128,
) -> Dict[str, Dict[str, object]]:
    """Per-fetched-branch speculative management cost of each history kind.

    Returns, for global history, IMLI state, local history and wormhole
    history, the number of checkpoint bits per in-flight branch and whether
    an associative search of the ``inflight_window`` is required (and if
    so, how many entries must be compared per fetch).
    """
    if inflight_window <= 0:
        raise ValueError(f"in-flight window must be positive, got {inflight_window}")
    global_pointer_bits = global_history_capacity.bit_length()
    path_pointer_bits = path_history_capacity.bit_length()
    report: Dict[str, Dict[str, object]] = {
        "global-history": {
            "checkpoint_bits": global_pointer_bits + path_pointer_bits,
            "associative_search": False,
            "comparisons_per_fetch": 0,
        },
        "imli": {
            "checkpoint_bits": imli_counter_bits + pipe_vector_bits,
            "associative_search": False,
            "comparisons_per_fetch": 0,
        },
        "local-history": {
            "checkpoint_bits": 0,
            "associative_search": True,
            "comparisons_per_fetch": inflight_window,
            "bits_carried_per_inflight_branch": local_history_bits,
        },
    }
    if wormhole_history_bits is not None:
        report["wormhole"] = {
            "checkpoint_bits": 0,
            "associative_search": True,
            "comparisons_per_fetch": inflight_window,
            "bits_carried_per_inflight_branch": wormhole_history_bits,
        }
    return report


def total_checkpoint_storage_bits(
    costs: Dict[str, Dict[str, object]], kinds: Sequence[str], inflight_window: int = 64
) -> int:
    """Total checkpoint storage for ``kinds`` across the in-flight window."""
    total = 0
    for kind in kinds:
        if kind not in costs:
            raise KeyError(f"unknown history kind {kind!r}; known: {sorted(costs)}")
        total += int(costs[kind]["checkpoint_bits"]) * inflight_window
    return total
