"""Storage and speculative-state accounting.

Section 4.4 of the paper argues the IMLI components cost only 708 bytes of
storage and 26 bits of per-checkpoint speculative state (the 10-bit IMLI
counter plus the 16-bit PIPE vector), versus the much larger cost and the
associative in-flight-window search required by local-history components.
This module computes the equivalent accounting for the library's
configurations so the benchmark harness can print the storage columns of
Tables 1 and 2 and the speculative-state comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.predictors.base import BranchPredictor
from repro.predictors.composites import SidecarPredictor, build_named
from repro.predictors.gehl import GEHLPredictor
from repro.predictors.tage_gsc import TAGEGSCPredictor

__all__ = [
    "StorageReport",
    "imli_component_cost_bits",
    "storage_report",
    "speculative_state_report",
]


@dataclass(frozen=True)
class StorageReport:
    """Storage accounting for one configuration."""

    configuration: str
    total_bits: int
    breakdown: Tuple[Tuple[str, int], ...]

    @property
    def total_kilobits(self) -> float:
        """Total storage in Kbits (the unit of Tables 1 and 2)."""
        return self.total_bits / 1024.0

    @property
    def total_bytes(self) -> float:
        """Total storage in bytes."""
        return self.total_bits / 8.0


def _unwrap(predictor: BranchPredictor) -> BranchPredictor:
    return predictor.main if isinstance(predictor, SidecarPredictor) else predictor


def storage_report(
    configuration: str, profile: str = "default", predictor: Optional[BranchPredictor] = None
) -> StorageReport:
    """Compute the storage breakdown of a named configuration."""
    predictor = predictor or build_named(configuration, profile=profile)
    breakdown: List[Tuple[str, int]] = []
    main = _unwrap(predictor)
    if isinstance(main, TAGEGSCPredictor):
        breakdown.append(("tage", main.tage.storage_bits()))
        breakdown.extend(
            (f"sc/{name}", bits)
            for name, bits in main.corrector.component_storage_breakdown()
        )
        breakdown.append(("shared-state", main.state.storage_bits()))
    elif isinstance(main, GEHLPredictor):
        breakdown.extend(
            (f"gehl/{name}", bits)
            for name, bits in main.adder.component_storage_breakdown()
        )
        breakdown.append(("shared-state", main.state.storage_bits()))
    else:
        breakdown.append((main.name, main.storage_bits()))
    if isinstance(predictor, SidecarPredictor):
        if predictor.loop_predictor is not None:
            breakdown.append(("loop-predictor", predictor.loop_predictor.storage_bits()))
        if predictor.wormhole is not None:
            breakdown.append(("wormhole", predictor.wormhole.storage_bits()))
    return StorageReport(
        configuration=configuration,
        total_bits=predictor.storage_bits(),
        breakdown=tuple(breakdown),
    )


def imli_component_cost_bits(profile: str = "default") -> Dict[str, int]:
    """Storage added by the IMLI components alone (Section 4.4).

    Computed as the component-level breakdown difference between the
    ``tage-gsc+imli`` and ``tage-gsc`` configurations.
    """
    base = storage_report("tage-gsc", profile=profile)
    imli = storage_report("tage-gsc+imli", profile=profile)
    base_names = {name for name, _ in base.breakdown}
    added = {
        name: bits for name, bits in imli.breakdown if name not in base_names
    }
    added["total"] = imli.total_bits - base.total_bits
    return added


def speculative_state_report(profile: str = "default") -> Dict[str, Dict[str, object]]:
    """Per-configuration speculative-state management summary.

    For each representative configuration the report gives the number of
    bits that a per-branch checkpoint must hold and whether an associative
    search of the in-flight branch window is required (the qualitative
    hardware-complexity argument of Sections 2.3 and 4.4).
    """
    report: Dict[str, Dict[str, object]] = {}
    for configuration in ("tage-gsc", "tage-gsc+imli", "tage-gsc+l", "tage-gsc+wh"):
        predictor = build_named(configuration, profile=profile)
        main = _unwrap(predictor)
        checkpoint_bits: int
        if isinstance(main, (TAGEGSCPredictor, GEHLPredictor)):
            checkpoint_bits = main.speculative_state_bits()
        else:  # pragma: no cover - all registry configurations hit the branch above
            checkpoint_bits = 0
        uses_local_history = "+l" in configuration or configuration.endswith("-l")
        uses_wormhole = configuration.endswith("+wh")
        report[configuration] = {
            "checkpoint_bits": checkpoint_bits,
            "requires_inflight_window_search": uses_local_history or uses_wormhole,
            "reason": (
                "local histories (and WH per-entry histories) must be read from "
                "the window of in-flight branches on every fetch"
                if uses_local_history or uses_wormhole
                else "checkpointing history pointers, the IMLI counter and the "
                "PIPE vector is sufficient"
            ),
        }
    return report
