"""Read-only HTTP status surface for the distributed-sweep coordinator.

``repro serve --status-port N`` starts a :class:`StatusServer` thread
next to the coordinator's TCP service.  It answers purely from
coordinator snapshots (taken under the coordinator's own lock), never
mutates scheduling state, and is completely independent of the TCP work
protocol -- killing it mid-run affects observability only, never job
correctness.

Endpoints (all ``GET``, all JSON unless noted):

``/status``
    Uptime, job totals, cells done/total, recent cells/s, ETA.
``/jobs``
    One record per submitted job: progress, degradation stats, labels.
``/workers``
    Connected workers: name, leases held, cells completed, last-seen.
``/store``
    Result-store occupancy (cells, bytes, distinct specs/traces).
``/metrics``
    Prometheus text exposition format (0.0.4): status-derived gauges
    plus everything in the process metrics registry.

Everything else is a JSON 404.  The server binds ``127.0.0.1`` by
default -- the surface is unauthenticated and read-only, so it is meant
for the coordinator host (or an ssh tunnel), not the open network.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.common import diskguard
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["DEFAULT_STATUS_PORT", "StatusServer"]

#: One above the coordinator's TCP work port (4780).
DEFAULT_STATUS_PORT = 4781


class StatusServer:
    """Serves coordinator state over HTTP from a daemon thread.

    Parameters
    ----------
    coordinator:
        Object with ``status_snapshot()``, ``jobs_snapshot()`` and
        ``workers_snapshot()`` methods (the dist coordinator).
    store:
        Optional :class:`~repro.store.ResultStore` whose ``summary()``
        backs ``/store``.
    metrics:
        Registry rendered into ``/metrics``; defaults to the
        process-wide one.
    """

    def __init__(
        self,
        coordinator: Any,
        store: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_STATUS_PORT,
    ) -> None:
        self.coordinator = coordinator
        self.store = store
        self.metrics = metrics if metrics is not None else default_registry()
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``.

        Raises ``OSError`` when the port is taken, so callers can map it
        to the same exit code as a coordinator bind failure.
        """
        status = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                status._handle(self)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # status polling must not spam the coordinator log

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        host, port = self._server.server_address[:2]
        self.host, self.port = str(host), int(port)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-status-http",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def close(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/status"
        try:
            if path == "/status":
                self._send_json(request, 200, self.coordinator.status_snapshot())
            elif path == "/jobs":
                self._send_json(request, 200, {"jobs": self.coordinator.jobs_snapshot()})
            elif path == "/workers":
                self._send_json(
                    request, 200, {"workers": self.coordinator.workers_snapshot()}
                )
            elif path == "/store":
                summary = self.store.summary() if self.store is not None else None
                self._send_json(request, 200, {"store": summary})
            elif path == "/metrics":
                self._send_text(request, 200, self._render_metrics())
            else:
                self._send_json(request, 404, {"error": f"no such endpoint: {path}"})
        except BrokenPipeError:
            pass  # poller went away mid-response; nothing to do
        except Exception as error:  # never take the server thread down
            try:
                self._send_json(request, 500, {"error": repr(error)})
            except OSError:
                pass

    def _render_metrics(self) -> str:
        """Status-derived gauges first, then the process registry."""
        lines: List[str] = []

        def gauge(name: str, value: Any, help: str, kind: str = "gauge") -> None:
            if value is None:
                return
            lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            number = float(value)
            text = str(int(number)) if number.is_integer() else repr(number)
            lines.append(f"{name} {text}")

        snap = self.coordinator.status_snapshot()
        stats: Dict[str, int] = snap.get("stats", {})
        gauge("repro_uptime_seconds", snap.get("uptime_seconds"), "Coordinator uptime.")
        gauge("repro_jobs_total", snap.get("jobs_total"), "Jobs submitted.", "counter")
        gauge("repro_jobs_active", snap.get("jobs_active"), "Jobs not yet settled.")
        gauge(
            "repro_cells_done",
            snap.get("cells_done"),
            "Cells completed across all jobs.",
            "counter",
        )
        gauge("repro_cells_total", snap.get("cells_total"), "Cells admitted across all jobs.")
        gauge("repro_cells_pending", snap.get("cells_pending"), "Cells queued, unleased.")
        gauge("repro_cells_leased", snap.get("cells_leased"), "Cells leased to workers.")
        gauge(
            "repro_cells_per_second",
            snap.get("cells_per_second"),
            "Recent completion rate (sliding window).",
        )
        gauge(
            "repro_workers_connected",
            snap.get("workers"),
            "Worker connections currently open.",
        )
        gauge(
            "repro_workers_low_disk",
            snap.get("workers_low_disk"),
            "Connected workers advertising low disk headroom.",
        )
        gauge(
            "repro_cells_requeued_total",
            stats.get("requeued"),
            "Cells requeued after a lost lease.",
            "counter",
        )
        gauge(
            "repro_cells_retried_total",
            stats.get("retried"),
            "Cells re-leased after a loss.",
            "counter",
        )
        gauge(
            "repro_cells_quarantined_total",
            stats.get("quarantined"),
            "Cells quarantined after repeated losses.",
            "counter",
        )
        if self.store is not None:
            summary = self.store.summary()
            gauge("repro_store_cells", summary.get("cells"), "Records in the result store.")
            gauge("repro_store_bytes", summary.get("bytes"), "Result store bytes on disk.")
            gauge(
                "repro_store_distinct_traces",
                summary.get("distinct_traces"),
                "Distinct trace fingerprints in the store.",
            )
            root = getattr(self.store, "root", None)
            if root is not None:
                try:
                    free = diskguard.free_bytes(root)
                except OSError:
                    free = None
                gauge(
                    "repro_store_disk_free_bytes",
                    free,
                    "Free bytes on the filesystem holding the result store.",
                )
                disk_state = diskguard.state(root)
                gauge(
                    "repro_store_disk_low",
                    1 if disk_state in ("low", "critical") else 0,
                    "1 when store disk headroom is below the low threshold.",
                )
                gauge(
                    "repro_store_disk_critical",
                    1 if disk_state == "critical" else 0,
                    "1 when store disk headroom is below the critical threshold.",
                )
        body = "\n".join(lines) + ("\n" if lines else "")
        return body + self.metrics.render_prometheus()

    # -- response helpers ----------------------------------------------

    @staticmethod
    def _send_json(request: BaseHTTPRequestHandler, code: int, payload: Any) -> None:
        data = json.dumps(payload, indent=2, sort_keys=True, default=repr).encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type", "application/json; charset=utf-8")
        request.send_header("Content-Length", str(len(data)))
        request.end_headers()
        request.wfile.write(data)

    @staticmethod
    def _send_text(request: BaseHTTPRequestHandler, code: int, body: str) -> None:
        data = body.encode("utf-8")
        request.send_response(code)
        request.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        request.send_header("Content-Length", str(len(data)))
        request.end_headers()
        request.wfile.write(data)
