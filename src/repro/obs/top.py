"""``repro top`` -- a curses-free live view of a running coordinator.

Polls the HTTP status surface (:mod:`repro.obs.http`) and redraws a
plain-text dashboard: overall progress with ETA, a jobs table, worker
health, degradation counters and a throughput sparkline built from the
client-side history of ``cells_per_second`` samples.  No curses, no
third-party TUI -- just ANSI clear-screen between frames (disable with
``--no-clear`` for dumb terminals or log capture).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, TextIO

__all__ = ["render", "run_top", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[2J\x1b[H"


def sparkline(samples: Sequence[float], width: int = 30) -> str:
    """Unicode sparkline of the most recent ``width`` samples."""
    tail = list(samples)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(tail)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(scale, int(round(value / top * scale)))] for value in tail
    )


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "n/a"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render(
    status: Dict[str, Any],
    jobs: Sequence[Dict[str, Any]],
    workers: Sequence[Dict[str, Any]],
    rate_samples: Sequence[float],
) -> str:
    """One dashboard frame from status-surface snapshots (pure; tested)."""
    lines: List[str] = []
    done = int(status.get("cells_done") or 0)
    total = int(status.get("cells_total") or 0)
    rate = status.get("cells_per_second")
    percent = (100.0 * done / total) if total else 0.0
    lines.append(
        f"repro top · up {_format_seconds(status.get('uptime_seconds'))}"
        f" · jobs {status.get('jobs_active', 0)}/{status.get('jobs_total', 0)} active"
        f" · workers {status.get('workers', 0)}"
    )
    rate_text = f"{rate:.2f} cells/s" if isinstance(rate, (int, float)) else "-- cells/s"
    lines.append(
        f"cells {done}/{total} ({percent:.0f}%) · {rate_text}"
        f" · ETA {_format_seconds(status.get('eta_seconds'))}"
    )
    spark = sparkline(rate_samples)
    if spark:
        lines.append(f"throughput {spark}")
    stats = status.get("stats") or {}
    degraded = [
        f"{key} {stats[key]}"
        for key in ("requeued", "retried", "quarantined")
        if stats.get(key)
    ]
    if degraded:
        lines.append("degradation: " + ", ".join(degraded))
    if jobs:
        lines.append("")
        lines.append(f"{'JOB':>4}  {'DONE':>10}  {'STATE':<9} LABELS")
        for job in jobs:
            state = (
                "error"
                if job.get("error")
                else ("finished" if job.get("finished") else "running")
            )
            labels = ",".join(job.get("labels") or [])
            if len(labels) > 40:
                labels = labels[:37] + "..."
            lines.append(
                f"{job.get('job', '?'):>4}"
                f"  {job.get('done', 0):>4}/{job.get('total', 0):<5}"
                f"  {state:<9} {labels}"
            )
    if workers:
        lines.append("")
        lines.append(f"{'WORKER':<24} {'LEASES':>6} {'DONE':>6} {'SEEN':>8}")
        for worker in workers:
            seen = worker.get("last_seen_seconds")
            seen_text = f"{seen:.1f}s" if isinstance(seen, (int, float)) else "n/a"
            lines.append(
                f"{str(worker.get('name', '?'))[:24]:<24}"
                f" {worker.get('leases', 0):>6}"
                f" {worker.get('completed', 0):>6}"
                f" {seen_text:>8}"
            )
    return "\n".join(lines) + "\n"


def _fetch(base: str, path: str, timeout: float) -> Any:
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_top(
    connect: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    stream: Optional[TextIO] = None,
) -> int:
    """Poll ``connect`` (``host:port``) and redraw until interrupted.

    ``iterations`` bounds the frame count (for tests and one-shot
    checks); ``None`` polls until Ctrl-C.  Returns 0 on a clean exit,
    4 when the status endpoint was never reachable.
    """
    out = stream if stream is not None else sys.stdout
    base = f"http://{connect}"
    samples: Deque[float] = deque(maxlen=120)
    frames = 0
    reached = False
    try:
        while iterations is None or frames < iterations:
            if frames:
                time.sleep(interval)
            frames += 1
            try:
                status = _fetch(base, "/status", timeout=5.0)
                jobs = _fetch(base, "/jobs", timeout=5.0).get("jobs", [])
                workers = _fetch(base, "/workers", timeout=5.0).get("workers", [])
            except (urllib.error.URLError, OSError, ValueError) as error:
                if clear:
                    out.write(_CLEAR)
                out.write(f"repro top: {base} unreachable ({error})\n")
                out.flush()
                continue
            reached = True
            rate = status.get("cells_per_second")
            samples.append(float(rate) if isinstance(rate, (int, float)) else 0.0)
            if clear:
                out.write(_CLEAR)
            out.write(render(status, jobs, workers, samples))
            out.flush()
    except KeyboardInterrupt:
        pass
    return 0 if reached else 4
