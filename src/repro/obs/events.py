"""Structured JSONL event log with size-capped rotation.

Components that want a durable, greppable record of what happened during
a run (the coordinator's connection / requeue / settle events, chiefly)
write one JSON object per line to ``repro.obs.log``::

    {"ts": 1754650000.123, "component": "coordinator",
     "event": "job_settled", "job": 3, "done": 4, "total": 4}

The log is an *operational* artifact -- it never feeds back into
results, store keys or scheduling, so every write is best-effort: an
unwritable log line is dropped silently rather than failing the sweep,
and when disk headroom under the log is critical
(:mod:`repro.common.diskguard`) writes are shed up front so telemetry
never competes with result records for the last free bytes.

Rotation is by size: when the current file would exceed ``max_bytes``
it is renamed to ``<name>.1`` (the previous ``.1`` is dropped), so a
long-lived service keeps at most two bounded files of recent history.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.common import diskguard

__all__ = ["DEFAULT_EVENT_LOG", "EventLog", "event_log_for"]

#: Default event-log file name (written next to the result store).
DEFAULT_EVENT_LOG = "repro.obs.log"

#: Environment variable overriding the event log: ``0``/``off`` disables
#: it entirely, a path value redirects it, unset keeps the default
#: (``repro.obs.log`` next to the store, when there is a store).
_EVENT_LOG_ENV = "REPRO_OBS_LOG"

#: Default rotation threshold: two files of this bound recent history.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class EventLog:
    """Appends timestamped, component-tagged JSON records to one file.

    Parameters
    ----------
    path:
        The JSONL file (parent directories are created on first write).
    component:
        Default ``"component"`` tag of emitted records (per-call
        override via :meth:`emit`'s ``component=``).
    max_bytes:
        Rotation threshold; a write that would push the file past this
        renames it to ``<name>.1`` first.  ``0`` disables rotation.
    """

    def __init__(
        self,
        path: Union[str, Path],
        component: str = "repro",
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = Path(path)
        self.component = component
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()

    def emit(self, event: str, component: Optional[str] = None, **fields: Any) -> None:
        """Append one record (best-effort; never raises on I/O trouble)."""
        record = {
            "ts": time.time(),
            "component": component or self.component,
            "event": event,
        }
        record.update(fields)
        try:
            line = json.dumps(record, ensure_ascii=False, default=repr) + "\n"
        except (TypeError, ValueError):
            return
        data = line.encode("utf-8")
        if diskguard.is_critical(self.path.parent):
            return  # shed telemetry before it competes with durable writes
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._rotate_locked(len(data))
                with open(self.path, "ab") as handle:
                    handle.write(data)
            except OSError:
                pass  # operational logging must never fail the run

    def _rotate_locked(self, incoming: int) -> None:
        if self.max_bytes <= 0:
            return
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        backup = self.path.with_name(self.path.name + ".1")
        try:
            os.replace(self.path, backup)
        except OSError:
            pass


def event_log_for(
    root: Union[str, Path, None], component: str = "repro"
) -> Optional[EventLog]:
    """The event log for a store/artifact directory, honouring the env gate.

    ``REPRO_OBS_LOG`` set to ``0``/``off`` returns ``None``; set to a
    path, that path is used regardless of ``root``; unset, the log is
    ``<root>/repro.obs.log`` (or ``None`` when there is no ``root`` to
    anchor it to).
    """
    value = os.environ.get(_EVENT_LOG_ENV)
    if value is not None:
        stripped = value.strip()
        if stripped.lower() in ("", "0", "off", "false"):
            return None
        return EventLog(stripped, component=component)
    if root is None:
        return None
    return EventLog(Path(root) / DEFAULT_EVENT_LOG, component=component)
