"""Per-cell timing artifacts: ``timings.jsonl`` + aggregated histograms.

Every completed sweep cell -- serial, pool or distributed -- can record
where its wall time went, split into named phases, so a slow run is
diagnosable *from its artifacts* after the fact (no re-run under a
profiler).  Records are one JSON object per line in ``timings.jsonl``
next to the :class:`~repro.store.ResultStore` the run writes to, plus an
aggregated ``timings_summary.json`` with per-phase fixed-bucket
histograms.

Record schema (one line per completed cell)::

    {"ts": 1754650000.12,        # wall-clock write time
     "component": "runner",      # runner | worker | coordinator
     "backend": "serial",        # serial | pool | dist
     "label": "tage-gsc+oh",     # the cell's spec label
     "trace": "SPEC2K6-00",      # the cell's trace name
     "batch": 4,                 # cells sharing the recorded phase walls
     "phases": {"trace_load": 0.01, "simulate": 0.82,
                "store_write": 0.002}}       # seconds, per phase

Phase names by path:

* **serial / pool** (``component: runner``): ``simulate`` and
  ``store_write``; batched groups share one ``simulate`` wall across
  their ``batch`` cells, and pool records measure submit-to-completion
  turnaround (queue wait included).
* **dist, coordinator side** (``component: coordinator``): the worker's
  reported ``trace_load`` / ``simulate`` plus ``total`` (lease grant to
  accepted upload, so ``total - simulate - trace_load`` approximates
  wire + upload overhead).
* **dist, worker side** (``component: worker``; only with a worker-local
  ``--store``): ``trace_load``, ``simulate`` and the measured ``upload``
  exchange.

Timing capture is on whenever a run has a store to anchor the artifact
to, and off otherwise; ``REPRO_TIMINGS=0`` (or ``off``) disables it
explicitly.  Writes are single ``write()`` calls on an append-mode
handle, so concurrent writers (a coordinator and a same-host worker
sharing one store) interleave whole lines, never fragments.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.common import diskguard
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Histogram

__all__ = [
    "TIMINGS_FILE",
    "TIMINGS_SUMMARY_FILE",
    "TimingLog",
    "summarize_timings",
    "timing_log_for",
    "timings_enabled",
]

#: File names written next to the result store root.
TIMINGS_FILE = "timings.jsonl"
TIMINGS_SUMMARY_FILE = "timings_summary.json"

#: Environment variable gating timing capture: ``0``/``off`` disables.
_TIMINGS_ENV = "REPRO_TIMINGS"


def timings_enabled() -> bool:
    """Whether ``REPRO_TIMINGS`` leaves timing capture on (the default)."""
    value = os.environ.get(_TIMINGS_ENV, "")
    return value.strip().lower() not in ("0", "off", "false")


class TimingLog:
    """Appends per-cell phase timings and aggregates them into histograms.

    Parameters
    ----------
    path:
        The ``timings.jsonl`` file (parents created on first write).
    component:
        ``"component"`` tag of every record from this log.
    """

    def __init__(self, path: Union[str, Path], component: str) -> None:
        self.path = Path(path)
        self.component = component
        self.records_written = 0
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self._summary_stamp = -1

    def record(
        self,
        *,
        backend: str,
        label: str,
        trace: str,
        phases: Mapping[str, float],
        batch: int = 1,
    ) -> None:
        """Append one cell's record (best-effort; never fails the run)."""
        clean = {
            str(name): float(value)
            for name, value in phases.items()
            if isinstance(value, (int, float)) and float(value) >= 0.0
        }
        if not clean:
            return
        record = {
            "ts": time.time(),
            "component": self.component,
            "backend": str(backend),
            "label": str(label),
            "trace": str(trace),
            "batch": int(batch),
            "phases": clean,
        }
        line = (json.dumps(record, ensure_ascii=False) + "\n").encode("utf-8")
        with self._lock:
            for name, value in clean.items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = Histogram(
                        f"repro_phase_{_metric_safe(name)}_seconds",
                        buckets=DEFAULT_TIME_BUCKETS,
                    )
                    self._histograms[name] = histogram
                histogram.observe(value)
            if diskguard.is_critical(self.path.parent):
                return  # histograms still updated; only the file write sheds
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "ab") as handle:
                    handle.write(line)
                self.records_written += 1
            except OSError:
                pass

    def summary(self) -> Dict[str, Any]:
        """Per-phase aggregates of everything recorded by this instance."""
        with self._lock:
            return {
                "component": self.component,
                "records": self.records_written,
                "phases": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def write_summary(self, path: Union[str, Path, None] = None) -> Optional[Path]:
        """Persist :meth:`summary` as JSON next to the timings file.

        Skipped (returns ``None``) when nothing new was recorded since
        the last write, so callers can flush at every natural boundary
        without rewriting an unchanged file.
        """
        with self._lock:
            if self.records_written == self._summary_stamp:
                return None
            self._summary_stamp = self.records_written
        target = (
            Path(path)
            if path is not None
            else self.path.with_name(TIMINGS_SUMMARY_FILE)
        )
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(self.summary(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            return None
        return target


def timing_log_for(
    root: Union[str, Path, None], component: str
) -> Optional[TimingLog]:
    """The timing log anchored at a store root, honouring ``REPRO_TIMINGS``.

    ``None`` when there is no root to anchor the artifact to or capture
    is disabled.
    """
    if root is None or not timings_enabled():
        return None
    return TimingLog(Path(root) / TIMINGS_FILE, component=component)


def summarize_timings(path: Union[str, Path]) -> Dict[str, Any]:
    """Offline aggregation of a ``timings.jsonl`` file (any writers).

    Unlike :meth:`TimingLog.summary` (this process's records only), this
    reads the file back, so it covers every component that appended to
    it.  Malformed lines are skipped and counted.
    """
    histograms: Dict[str, Histogram] = {}
    records = 0
    skipped = 0
    by_component: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                phases = record["phases"]
                if not isinstance(phases, dict):
                    raise TypeError("phases is not an object")
            except (ValueError, KeyError, TypeError):
                skipped += 1
                continue
            records += 1
            component = str(record.get("component", "?"))
            by_component[component] = by_component.get(component, 0) + 1
            for name, value in phases.items():
                if not isinstance(value, (int, float)):
                    continue
                histogram = histograms.get(name)
                if histogram is None:
                    histogram = Histogram(
                        f"repro_phase_{_metric_safe(str(name))}_seconds"
                    )
                    histograms[str(name)] = histogram
                histogram.observe(float(value))
    return {
        "records": records,
        "skipped": skipped,
        "by_component": by_component,
        "phases": {
            name: histogram.snapshot()
            for name, histogram in sorted(histograms.items())
        },
    }


def _metric_safe(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
