"""Lightweight in-process metrics: counters, gauges, fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (see :func:`default_registry`)
collects operational counters from the coordinator, the suite runner and
the status server, and renders them in the Prometheus text exposition
format for the ``/metrics`` endpoint (:mod:`repro.obs.http`).

Design constraints, in order:

* **stdlib only** -- no client library; the text format is simple enough
  to emit directly.
* **Thread-safe** -- metrics are updated from connection threads, the
  scheduler lock and pool callbacks; each metric carries its own lock.
* **Near-zero cost when disabled** -- a disabled registry hands out
  shared null metrics whose ``inc``/``set``/``observe`` are empty
  one-line methods, so instrumented hot paths pay one attribute call and
  nothing else.  ``REPRO_TELEMETRY=0`` (or ``off``) disables the default
  registry.

Metrics are **names + values**, no label sets: everything this service
wants to expose is either a plain scalar or splits naturally into a few
distinct names (``repro_results_accepted_total`` vs
``repro_results_duplicate_total``), and label-free metrics keep both the
registry and the exposition code small enough to audit.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]

#: Environment variable gating the default registry: ``0``/``off``/``false``
#: disables telemetry (null metrics everywhere), anything else enables it.
_TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Log-spaced second buckets for wall-time histograms: fine enough at the
#: fast end to see a per-cell simulation, wide enough at the slow end to
#: bound a stuck trace fetch.  ``+Inf`` is implicit.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _valid_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")
    return name


class Counter:
    """A monotonically increasing count (events, cells, requests)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value())}"]


class Gauge:
    """A value that can go up and down (queue depth, connections)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value())}"]


class Histogram:
    """Fixed-bucket histogram of observed values (wall times, sizes).

    Buckets are cumulative upper bounds, Prometheus-style; ``+Inf`` is
    implicit.  ``observe`` is O(buckets) with one lock -- fine for the
    per-cell cadence this repository runs at.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.name = _valid_name(name)
        self.help = help
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict form: cumulative bucket counts, sum and count."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts[:-1]):
            running += count
            cumulative[_format_value(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}

    def render(self) -> List[str]:
        snap = self.snapshot()
        lines = [
            f'{self.name}_bucket{{le="{bound}"}} {count}'
            for bound, count in snap["buckets"].items()
        ]
        lines.append(f"{self.name}_sum {_format_value(snap['sum'])}")
        lines.append(f"{self.name}_count {snap['count']}")
        return lines


class _NullMetric:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    kind = "null"
    name = "null"
    help = ""
    bounds: Tuple[float, ...] = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def value(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"buckets": {}, "sum": 0.0, "count": 0}

    def render(self) -> List[str]:
        return []


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Holds named metrics and renders them all at once.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, so instrumentation sites
    do not need to coordinate creation.  Re-using a name across metric
    kinds is an error (it would render two conflicting type lines).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, factory):
        if not self.enabled:
            return _NULL_METRIC
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind}, not a {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, lambda: Histogram(name, help, buckets)
        )

    def metrics(self) -> List[object]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every metric (for tests and debugging)."""
        out: Dict[str, object] = {}
        for metric in self.metrics():
            if metric.kind == "histogram":
                out[metric.name] = metric.snapshot()
            else:
                out[metric.name] = metric.value()
        return out

    def render_prometheus(self) -> str:
        """All metrics in the Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


_DEFAULT: Optional[MetricsRegistry] = None
_DEFAULT_LOCK = threading.Lock()


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` leaves telemetry on (the default)."""
    value = os.environ.get(_TELEMETRY_ENV, "")
    return value.strip().lower() not in ("0", "off", "false")


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use; honours
    ``REPRO_TELEMETRY`` at creation time)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry(enabled=telemetry_enabled())
        return _DEFAULT


def reset_default_registry() -> None:
    """Drop the process-wide registry (tests re-evaluate the env gate)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = None
