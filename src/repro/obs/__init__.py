"""Observability layer: metrics, structured events, timings, status HTTP.

Four small stdlib-only modules that make the sweep service operable:

* :mod:`repro.obs.metrics` -- counters / gauges / fixed-bucket
  histograms with Prometheus text rendering; process-wide registry
  gated by ``REPRO_TELEMETRY``.
* :mod:`repro.obs.events` -- structured JSONL event log
  (``repro.obs.log``) with size-capped rotation; gated/redirected by
  ``REPRO_OBS_LOG``.
* :mod:`repro.obs.timings` -- per-cell phase timing artifacts
  (``timings.jsonl`` + aggregated histograms) written next to the
  result store; gated by ``REPRO_TIMINGS``.
* :mod:`repro.obs.http` -- read-only coordinator status endpoints
  (``repro serve --status-port``), consumed live by
  :mod:`repro.obs.top` (``repro top``).

Nothing here feeds back into simulation results, store keys or
scheduling decisions: the observability layer can be disabled wholesale
without changing a single output byte.
"""

from repro.obs.events import DEFAULT_EVENT_LOG, EventLog, event_log_for
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    telemetry_enabled,
)
from repro.obs.timings import (
    TIMINGS_FILE,
    TIMINGS_SUMMARY_FILE,
    TimingLog,
    summarize_timings,
    timing_log_for,
    timings_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_EVENT_LOG",
    "DEFAULT_TIME_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIMINGS_FILE",
    "TIMINGS_SUMMARY_FILE",
    "TimingLog",
    "default_registry",
    "event_log_for",
    "reset_default_registry",
    "summarize_timings",
    "telemetry_enabled",
    "timing_log_for",
    "timings_enabled",
]
