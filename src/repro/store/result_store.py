"""Persistent, content-addressed store of simulation results.

Sweeps in this repository are grids of ``(predictor spec, trace)`` cells,
each producing one :class:`~repro.sim.engine.SimulationResult`.  The
:class:`ResultStore` persists those cells on disk so that

* a killed or extended sweep resumes from its completed cells instead of
  recomputing them (``repro sweep --resume``),
* concurrent ``--jobs`` workers and *separate* processes sharing one store
  directory reuse each other's results, and
* future distributed runners have a dispatchable unit of work with a
  stable identity.

Cell identity
-------------
A cell key is the SHA-256 over the same identity the in-memory memo uses,
made fully content-addressed so it survives process boundaries:

* the **spec content** (:meth:`repro.api.specs.PredictorSpec.content` of
  the *resolved* spec -- explicit options, label-independent);
* the **resolved size profile** (canonical dump of the
  :class:`~repro.predictors.composites.SizeProfile` the name resolved to,
  so re-registering a profile name retires its old results);
* the **trace fingerprint** (:meth:`repro.trace.trace.Trace.fingerprint`
  -- the trace's actual content plus its name, never the benchmark name
  alone, so a benchmark regenerated with different content under the same
  name can never serve stale results; the flip side is that renaming a
  trace retires its cells even when the content is unchanged);
* the **engine version** (:data:`repro.sim.engine.ENGINE_VERSION`) and the
  per-PC tracking flag.

Record format and concurrency
-----------------------------
One record per cell at ``<root>/objects/<key[:2]>/<key>.json`` (or
``.json.gz`` with ``compress=True``), written to a scratch file in the
same directory and :func:`os.replace`-d into place, so readers never
observe a partial record and concurrent writers of the same key settle on
one complete (and, results being deterministic, identical) record.  The
object tree doubles as the shared index: there is no central index file
to contend over, which is what makes independent writers safe.  Corrupt
records (truncated by a crash, hand-edited) are treated as misses and
removed so the cell is recomputed and rewritten.

Integrity
---------
Every record written by this module carries an additive ``"checksum"``
field -- ``sha256:`` over the record's canonical JSON with the checksum
field itself excluded -- verified on every read, so a bit-rotted record
that still parses as JSON is caught and recomputed rather than served.
Legacy records (written before the field existed) stay readable; the
checksum rides *outside* the keyed content, so cell keys and result
bytes are unchanged.  :meth:`ResultStore.verify` audits the whole store,
classifying each record ``ok`` / ``legacy`` / ``corrupt`` /
``truncated``; with ``repair=True`` bad records are quarantined into a
``<root>/corrupt/`` sidecar (never deleted) so the next sweep
transparently re-runs exactly those cells.  Durable writes refuse up
front with one actionable error when disk headroom is critical
(:mod:`repro.common.diskguard`).
"""

from __future__ import annotations

import errno
import gzip
import hashlib
import json
import os
import sys
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.common import diskguard
from repro.predictors.composites import SizeProfile
from repro.sim.engine import ENGINE_VERSION, SimulationResult

__all__ = [
    "ResultStore",
    "profile_content",
    "result_to_dict",
    "result_from_dict",
]

#: Bump when the on-disk record schema changes (old records become misses).
_RECORD_VERSION = 1

#: Environment variable naming the store directory: unset/``0``/``off``
#: disables the store, anything else is the directory to use.
_STORE_ENV = "REPRO_RESULT_STORE"

#: Errors that mean "this record is unreadable", not "the store is broken".
_CORRUPT_ERRORS = (OSError, ValueError, KeyError, TypeError, EOFError,
                   json.JSONDecodeError, gzip.BadGzipFile)

#: Additive integrity field stamped on every written record (legacy
#: records lack it and remain readable -- see :meth:`ResultStore.verify`).
_CHECKSUM_FIELD = "checksum"
_CHECKSUM_PREFIX = "sha256:"


def _record_checksum(record: Dict[str, Any]) -> Optional[str]:
    """``sha256:`` digest of ``record``'s canonical JSON, checksum excluded.

    Canonical form is sorted-keys JSON, so the digest survives a
    parse/re-dump round trip (export/import, coordinator ingest).
    ``None`` when the record cannot be canonicalised (non-sortable
    keys); such a record is simply written without a checksum.
    """
    body = {
        field: value
        for field, value in record.items()
        if field != _CHECKSUM_FIELD
    }
    try:
        payload = json.dumps(body, ensure_ascii=False, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        return None
    return _CHECKSUM_PREFIX + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _chaos_should(point: str) -> bool:
    """Whether the chaos fault at ``point`` fires, without dragging the
    dist package into production store paths.

    The chaos module is only imported once it is plausibly configured
    (``REPRO_CHAOS`` set, or already loaded by a test's direct
    ``configure``); otherwise this is one env lookup.
    """
    module = sys.modules.get("repro.dist.chaos")
    if module is None:
        if not os.environ.get("REPRO_CHAOS"):
            return False
        from repro.dist import chaos as module
    return module.should(point)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """JSON-safe dict form of a :class:`SimulationResult`.

    This is the ``"result"`` section of a store record, and the payload
    shape the distributed runner uploads over its wire protocol
    (:mod:`repro.dist`).  Inverse: :func:`result_from_dict`.
    """
    return {
        "trace_name": result.trace_name,
        "predictor_name": result.predictor_name,
        "conditional_branches": result.conditional_branches,
        "mispredictions": result.mispredictions,
        "instructions": result.instructions,
        "storage_bits": result.storage_bits,
        "per_pc_mispredictions": {
            str(pc): count for pc, count in result.per_pc_mispredictions.items()
        },
    }


def result_from_dict(fields: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (raises on malformed input)."""
    return SimulationResult(
        trace_name=str(fields["trace_name"]),
        predictor_name=str(fields["predictor_name"]),
        conditional_branches=int(fields["conditional_branches"]),
        mispredictions=int(fields["mispredictions"]),
        instructions=int(fields["instructions"]),
        storage_bits=int(fields["storage_bits"]),
        per_pc_mispredictions={
            int(pc): int(count)
            for pc, count in (fields.get("per_pc_mispredictions") or {}).items()
        },
    )


def profile_content(profile: SizeProfile) -> str:
    """Canonical content string of a resolved :class:`SizeProfile`.

    Deterministic across processes (sorted keys, plain values), so it can
    take part in persistent cell keys the way the profile *name* cannot:
    the name says nothing about the geometry it resolves to today.
    """
    return json.dumps(asdict(profile), sort_keys=True, default=repr)


class ResultStore:
    """On-disk, content-addressed store of per-cell simulation results.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).
    compress:
        Write new records gzip-compressed.  Reading transparently accepts
        both plain and compressed records, so a store may mix them.

    The ``hits`` / ``misses`` counters track this instance's :meth:`get`
    outcomes; they are in-process statistics, not persisted state.
    """

    def __init__(self, root: Union[str, Path], compress: bool = False) -> None:
        self.root = Path(root)
        self.compress = bool(compress)
        self.hits = 0
        self.misses = 0
        self.writes_shed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"

    # ----------------------------------------------------------------- #
    # Construction helpers
    # ----------------------------------------------------------------- #

    @classmethod
    def from_env(cls) -> Optional["ResultStore"]:
        """The store named by ``REPRO_RESULT_STORE``, or ``None``.

        Unset, empty, ``0`` and ``off`` all mean "no store".
        """
        value = os.environ.get(_STORE_ENV)
        if value is None or value.strip().lower() in ("", "0", "off"):
            return None
        return cls(value)

    @classmethod
    def resolve(
        cls, store: Union["ResultStore", str, Path, None, bool]
    ) -> Optional["ResultStore"]:
        """Coerce a ``store=`` argument to a :class:`ResultStore` or ``None``.

        Accepts a ready instance, a directory path, ``None`` or ``True``
        (fall back to ``REPRO_RESULT_STORE``) or ``False`` (explicitly no
        store, even if the environment variable is set).
        """
        if store is False:
            return None
        if store is None or store is True:
            return cls.from_env()
        if isinstance(store, ResultStore):
            return store
        return cls(store)

    # ----------------------------------------------------------------- #
    # Cell identity
    # ----------------------------------------------------------------- #

    @staticmethod
    def cell_key(
        spec_content: str,
        profile: Union[SizeProfile, str],
        trace_fingerprint: str,
        track_per_pc: bool = False,
    ) -> str:
        """Content-addressed key of one ``(spec, trace)`` cell.

        ``spec_content`` must come from a *resolved* spec
        (:meth:`~repro.api.specs.PredictorSpec.resolve` then
        :meth:`~repro.api.specs.PredictorSpec.content`) so the key does not
        depend on any registry state; ``profile`` is the resolved
        :class:`SizeProfile` (or its precomputed :func:`profile_content`).
        """
        payload = json.dumps(
            {
                "engine": ENGINE_VERSION,
                "record": _RECORD_VERSION,
                "spec": spec_content,
                "profile": (
                    profile if isinstance(profile, str) else profile_content(profile)
                ),
                "trace": trace_fingerprint,
                "track_per_pc": bool(track_per_pc),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ----------------------------------------------------------------- #
    # Record access
    # ----------------------------------------------------------------- #

    def _paths_for(self, key: str) -> List[Path]:
        """Candidate record paths for ``key``, preferred format first."""
        stem = self.root / "objects" / key[:2] / key
        plain = stem.with_suffix(".json")
        packed = stem.with_suffix(".json.gz")
        return [packed, plain] if self.compress else [plain, packed]

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored :class:`SimulationResult` for ``key``, or ``None``.

        A corrupt record is removed and reported as a miss, so the caller
        recomputes and rewrites the cell -- the store self-heals.
        """
        record = self._read_record(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return _result_from_record(record)

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw record dict for ``key``, or ``None`` (no counters)."""
        return self._read_record(key, count=False)

    def _read_record(self, key: str, count: bool = True) -> Optional[Dict[str, Any]]:
        for path in self._paths_for(key):
            if not path.is_file():
                continue
            try:
                record = _load_record(path)
            except _CORRUPT_ERRORS:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if record.get("key") != key or "result" not in record:
                # A record that does not describe its own key is corrupt
                # (e.g. a file copied to the wrong name).
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            return record
        return None

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and any(
            path.is_file() for path in self._paths_for(key)
        )

    def put(
        self,
        key: str,
        result: SimulationResult,
        *,
        label: Optional[str] = None,
        trace_fingerprint: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``result`` under ``key`` (atomic write-then-rename).

        ``label``, ``trace_fingerprint`` and ``spec`` (the resolved spec's
        dict form) are descriptive metadata for ``repro store ls`` /
        ``export`` and debugging; identity lives entirely in ``key``.
        """
        record = {
            "version": _RECORD_VERSION,
            "engine_version": ENGINE_VERSION,
            "key": key,
            "created": time.time(),
            "label": label if label is not None else result.predictor_name,
            "trace_fingerprint": trace_fingerprint,
            "spec": spec,
            "result": result_to_dict(result),
        }
        return self._write_record(key, record)

    def import_record(self, record: Dict[str, Any]) -> Path:
        """Persist a full record dict produced elsewhere (atomic, validated.)

        The inverse of :meth:`export` / the per-record entries of
        :meth:`records`: merging one store into another is
        ``for record in src.export(): dst.import_record(record)``
        (the CLI form is ``repro store export | repro store import``).
        The distributed coordinator also uses this to ingest result
        records uploaded by workers that do not share its store.

        The record must carry its own ``key`` and a ``result`` section
        that round-trips through :func:`result_from_dict`; transient
        fields added by :meth:`records` (``path``, ``age_seconds``) are
        dropped.  Raises ``ValueError`` on malformed records.
        """
        if not isinstance(record, dict):
            raise ValueError("record must be a dict")
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise ValueError("record has no key")
        if record.get("version") != _RECORD_VERSION:
            raise ValueError(
                f"unsupported record version {record.get('version')!r}"
            )
        try:
            result_from_dict(record["result"])
        except _CORRUPT_ERRORS as error:
            raise ValueError(f"record {key[:12]}: malformed result ({error})") from None
        record = {
            field: value
            for field, value in record.items()
            if field not in ("path", "age_seconds")
        }
        return self._write_record(key, record)

    def _write_record(self, key: str, record: Dict[str, Any]) -> Path:
        try:
            diskguard.check_writable(
                self.root, what=f"store record write ({key[:12]})"
            )
        except diskguard.DiskPressureError:
            # Callers that treat the store as best-effort swallow the
            # error; the counter lets them report the shed writes anyway.
            self.writes_shed += 1
            raise
        path = self._paths_for(key)[0]
        path.parent.mkdir(parents=True, exist_ok=True)
        # Re-stamp the integrity checksum over the content actually being
        # written (imported records may carry one from their source store).
        record = {
            field: value
            for field, value in record.items()
            if field != _CHECKSUM_FIELD
        }
        checksum = _record_checksum(record)
        if checksum is not None:
            record[_CHECKSUM_FIELD] = checksum
        # default=repr: spec overrides may hold non-JSON values (specs allow
        # Any); metadata is descriptive, so a repr beats failing the run.
        payload = json.dumps(record, ensure_ascii=False, default=repr).encode("utf-8")
        if path.suffix == ".gz":
            # mtime=0 keeps equal payloads byte-identical across writers.
            payload = gzip.compress(payload, mtime=0)
        scratch = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            scratch.write_bytes(payload)
            if _chaos_should("store.write_enospc"):
                raise OSError(
                    errno.ENOSPC,
                    "chaos: injected ENOSPC on store record write",
                    str(path),
                )
            os.replace(scratch, path)
        except OSError:
            try:
                scratch.unlink()
            except OSError:
                pass
            raise
        return path

    # ----------------------------------------------------------------- #
    # Maintenance / introspection
    # ----------------------------------------------------------------- #

    def _record_paths(self) -> Iterator[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.name.startswith(".") or not path.is_file():
                    continue
                if path.name.endswith(".json") or path.name.endswith(".json.gz"):
                    yield path

    def keys(self) -> List[str]:
        """Keys of every (readable-looking) record in the store."""
        return [_key_of(path) for path in self._record_paths()]

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    def records(self) -> Iterator[Dict[str, Any]]:
        """Iterate every readable record dict, silently skipping corrupt ones.

        Each yielded record additionally carries ``"path"`` (str) and
        ``"age_seconds"`` (float, from the file's mtime).
        """
        now = time.time()
        for path in self._record_paths():
            try:
                record = _load_record(path)
                age = max(0.0, now - path.stat().st_mtime)
            except _CORRUPT_ERRORS:
                continue
            record["path"] = str(path)
            record["age_seconds"] = age
            yield record

    def summary(self) -> Dict[str, Any]:
        """One-line occupancy totals: cells, bytes on disk, distinct
        specs, distinct traces.

        Backs ``repro store ls --summary`` and the coordinator's
        ``/store`` endpoint.  Corrupt records still count their bytes
        (they occupy the disk) but not their spec/trace identities.
        """
        cells = 0
        size = 0
        specs: set = set()
        traces: set = set()
        for path in self._record_paths():
            try:
                size += path.stat().st_size
            except OSError:
                pass
            try:
                record = _load_record(path)
            except _CORRUPT_ERRORS:
                continue
            cells += 1
            spec = record.get("spec")
            if isinstance(spec, dict):
                try:
                    specs.add(json.dumps(spec, sort_keys=True, default=repr))
                except (TypeError, ValueError):
                    specs.add(f"label:{record.get('label')}")
            else:
                specs.add(f"label:{record.get('label')}")
            fingerprint = record.get("trace_fingerprint")
            if isinstance(fingerprint, str):
                traces.add(fingerprint)
        return {
            "root": str(self.root),
            "cells": cells,
            "bytes": size,
            "distinct_specs": len(specs),
            "distinct_traces": len(traces),
        }

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Audit every record, classifying its integrity.

        Each record file is classified as one of

        * ``ok`` -- parses, matches its key, and its embedded checksum
          verifies;
        * ``legacy`` -- readable but written before checksums existed
          (still served normally);
        * ``truncated`` -- cut short (crash or copy mid-write);
        * ``corrupt`` -- anything else unreadable or inconsistent,
          including a checksum mismatch on a record that still parses.

        With ``repair=True`` every ``corrupt`` / ``truncated`` file is
        *quarantined*: moved (same-filesystem rename) into the
        ``<root>/corrupt/`` sidecar for post-mortem inspection.  The
        cell then reads as a miss, so the next sweep transparently
        re-runs exactly the quarantined cells.

        Returns a report dict with ``scanned``, per-class counts,
        ``quarantined``, and a ``problems`` list (one entry per bad
        record: key, path, status, detail, and where it was moved).
        Backs ``repro store verify [--repair] [--json]``.
        """
        counts = {"ok": 0, "legacy": 0, "corrupt": 0, "truncated": 0}
        problems: List[Dict[str, Any]] = []
        scanned = 0
        quarantined = 0
        for path in self._record_paths():
            scanned += 1
            status, detail = _classify_record(path)
            counts[status] += 1
            if status in ("ok", "legacy"):
                continue
            problem: Dict[str, Any] = {
                "key": _key_of(path),
                "path": str(path),
                "status": status,
                "detail": detail,
            }
            if repair:
                target = self._quarantine(path)
                if target is not None:
                    problem["quarantined_to"] = str(target)
                    quarantined += 1
            problems.append(problem)
        report: Dict[str, Any] = {"root": str(self.root), "scanned": scanned}
        report.update(counts)
        report["quarantined"] = quarantined
        report["problems"] = problems
        return report

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a bad record into the ``corrupt/`` sidecar (never delete).

        Returns the destination, or ``None`` when the move failed (the
        record then stays in place and is reported but not repaired).
        """
        sidecar = self.root / "corrupt"
        try:
            sidecar.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        target = sidecar / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = sidecar / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            return None
        return target

    def gc(self, older_than_seconds: float) -> int:
        """Remove records whose file mtime is older than the cut-off.

        Returns the number of records removed.  Bounds store growth:
        ``repro store gc --older-than 30d`` keeps a rolling window.
        Scratch files left behind by killed writers are removed too.
        """
        cutoff = time.time() - older_than_seconds
        removed = 0
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                try:
                    stale = path.stat().st_mtime < cutoff
                except OSError:
                    continue
                if path.name.startswith("."):
                    # Scratch file: only ever stale, never a live record.
                    if stale:
                        try:
                            path.unlink()
                        except OSError:
                            pass
                    continue
                if stale:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            try:
                shard.rmdir()  # only succeeds when emptied
            except OSError:
                pass
        return removed

    def export(self) -> List[Dict[str, Any]]:
        """All records as a JSON-safe list (for ``repro store export``)."""
        return list(self.records())


def _key_of(path: Path) -> str:
    name = path.name
    for suffix in (".json.gz", ".json"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _load_record(path: Path) -> Dict[str, Any]:
    data = path.read_bytes()
    if _chaos_should("store.read_corrupt"):
        mangled = bytearray(data)
        if mangled:
            mangled[len(mangled) // 2] ^= 0xFF
        data = bytes(mangled)
    if path.suffix == ".gz":
        data = gzip.decompress(data)
    record = json.loads(data.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError(f"{path}: record is not a JSON object")
    if record.get("version") != _RECORD_VERSION:
        raise ValueError(f"{path}: unsupported record version")
    stored = record.get(_CHECKSUM_FIELD)
    if stored is not None and stored != _record_checksum(record):
        # Bit rot that still parses as JSON: never serve it.
        raise ValueError(f"{path}: checksum mismatch")
    return record


def _classify_record(path: Path) -> Tuple[str, Optional[str]]:
    """``("ok" | "legacy" | "corrupt" | "truncated", detail)`` for one file.

    The truncation heuristics lean on the record format: gzip members
    carry an end-of-stream trailer (a cut stream raises ``EOFError``),
    and plain records are ``json.dumps`` of a dict, so they always end
    with ``}`` -- a parse failure on a record that does not is a cut,
    not a flip.
    """
    try:
        data = path.read_bytes()
    except OSError as error:
        return "corrupt", f"unreadable: {error}"
    if not data:
        return "truncated", "empty file"
    if path.suffix == ".gz":
        try:
            data = gzip.decompress(data)
        except EOFError:
            return "truncated", "gzip stream ends before its trailer"
        except (OSError, gzip.BadGzipFile) as error:
            return "corrupt", f"bad gzip: {error}"
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as error:
        return "corrupt", f"not utf-8: {error}"
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        if not text.rstrip().endswith("}"):
            return "truncated", "record ends mid-token"
        return "corrupt", f"bad json: {error.msg} (char {error.pos})"
    if not isinstance(record, dict):
        return "corrupt", "record is not a JSON object"
    if record.get("version") != _RECORD_VERSION:
        return "corrupt", f"unsupported record version {record.get('version')!r}"
    if record.get("key") != _key_of(path):
        return "corrupt", "key does not match file name"
    try:
        result_from_dict(record["result"])
    except _CORRUPT_ERRORS as error:
        return "corrupt", f"malformed result ({error})"
    stored = record.get(_CHECKSUM_FIELD)
    if stored is None:
        return "legacy", "no checksum (pre-integrity record)"
    if stored != _record_checksum(record):
        return "corrupt", "checksum mismatch"
    return "ok", None


def _result_from_record(record: Dict[str, Any]) -> SimulationResult:
    return result_from_dict(record["result"])
