"""Persistent result storage for sweeps (see :mod:`repro.store.result_store`)."""

from repro.store.result_store import (
    ResultStore,
    profile_content,
    result_from_dict,
    result_to_dict,
)

__all__ = ["ResultStore", "profile_content", "result_from_dict", "result_to_dict"]
