"""Persistent result storage for sweeps (see :mod:`repro.store.result_store`)."""

from repro.store.result_store import ResultStore, profile_content

__all__ = ["ResultStore", "profile_content"]
