"""Tests for the top-level public API of the repro package."""

from __future__ import annotations

import repro


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quick-start flow must work end to end."""
        traces = repro.generate_suite(
            "cbp4like", target_conditional_branches=400, benchmarks=["SPEC2K6-00"]
        )
        runner = repro.SuiteRunner(traces, profile="small")
        base = runner.run("tage-gsc")
        imli = runner.run("tage-gsc+imli")
        assert base.average_mpki > 0
        assert imli.average_mpki > 0

    def test_single_benchmark_and_predictor(self):
        from repro.workloads.suites import get_benchmark

        trace = repro.generate_benchmark(
            get_benchmark("cbp4like", "MM-4"), target_conditional_branches=400
        )
        predictor = repro.build_named("gehl+imli", profile="small")
        result = repro.simulate(predictor, trace)
        assert result.trace_name == "MM-4"
        assert 0.0 <= result.accuracy <= 1.0

    def test_configuration_names_exposed(self):
        names = repro.configuration_names()
        assert "tage-gsc+imli" in names
        assert "gehl+l" in names

    def test_imli_state_exposed(self):
        imli = repro.IMLIState()
        assert imli.count == 0
