"""Chunked trace transfer over the dist protocol.

Covers the additive wire frames (`fetch_trace` replies carrying a
manifest, `fetch_trace_chunk` / `trace_chunk`), the worker-side spool and
chunk cache, the actionable oversize error for monolithic traces, journal
recovery of chunked jobs, and the acceptance end-to-end: a trace too
large to travel monolithically is ingested into the chunked layout and
swept through a real dist worker, bit-identical to serial simulation.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.api.experiment import Experiment
from repro.api.registry import default_registry
from repro.api.specs import PredictorSpec
from repro.dist import Coordinator, Worker
from repro.dist import protocol
from repro.dist.protocol import ProtocolError
from repro.ingest import ingest_trace
from repro.sim.engine import simulate
from repro.store import ResultStore
from repro.trace.chunked import load_chunked_trace, write_chunked_trace
from repro.workloads.suites import generate_suite

LENGTH = 250


@pytest.fixture(scope="module")
def trace():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=["SPEC2K6-00"]
    )[0]


@pytest.fixture(scope="module")
def chunked(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("dist-chunked") / "trace"
    write_chunked_trace(trace, directory, chunk_branches=200)
    return load_chunked_trace(directory)


@pytest.fixture(scope="module")
def specs():
    return [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True),
    ]


def _reference(specs, trace):
    return {
        spec.label: simulate(spec.resolve().build(), trace) for spec in specs
    }


def _run_worker(address, **kwargs):
    host, port = address
    kwargs.setdefault("reconnect", 0.75)
    worker = Worker(host, port, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class _RawClient:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def request(self, frame):
        protocol.write_frame(self.wfile, frame)
        return protocol.read_frame(self.rfile)

    def hello(self):
        reply = self.request(
            {"type": "hello", "role": "worker",
             "protocol": protocol.PROTOCOL_VERSION, "worker": "raw"}
        )
        assert reply["type"] == "welcome"

    def close(self):
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass


class TestOversizeGuard:
    def test_encode_trace_error_is_actionable(self, trace, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_TRACE_PAYLOAD", 1024)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.encode_trace(trace)
        message = str(excinfo.value)
        assert trace.name in message
        assert str(len(trace)) in message
        assert "repro ingest convert" in message
        assert "chunked" in message

    def test_submit_of_oversize_monolithic_trace_fails_fast(
        self, trace, specs, monkeypatch
    ):
        monkeypatch.setattr(protocol, "MAX_TRACE_PAYLOAD", 1024)
        coordinator = Coordinator(port=0)
        coordinator.start()
        try:
            with pytest.raises(ProtocolError, match="repro ingest"):
                coordinator.submit(specs, [trace])
        finally:
            coordinator.shutdown()

    def test_encode_chunk_cap(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_TRACE_PAYLOAD", 16)
        with pytest.raises(ProtocolError, match="chunk-branches"):
            protocol.encode_chunk(b"x" * 64)


class TestWireFrames:
    def test_manifest_reply_and_chunk_fetch(self, chunked, specs):
        coordinator = Coordinator(port=0)
        address = coordinator.start()
        coordinator.submit(specs, [chunked])
        client = _RawClient(address)
        try:
            client.hello()
            fingerprint = chunked.fingerprint()
            reply = client.request(
                {"type": "fetch_trace", "fingerprint": fingerprint}
            )
            assert reply["type"] == "trace"
            assert "data" not in reply
            assert reply["manifest"]["fingerprint"] == fingerprint
            assert len(reply["manifest"]["chunks"]) == chunked.chunk_count
            for index in range(chunked.chunk_count):
                chunk = client.request(
                    {
                        "type": "fetch_trace_chunk",
                        "fingerprint": fingerprint,
                        "chunk": index,
                    }
                )
                assert chunk["type"] == "trace_chunk"
                assert chunk["chunk"] == index
                data = protocol.decode_chunk(chunk["data"])
                assert data == chunked.chunk_path(index).read_bytes()
        finally:
            client.close()
            coordinator.shutdown()

    def test_out_of_range_chunk_is_an_error(self, chunked, specs):
        coordinator = Coordinator(port=0)
        address = coordinator.start()
        coordinator.submit(specs, [chunked])
        client = _RawClient(address)
        try:
            client.hello()
            reply = client.request(
                {
                    "type": "fetch_trace_chunk",
                    "fingerprint": chunked.fingerprint(),
                    "chunk": chunked.chunk_count + 3,
                }
            )
            assert reply["type"] == "error"
            assert "out of range" in reply["message"]
        finally:
            client.close()
            coordinator.shutdown()


class TestWorkerStreaming:
    def test_acceptance_end_to_end(self, specs, tmp_path, monkeypatch):
        """A trace over the frame cap, ingested and dist-swept chunk by
        chunk: bit-identical results and store records, bounded memory.

        The frame cap is lowered so the property "this trace cannot
        travel monolithically, only chunked" holds at test size.
        """
        monkeypatch.setattr(protocol, "MAX_TRACE_PAYLOAD", 16384)
        big = generate_suite(
            "cbp4like", target_conditional_branches=900,
            benchmarks=["SPEC2K6-04"],
        )[0]
        # Too big for one frame under the lowered cap...
        with pytest.raises(ProtocolError, match="repro ingest"):
            protocol.encode_trace(big)
        # ...so it goes through the full ingest pipeline instead.
        source = tmp_path / "big.txt"
        with source.open("w", encoding="utf-8") as handle:
            for i in range(len(big)):
                record = big.record_at(i)
                handle.write(
                    f"{record.pc:#x} {int(record.taken)} {record.target:#x} "
                    f"{record.kind.value} {record.instruction_gap}\n"
                )
        report = ingest_trace(
            source, tmp_path / "big-chunked", reader="cbp",
            name=big.name, chunk_branches=400,
        )
        streamed = load_chunked_trace(tmp_path / "big-chunked")
        assert report.chunks == streamed.chunk_count >= 3

        coordinator = Coordinator(port=0, store=str(tmp_path / "dist-store"))
        address = coordinator.start()
        job = coordinator.submit(specs, [streamed])
        worker, thread = _run_worker(address, name="stream-worker", batch=4)
        assert job.wait(timeout=120)
        coordinator.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()

        # Memory bounding: the worker held the chunked trace, and its
        # decoded-chunk cache never grows past the LRU bound.
        cached = worker._traces[streamed.fingerprint()]
        assert cached.chunk_count == streamed.chunk_count
        assert len(cached._cache) <= 2
        # The spool is cleaned up when the worker returns.
        assert worker._spool is None

        # Bit-identity vs a serial run over the same chunked directory.
        serial = Experiment(
            specs,
            traces=[str(tmp_path / "big-chunked")],
            profile="small",
            store=str(tmp_path / "serial-store"),
        ).run()
        for spec in specs:
            dist_result = job.slots[spec.label][0]
            serial_result = serial.run_for(spec.label).results[0]
            assert dist_result.mispredictions == serial_result.mispredictions
            assert dist_result.conditional_branches == serial_result.conditional_branches
            assert dist_result.instructions == serial_result.instructions

        # Same cell keys, same record content, in both stores.
        def _records(root):
            store = ResultStore(root)
            records = {}
            for record in store.records():
                doc = {k: v for k, v in record.items()
                       if k in ("key", "trace_fingerprint", "result")}
                records[doc["key"]] = json.dumps(doc, sort_keys=True)
            return records

        dist_records = _records(tmp_path / "dist-store")
        serial_records = _records(tmp_path / "serial-store")
        assert set(dist_records) == set(serial_records)
        assert dist_records == serial_records

    def test_pool_worker_spools_chunks(self, chunked, specs, trace):
        coordinator = Coordinator(port=0)
        address = coordinator.start()
        job = coordinator.submit(specs, [chunked])
        worker, thread = _run_worker(
            address, name="pool-worker", jobs=2, batch=4
        )
        assert job.wait(timeout=120)
        coordinator.shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()
        reference = _reference(specs, trace)
        for spec in specs:
            got = job.slots[spec.label][0]
            assert got.mispredictions == reference[spec.label].mispredictions


class TestJournalRecovery:
    def test_chunked_job_survives_coordinator_crash(
        self, chunked, specs, trace, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        first = Coordinator(port=0, journal=str(journal))
        first.start()
        first.submit(specs, [chunked])
        # Crash before any worker shows up.
        first.shutdown(graceful=False)

        second = Coordinator(port=0, journal=str(journal))
        address = second.start()
        assert len(second.recovered_jobs) == 1
        job = second.recovered_jobs[0]
        assert chunked.fingerprint() in second._chunked
        worker, thread = _run_worker(address, name="recovery-worker", batch=4)
        assert job.wait(timeout=120)
        second.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        reference = _reference(specs, trace)
        for spec in specs:
            got = job.slots[spec.label][0]
            assert got.mispredictions == reference[spec.label].mispredictions
