"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.api import PredictorSpec
from repro.cli import build_parser, main
from repro.trace.trace import load_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--suite", "cbp5like"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cbp4like" in output
        assert "tage-gsc+imli" in output
        assert "table1" in output
        assert "size profiles" in output

    def test_list_reflects_registry_mutations(self, capsys):
        from repro.api import CompositeOptions, default_registry, register_configuration

        register_configuration("cli-listed", CompositeOptions(base="gehl"))
        try:
            assert main(["list"]) == 0
            assert "cli-listed" in capsys.readouterr().out
        finally:
            default_registry().unregister("cli-listed")

    def test_simulate_command(self, capsys):
        exit_code = main([
            "simulate", "--suite", "cbp4like", "--benchmarks", "SPEC2K6-00",
            "--configurations", "tage-gsc,tage-gsc+imli",
            "--length", "400", "--profile", "small",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SPEC2K6-00" in output
        assert "AVERAGE" in output
        assert "tage-gsc+imli" in output

    def test_simulate_rejects_empty_configurations(self, capsys):
        assert main([
            "simulate", "--configurations", ",", "--length", "300",
        ]) == 2

    def test_experiment_command(self, capsys):
        exit_code = main([
            "experiment", "base-predictors",
            "--benchmarks", "SPEC2K6-00,INT01", "--length", "400",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "base-predictors" in output
        assert "Paper reference values" in output

    def test_trace_command(self, tmp_path, capsys):
        output_path = tmp_path / "mm4.trace"
        exit_code = main([
            "trace", "--suite", "cbp4like", "--benchmark", "MM-4",
            "--length", "300", "--output", str(output_path),
        ])
        assert exit_code == 0
        trace = load_trace(output_path)
        assert trace.name == "MM-4"
        assert trace.conditional_count >= 300

    def test_trace_unknown_benchmark(self, tmp_path):
        exit_code = main([
            "trace", "--benchmark", "NOPE", "--output", str(tmp_path / "x"),
        ])
        assert exit_code == 2


class TestSimulateSpec:
    def test_simulate_from_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "specs.json"
        specs = [
            PredictorSpec.from_named("tage-gsc", profile="small").to_dict(),
            PredictorSpec.from_named(
                "tage-gsc", profile="small", imli_sic=True
            ).to_dict(),
        ]
        spec_path.write_text(json.dumps(specs))
        exit_code = main([
            "simulate", "--spec", str(spec_path),
            "--suite", "cbp4like", "--benchmarks", "SPEC2K6-00",
            "--length", "400", "--profile", "small",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "tage-gsc" in output
        assert "tage-gsc[imli_sic=True]" in output

    def test_spec_file_combines_with_named_configurations(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            PredictorSpec.from_named("gehl", profile="small").to_json()
        )
        exit_code = main([
            "simulate", "--configurations", "tage-gsc", "--spec", str(spec_path),
            "--benchmarks", "SPEC2K6-00", "--length", "400", "--profile", "small",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "tage-gsc" in output and "gehl" in output

    def test_missing_spec_file_is_an_error(self, capsys):
        assert main(["simulate", "--spec", "/no/such/file.json"]) == 2
        assert "cannot load specs" in capsys.readouterr().err

    def test_malformed_spec_file_is_an_error(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"profil": "small"}))
        assert main(["simulate", "--spec", str(spec_path)]) == 2


class TestSweep:
    def test_sweep_grid_runs_parallel_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        exit_code = main([
            "sweep", "--base", "tage-gsc+oh",
            "--param", "oh_update_delay=7,15,63",
            "--suite", "cbp4like", "--benchmarks", "SPEC2K6-00,SPEC2K6-04",
            "--length", "400", "--profile", "small", "--jobs", "2",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "MPKI reduction vs tage-gsc+oh" in output
        data = json.loads(json_path.read_text())
        assert data["baseline"] == "tage-gsc+oh"
        assert len(data["results"]) == 4  # base + three delays
        labels = {entry["label"] for entry in data["results"]}
        assert "tage-gsc+oh[oh_update_delay=63]" in labels
        csv_text = csv_path.read_text()
        assert csv_text.splitlines()[0].startswith("benchmark,")
        assert "storage_kbits" in csv_text

    def test_sweep_value_equal_to_default_not_duplicated(self, capsys):
        # oh_update_delay=0 is the CompositeOptions default: that grid
        # point rebuilds the base predictor and must not appear twice.
        exit_code = main([
            "sweep", "--base", "tage-gsc+oh", "--param", "oh_update_delay=0,63",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ])
        assert exit_code == 0
        header = capsys.readouterr().out.splitlines()[2]
        assert "tage-gsc+oh[oh_update_delay=0]" not in header
        assert "tage-gsc+oh[oh_update_delay=63]" in header

    def test_sweep_named_base_not_duplicated(self, tmp_path, capsys):
        # An explicitly named base must not be re-simulated under its
        # derived label when the (empty) grid regenerates its content.
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(
            {"configuration": "tage-gsc", "profile": "small", "name": "custom"}
        ))
        exit_code = main([
            "sweep", "--base", str(spec_path),
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ])
        assert exit_code == 0
        header = capsys.readouterr().out.splitlines()[2]
        assert "custom" in header
        assert "tage-gsc" not in header.replace("custom", "")

    def test_sweep_base_from_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "base.json"
        spec_path.write_text(
            PredictorSpec.from_named("gehl", profile="small").to_json()
        )
        exit_code = main([
            "sweep", "--base", str(spec_path),
            "--param", "imli_sic=true,false",
            "--benchmarks", "SPEC2K6-00", "--length", "400", "--profile", "small",
        ])
        assert exit_code == 0
        assert "gehl[imli_sic=True]" in capsys.readouterr().out

    def test_sweep_bad_param_is_an_error(self, capsys):
        assert main([
            "sweep", "--base", "tage-gsc", "--param", "oh_update_delay",
            "--benchmarks", "SPEC2K6-00", "--length", "300",
        ]) == 2
        assert "--param" in capsys.readouterr().err

    def test_sweep_unknown_base_is_an_error(self, capsys):
        assert main([
            "sweep", "--base", "no-such-config",
            "--benchmarks", "SPEC2K6-00", "--length", "300",
        ]) == 2

    def test_sweep_bad_value_type_is_a_clean_error(self, capsys):
        # "abc" survives JSON parsing as a string and only explodes inside
        # predictor construction; the CLI must still exit 2, not traceback.
        assert main([
            "sweep", "--base", "tage-gsc+oh", "--param", "oh_update_delay=abc",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ]) == 2

    def test_sweep_progress_reports_cells(self, capsys):
        exit_code = main([
            "sweep", "--base", "tage-gsc", "--param", "imli_sic=true,false",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
            "--progress",
        ])
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "sweep: 0/2 cells" in err
        assert "sweep: 2/2 cells" in err
        assert "cells/s" in err

    def test_simulate_progress_reports_cells(self, capsys):
        exit_code = main([
            "simulate", "--configurations", "tage-gsc",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
            "--progress",
        ])
        assert exit_code == 0
        assert "simulate: 1/1 cells" in capsys.readouterr().err

    def test_sweep_colliding_labels_is_an_error(self, capsys):
        # JSON 15 and string "15" are different override values but derive
        # the same label; the duplicate-label rejection must exit cleanly.
        assert main([
            "sweep", "--base", "tage-gsc+oh",
            "--param", 'oh_update_delay=15,"15"',
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ]) == 2
        assert "share the label" in capsys.readouterr().err
