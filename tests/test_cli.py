"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.trace.trace import load_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--suite", "cbp5like"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "cbp4like" in output
        assert "tage-gsc+imli" in output
        assert "table1" in output

    def test_simulate_command(self, capsys):
        exit_code = main([
            "simulate", "--suite", "cbp4like", "--benchmarks", "SPEC2K6-00",
            "--configurations", "tage-gsc,tage-gsc+imli",
            "--length", "400", "--profile", "small",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SPEC2K6-00" in output
        assert "AVERAGE" in output
        assert "tage-gsc+imli" in output

    def test_simulate_rejects_empty_configurations(self, capsys):
        assert main([
            "simulate", "--configurations", ",", "--length", "300",
        ]) == 2

    def test_experiment_command(self, capsys):
        exit_code = main([
            "experiment", "base-predictors",
            "--benchmarks", "SPEC2K6-00,INT01", "--length", "400",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "base-predictors" in output
        assert "Paper reference values" in output

    def test_trace_command(self, tmp_path, capsys):
        output_path = tmp_path / "mm4.trace"
        exit_code = main([
            "trace", "--suite", "cbp4like", "--benchmark", "MM-4",
            "--length", "300", "--output", str(output_path),
        ])
        assert exit_code == 0
        trace = load_trace(output_path)
        assert trace.name == "MM-4"
        assert trace.conditional_count >= 300

    def test_trace_unknown_benchmark(self, tmp_path):
        exit_code = main([
            "trace", "--benchmark", "NOPE", "--output", str(tmp_path / "x"),
        ])
        assert exit_code == 2
