"""Fault-injection tests for the distributed sweep service.

Every test here breaks the service somewhere -- a dropped connection, a
corrupted or duplicated upload, a killed worker process, a crashed
coordinator -- through the named fault points of :mod:`repro.dist.chaos`
(or by slamming sockets directly), then asserts the strongest invariant
the service claims: the sweep still completes with results bit-identical
to a serial run.  Quarantine tests assert the one deliberate exception:
a cell that keeps killing its workers is abandoned *with its error
attributed*, without taking unrelated cells down.

In-process faults (drop/corrupt/duplicate/delay) run coordinator and
workers as threads like ``tests/test_dist.py``; the worker-kill fault
uses real ``python -m repro worker`` subprocesses because ``os._exit``
is the point.
"""

from __future__ import annotations

import io
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.experiment import Experiment
from repro.api.specs import PredictorSpec
from repro.common.progress import ProgressPrinter
from repro.dist import (
    Coordinator,
    CoordinatorJournal,
    JobFailed,
    Worker,
    protocol,
    submit_sweep,
)
from repro.dist import chaos
from repro.store import ResultStore, result_to_dict
from repro.workloads.suites import generate_suite

BENCHMARKS = ["SPEC2K6-00", "SPEC2K6-04"]
LENGTH = 300


@pytest.fixture(scope="module")
def traces():
    return generate_suite(
        "cbp4like", target_conditional_branches=LENGTH, benchmarks=BENCHMARKS
    )


@pytest.fixture(scope="module")
def specs():
    return [
        PredictorSpec.from_named("tage-gsc", profile="small"),
        PredictorSpec.from_named("tage-gsc", profile="small", imli_sic=True),
    ]


@pytest.fixture(scope="module")
def serial_results(specs, traces):
    return Experiment(specs, traces=traces, profile="small", store=False).run()


@pytest.fixture(autouse=True)
def _chaos_off():
    """Every test starts and ends with chaos disabled."""
    chaos.configure(None)
    yield
    chaos.configure(None)


def _start_workers(address, count, **kwargs):
    host, port = address
    kwargs.setdefault("reconnect", 5.0)
    workers = [
        Worker(host, port, name=f"chaos-worker-{i}", **kwargs) for i in range(count)
    ]
    threads = [
        threading.Thread(target=worker.run, daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    return workers, threads


def _join_workers(coordinator, threads, graceful=True):
    coordinator.shutdown(graceful=graceful)
    for thread in threads:
        thread.join(timeout=15)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"


def _assert_bit_identical(runs, serial_results, specs):
    """Every distributed result byte-equals its serial counterpart."""
    for spec in specs:
        ours = runs[spec.label].results
        theirs = serial_results.run_for(spec.label).results
        assert len(ours) == len(theirs)
        for mine, ref in zip(ours, theirs):
            assert result_to_dict(mine) == result_to_dict(ref)


class _RawClient:
    """Hand-rolled protocol client used to lose leases on purpose."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def send(self, frame):
        protocol.write_frame(self.wfile, frame)

    def recv(self):
        return protocol.read_frame(self.rfile)

    def hello(self, name="raw"):
        self.send(
            {
                "type": "hello",
                "role": "worker",
                "protocol": protocol.PROTOCOL_VERSION,
                "worker": name,
            }
        )
        reply = self.recv()
        assert reply["type"] == "welcome"
        return reply

    def lease(self):
        self.send({"type": "lease"})
        return self.recv()

    def die(self):
        """Drop the connection without a word (a crashed worker)."""
        self.sock.close()


class TestInjectedFaults:
    """Each fault point fires; the sweep still matches serial bit-for-bit."""

    def _run_sweep(self, specs, traces, serial_results, coordinator_kwargs=None,
                   worker_kwargs=None, workers=2):
        coordinator = Coordinator(**(coordinator_kwargs or {}))
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        _, threads = _start_workers(address, workers, **(worker_kwargs or {}))
        assert job.wait(60), "sweep did not finish under fault injection"
        runs = job.runs()
        _join_workers(coordinator, threads)
        _assert_bit_identical(runs, serial_results, specs)
        return coordinator, job

    def test_dropped_connection_after_grant(self, specs, traces, serial_results):
        chaos.configure("worker.lease.drop:1:2")
        coordinator, job = self._run_sweep(specs, traces, serial_results)
        # Both drops cost a lease each; the coordinator requeued them.
        assert job.stats()["requeued"] >= 1
        assert coordinator.stats["requeued"] >= 1
        assert job.stats()["quarantined"] == 0

    def test_corrupt_upload_is_rejected_and_requeued(
        self, specs, traces, serial_results
    ):
        chaos.configure("worker.upload.corrupt:1:1")
        coordinator, job = self._run_sweep(specs, traces, serial_results)
        # The mangled frame dropped that connection; its cells were
        # requeued and simulated again by a reconnected worker.
        assert job.stats()["requeued"] >= 1
        assert job.error is None

    def test_duplicate_upload_not_double_counted(
        self, specs, traces, serial_results
    ):
        chaos.configure("worker.upload.duplicate:1:2")
        _, job = self._run_sweep(specs, traces, serial_results)
        assert job.done == job.total

    def test_delayed_frames_are_harmless(self, specs, traces, serial_results):
        chaos.configure("worker.frame.delay:0.5:0:0.05", seed=7)
        self._run_sweep(specs, traces, serial_results)

    def test_renewal_keeps_slow_cell_single_executed(
        self, specs, traces, serial_results
    ):
        # One cell sleeps well past the original lease timeout while a
        # second, idle worker keeps poking the coordinator (every lease
        # poll reaps expired leases).  Renewal heartbeats must keep the
        # slow cell owned: no requeue, no duplicate execution.
        chaos.configure("worker.simulate.delay:1:1:2.5")
        coordinator, job = self._run_sweep(
            specs, traces, serial_results,
            coordinator_kwargs={"lease_timeout": 1.0},
            worker_kwargs={"batch": 1},
            workers=2,
        )
        assert job.stats()["requeued"] == 0
        assert job.stats()["retried"] == 0
        assert coordinator.stats["requeued"] == 0


class TestWorkerKill:
    """A worker process hard-killed mid-simulation loses nothing."""

    def test_killed_worker_subprocess_is_survived(
        self, tmp_path, specs, traces, serial_results
    ):
        coordinator = Coordinator()
        host, port = coordinator.start()
        job = coordinator.submit(specs, traces)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        doomed_env = dict(env)
        # Kill the process on its first simulation, exactly once.
        doomed_env["REPRO_CHAOS"] = "worker.simulate.kill:1:1"
        command = [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"{host}:{port}", "--reconnect", "2",
        ]
        doomed = subprocess.Popen(
            command, env=doomed_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            assert doomed.wait(timeout=60) == 137  # os._exit(137) fired
            healthy = subprocess.Popen(
                command, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                assert job.wait(90), "sweep did not finish after worker kill"
            finally:
                healthy.terminate()
                healthy.wait(timeout=15)
            runs = job.runs()
        finally:
            if doomed.poll() is None:
                doomed.kill()
                doomed.wait(timeout=15)
            coordinator.shutdown()
        assert job.stats()["requeued"] >= 1
        _assert_bit_identical(runs, serial_results, specs)


class TestCoordinatorCrashRecovery:
    """Kill the coordinator mid-sweep; a journalled restart resumes it."""

    def test_journal_restart_resumes_bit_identically(
        self, tmp_path, specs, traces, serial_results
    ):
        store_dir = tmp_path / "store"
        journal_path = tmp_path / "journal.jsonl"
        first = Coordinator(
            store=ResultStore(store_dir), journal=str(journal_path)
        )
        address = first.start()
        job = first.submit(specs, traces)
        workers, threads = _start_workers(address, 1, store=False, reconnect=0.5)
        deadline = time.monotonic() + 30
        while job.done < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert job.done >= 1, "no cell completed before the crash"
        # Crash: no goodbye to anyone, journal left as-is on disk.
        first.shutdown(graceful=False)
        for thread in threads:
            thread.join(timeout=15)
        assert not any(thread.is_alive() for thread in threads)
        completed_before = job.done

    # -- restart -------------------------------------------------------
        second = Coordinator(
            store=ResultStore(store_dir), journal=str(journal_path)
        )
        address = second.start()
        assert len(second.recovered_jobs) == 1
        recovered = second.recovered_jobs[0]
        # Cells whose results reached the store before the crash are
        # completed at re-admit time, not re-simulated.
        assert recovered.done >= completed_before
        _, threads = _start_workers(address, 2)
        assert recovered.wait(60), "recovered sweep did not finish"
        runs = recovered.runs()
        _join_workers(second, threads)
        _assert_bit_identical(runs, serial_results, specs)
        # The journal settled the recovered job: a third start recovers
        # nothing and does not re-run the sweep.
        third = Coordinator(
            store=ResultStore(store_dir), journal=str(journal_path)
        )
        third.start()
        assert third.recovered_jobs == []
        third.shutdown()

    def test_unsubmitted_journal_survives_double_crash(self, tmp_path, specs, traces):
        # Crash before any worker ever connects, twice: the job must
        # still be recovered exactly once per restart, never duplicated.
        journal_path = tmp_path / "journal.jsonl"
        first = Coordinator(journal=str(journal_path))
        first.start()
        submitted = first.submit(specs, traces)
        first.shutdown(graceful=False)
        second = Coordinator(journal=str(journal_path))
        second.start()
        assert len(second.recovered_jobs) == 1
        assert second.recovered_jobs[0].total == submitted.total
        second.shutdown(graceful=False)
        third = Coordinator(journal=str(journal_path))
        third.start()
        assert len(third.recovered_jobs) == 1
        assert third.recovered_jobs[0].total == submitted.total
        third.shutdown()


class TestQuarantine:
    """A cell that keeps losing its lease is abandoned with its error."""

    def _lose_lease_once(self, address):
        """Lease the queue-front cell and die holding it; returns cell id."""
        client = _RawClient(address)
        client.hello()
        reply = client.lease()
        assert reply["type"] == "work"
        item = reply.get("item") or reply["items"][0]
        client.die()
        return item["cell"], (item["label"], item["trace_name"])

    def test_poison_cell_quarantined_without_failing_others(
        self, specs, traces, serial_results
    ):
        coordinator = Coordinator(max_lease_losses=2)
        address = coordinator.start()
        job = coordinator.submit(specs, traces)
        first_cell, _ = self._lose_lease_once(address)
        deadline = time.monotonic() + 10
        while job.stats()["requeued"] < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert job.stats()["requeued"] == 1
        # Requeue puts the poison cell back at the front: the next lease
        # gets the same cell, and losing it again exhausts the budget.
        second_cell, _ = self._lose_lease_once(address)
        assert second_cell == first_cell
        deadline = time.monotonic() + 10
        while job.stats()["quarantined"] < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert job.stats()["quarantined"] == 1
        assert len(job.quarantined) == 1
        ((label, index), message), = job.quarantined.items()
        assert "quarantined after 2 lost lease(s)" in message
        assert "died mid-lease" in message
        # Healthy workers complete every other cell.
        _, threads = _start_workers(address, 2)
        assert job.wait(60), "healthy cells did not finish around the quarantine"
        assert job.error is None  # quarantine is not a job *failure* error
        assert job.done == job.total - 1
        with pytest.raises(JobFailed) as failure:
            job.runs()
        assert "quarantined" in str(failure.value)
        # The cells that did complete are still bit-identical to serial.
        completed = job.completed_cells()
        assert len(completed) == job.total - 1
        for cell_label, cell_index, result in completed:
            reference = serial_results.run_for(cell_label).results[cell_index]
            assert result_to_dict(result) == result_to_dict(reference)
        _join_workers(coordinator, threads)

    def test_submit_surfaces_quarantined_cells(self, specs, traces):
        coordinator = Coordinator(max_lease_losses=1)
        address = coordinator.start()
        outcome = {}
        seen_stats = []

        def stats_progress(done, total, stats=None):
            if stats:
                seen_stats.append(dict(stats))

        stats_progress.stats_aware = True

        def submitter():
            try:
                submit_sweep(address, specs, traces, progress=stats_progress)
                outcome["error"] = None
            except RuntimeError as error:
                outcome["error"] = str(error)

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        # Wait until the submitted job exists, then poison one cell.
        deadline = time.monotonic() + 10
        while not coordinator._jobs and time.monotonic() < deadline:
            time.sleep(0.02)
        self._lose_lease_once(address)
        job = next(iter(coordinator._jobs.values()))
        deadline = time.monotonic() + 10
        while job.stats()["quarantined"] < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        _, threads = _start_workers(address, 2)
        thread.join(timeout=60)
        assert not thread.is_alive(), "submit did not return"
        _join_workers(coordinator, threads)
        assert outcome["error"] is not None
        assert "quarantined" in outcome["error"]
        assert any(stats.get("quarantined") for stats in seen_stats)


class TestJournalFile:
    """The JSONL journal itself: replay, torn writes, compaction."""

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CoordinatorJournal(path)
        journal.record_admit(1, {"specs": ["a"]})
        journal.record_admit(2, {"specs": ["b"]})
        journal.close()
        with open(path, "ab") as handle:  # crash mid-append
            handle.write(b'{"event": "admit", "job": 3, "specs": ')
        replayed = CoordinatorJournal(path).replay()
        assert [record["job"] for record in replayed] == [1, 2]

    def test_corrupt_interior_line_loses_one_event(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CoordinatorJournal(path)
        journal.record_admit(1, {})
        journal.record_admit(2, {})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"not json at all\n"
        path.write_bytes(b"".join(lines))
        replayed = CoordinatorJournal(path).replay()
        assert [record["job"] for record in replayed] == [2]

    def test_settled_jobs_are_not_replayed_and_compaction_drops_them(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        journal = CoordinatorJournal(path)
        journal.record_admit(1, {})
        journal.record_admit(2, {})
        journal.record_settled(1)
        assert [record["job"] for record in journal.replay()] == [2]
        assert journal.max_job_id() == 2
        assert journal.compact() == 1
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["job"] == 2
        journal.close()


class TestStatsProgress:
    """ProgressPrinter renders fault-tolerance stats when they change."""

    def test_nonzero_stats_are_appended(self):
        out = io.StringIO()
        printer = ProgressPrinter("test", stream=out, min_interval=0.0)
        printer(1, 4)
        printer(1, 4, stats={"requeued": 2, "quarantined": 1})
        text = out.getvalue()
        assert "[requeued 2, quarantined 1]" in text

    def test_stats_change_forces_a_line_even_when_done_is_unchanged(self):
        out = io.StringIO()
        printer = ProgressPrinter("test", stream=out, min_interval=3600.0)
        printer(1, 4)
        lines_before = out.getvalue().count("\n")
        printer(1, 4, stats={"retried": 1})
        assert out.getvalue().count("\n") == lines_before + 1
        assert "[retried 1]" in out.getvalue()

    def test_plain_two_argument_calls_still_work(self):
        out = io.StringIO()
        printer = ProgressPrinter("test", stream=out, min_interval=0.0)
        printer(2, 4)
        assert "2/4" in out.getvalue()
        assert "[" not in out.getvalue()
