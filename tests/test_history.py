"""Unit and property-based tests for repro.common.history."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bits import fold_bits
from repro.common.history import (
    FoldedHistory,
    GlobalHistory,
    LocalHistoryTable,
    PathHistory,
)


class TestGlobalHistory:
    def test_push_and_read(self):
        history = GlobalHistory(8)
        history.push(True)
        history.push(False)
        history.push(True)
        # bit 0 is the most recent outcome
        assert history.bit(0) == 1
        assert history.bit(1) == 0
        assert history.bit(2) == 1
        assert history.value(3) == 0b101

    def test_capacity_truncation(self):
        history = GlobalHistory(4)
        for _ in range(10):
            history.push(True)
        assert history.value(16) == 0b1111

    def test_snapshot_restore(self):
        history = GlobalHistory(16)
        for outcome in (True, False, True, True):
            history.push(outcome)
        snapshot = history.snapshot()
        history.push(False)
        history.restore(snapshot)
        # Pushed T, F, T, T with the most recent outcome in bit 0.
        assert history.value(4) == 0b1011

    def test_reset(self):
        history = GlobalHistory(8)
        history.push(True)
        history.reset()
        assert history.value(8) == 0
        assert history.length == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            GlobalHistory(8).value(-1)

    @given(st.lists(st.booleans(), max_size=100))
    def test_value_matches_reference(self, outcomes):
        history = GlobalHistory(256)
        for outcome in outcomes:
            history.push(outcome)
        reference = 0
        for outcome in outcomes:
            reference = (reference << 1) | int(outcome)
        assert history.value(256) == reference


class TestPathHistory:
    def test_push_low_bits(self):
        path = PathHistory(8, bits_per_branch=2)
        path.push(0b111)   # low 2 bits = 11
        path.push(0b100)   # low 2 bits = 00
        assert path.value(4) == 0b1100

    def test_capacity(self):
        path = PathHistory(4, bits_per_branch=2)
        for pc in range(10):
            path.push(pc)
        assert path.value(8) <= 0b1111

    def test_snapshot_restore(self):
        path = PathHistory(8)
        path.push(1)
        snapshot = path.snapshot()
        path.push(0)
        path.restore(snapshot)
        assert path.value(8) == snapshot

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PathHistory(0)
        with pytest.raises(ValueError):
            PathHistory(8, bits_per_branch=0)


class TestFoldedHistory:
    def test_zero_length_is_always_zero(self):
        folded = FoldedHistory(0, 8)
        folded.update(1, 0)
        assert folded.value() == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FoldedHistory(-1, 8)
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)

    def test_snapshot_restore(self):
        folded = FoldedHistory(5, 3)
        folded.update(1, 0)
        snapshot = folded.snapshot()
        folded.update(0, 1)
        folded.restore(snapshot)
        assert folded.value() == snapshot

    @settings(max_examples=50)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=2, max_value=12),
    )
    def test_incremental_fold_matches_batch_fold(self, outcomes, length, width):
        """The O(1) incremental fold must equal re-folding the window from scratch."""
        history = GlobalHistory(512)
        folded = FoldedHistory(length, width)
        for outcome in outcomes:
            dropped = history.bit(length - 1)
            folded.update(int(outcome), dropped)
            history.push(outcome)
            assert folded.value() == fold_bits(history.value(length), length, width)


class TestLocalHistoryTable:
    def test_update_and_read(self):
        table = LocalHistoryTable(64, 8)
        table.update(0x1234, True)
        table.update(0x1234, False)
        assert table.read(0x1234) == 0b10

    def test_distinct_branches_do_not_interfere(self):
        table = LocalHistoryTable(256, 8)
        table.update(0x1000, True)
        table.update(0x2040, False)
        # Distinct hashes expected for these PCs with a 256-entry table.
        if table.index(0x1000) != table.index(0x2040):
            assert table.read(0x1000) == 0b1

    def test_history_truncation(self):
        table = LocalHistoryTable(16, 4)
        for _ in range(10):
            table.update(0x10, True)
        assert table.read(0x10) == 0b1111

    def test_reset(self):
        table = LocalHistoryTable(16, 4)
        table.update(0x10, True)
        table.reset()
        assert table.read(0x10) == 0

    def test_storage_bits(self):
        assert LocalHistoryTable(256, 16).storage_bits() == 4096

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(100, 8)

    def test_rejects_invalid_widths(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(0, 8)
        with pytest.raises(ValueError):
            LocalHistoryTable(16, 0)

    @given(st.lists(st.booleans(), max_size=64))
    def test_single_pc_history_matches_reference(self, outcomes):
        table = LocalHistoryTable(64, 16)
        reference = 0
        for outcome in outcomes:
            table.update(0x400, outcome)
            reference = ((reference << 1) | int(outcome)) & 0xFFFF
        assert table.read(0x400) == reference
