"""Tests for the synthetic benchmark suite definitions and generators."""

from __future__ import annotations

import pytest

from repro.trace.stats import compute_statistics
from repro.workloads.suites import (
    benchmark_names,
    generate_benchmark,
    generate_suite,
    get_benchmark,
    get_suite,
    suite_names,
)

PAPER_HIGHLIGHTED = {
    "cbp4like": ["SPEC2K6-04", "SPEC2K6-12", "MM-4"],
    "cbp3like": ["CLIENT02", "MM07", "WS03", "WS04"],
}


class TestSuiteDefinitions:
    def test_two_suites_exist(self):
        assert set(suite_names()) == {"cbp4like", "cbp3like"}

    def test_each_suite_has_twenty_benchmarks(self):
        for suite in suite_names():
            assert len(benchmark_names(suite)) == 20

    def test_benchmark_names_are_unique(self):
        for suite in suite_names():
            names = benchmark_names(suite)
            assert len(names) == len(set(names))

    def test_paper_highlighted_benchmarks_present(self):
        for suite, names in PAPER_HIGHLIGHTED.items():
            for name in names:
                assert name in benchmark_names(suite)

    def test_get_benchmark_and_suite(self):
        spec = get_benchmark("cbp4like", "SPEC2K6-04")
        assert spec.name == "SPEC2K6-04"
        assert get_suite("cbp4like").get("SPEC2K6-04") is spec

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            get_suite("cbp5like")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("cbp4like", "NOPE")

    def test_every_benchmark_has_description_and_phases(self):
        for suite in suite_names():
            for benchmark in get_suite(suite).benchmarks:
                assert benchmark.description
                assert benchmark.phases
                assert benchmark.seed > 0

    def test_seeds_are_unique_across_suites(self):
        seeds = [
            benchmark.seed
            for suite in suite_names()
            for benchmark in get_suite(suite).benchmarks
        ]
        assert len(seeds) == len(set(seeds))


class TestBenchmarkGeneration:
    def test_target_length_reached(self):
        trace = generate_benchmark(
            get_benchmark("cbp4like", "SPEC2K6-00"), target_conditional_branches=1500
        )
        assert trace.conditional_count >= 1500

    def test_generation_is_deterministic(self):
        spec = get_benchmark("cbp3like", "WS04")
        first = generate_benchmark(spec, target_conditional_branches=1000)
        second = generate_benchmark(spec, target_conditional_branches=1000)
        assert first.records == second.records

    def test_metadata_recorded(self):
        trace = generate_benchmark(
            get_benchmark("cbp4like", "MM-4"), target_conditional_branches=800
        )
        assert trace.name == "MM-4"
        assert "description" in trace.metadata
        assert trace.metadata["target_conditional_branches"] == "800"

    def test_instruction_gap_parameter(self):
        trace = generate_benchmark(
            get_benchmark("cbp4like", "MM-1"),
            target_conditional_branches=500,
            instruction_gap=3,
        )
        assert all(record.instruction_gap == 3 for record in trace)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            generate_benchmark(get_benchmark("cbp4like", "MM-1"), target_conditional_branches=0)

    def test_phases_use_disjoint_pcs(self):
        spec = get_benchmark("cbp4like", "SPEC2K6-12")
        trace = generate_benchmark(spec, target_conditional_branches=1200)
        pcs = {record.pc for record in trace}
        regions = {pc >> 18 for pc in pcs}
        assert len(regions) == len(spec.phases)

    def test_nested_loop_benchmarks_have_backward_branches(self):
        trace = generate_benchmark(
            get_benchmark("cbp3like", "WS04"), target_conditional_branches=1500
        )
        stats = compute_statistics(trace)
        assert stats.backward_branch_fraction > 0.05
        assert stats.mean_inner_loop_trip_count > 4


class TestSuiteGeneration:
    def test_generate_full_suite(self):
        traces = generate_suite("cbp4like", target_conditional_branches=300)
        assert len(traces) == 20
        assert [trace.name for trace in traces] == benchmark_names("cbp4like")

    def test_generate_subset(self):
        traces = generate_suite(
            "cbp3like", target_conditional_branches=300, benchmarks=["MM07", "WS04"]
        )
        assert [trace.name for trace in traces] == ["MM07", "WS04"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            generate_suite("not-a-suite")
