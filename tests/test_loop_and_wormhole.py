"""Tests for the loop predictor and the wormhole side predictor."""

from __future__ import annotations

import random

import pytest

from repro.predictors.loop import LoopPredictor, LoopPredictorConfig
from repro.predictors.wormhole import WormholePredictor, WormholePredictorConfig
from repro.trace.branch import BranchRecord, conditional_branch


def _loop_back(pc: int, taken: bool) -> BranchRecord:
    return BranchRecord(pc=pc, target=pc - 64, taken=taken)


def _run_loop(predictor, pc, trip, executions):
    """Drive a loop back-edge through the predictor; return (correct, total)."""
    correct = 0
    total = 0
    for _ in range(executions):
        for iteration in range(trip):
            record = _loop_back(pc, iteration < trip - 1)
            prediction = predictor.predict(record)
            if prediction is not None:
                total += 1
                correct += prediction == record.taken
            predictor.update(record)
    return correct, total


class TestLoopPredictor:
    def test_learns_constant_trip_count(self):
        predictor = LoopPredictor(LoopPredictorConfig(entries=16))
        correct, total = _run_loop(predictor, pc=0x800, trip=10, executions=12)
        assert total > 0
        # Once confident, every iteration including the exit is predicted.
        assert correct / total > 0.95

    def test_trip_count_exposed_for_wormhole(self):
        predictor = LoopPredictor()
        _run_loop(predictor, pc=0x800, trip=7, executions=6)
        assert predictor.trip_count_for(0x800) == 7

    def test_no_confidence_for_variable_trip_counts(self):
        predictor = LoopPredictor()
        rng = random.Random(2)
        for _ in range(20):
            trip = rng.randint(5, 12)
            for iteration in range(trip):
                predictor.update(_loop_back(0x800, iteration < trip - 1))
        assert predictor.trip_count_for(0x800) is None

    def test_only_backward_branches_are_tracked(self):
        predictor = LoopPredictor()
        forward = conditional_branch(0x800, 0x900, taken=True)
        assert predictor.predict(forward) is None
        predictor.update(forward)
        assert predictor.trip_count_for(0x800) is None

    def test_current_iteration_tracking(self):
        predictor = LoopPredictor()
        for iteration in range(4):
            predictor.update(_loop_back(0x800, True))
        assert predictor.current_iteration_for(0x800) >= 4

    def test_unknown_pc(self):
        predictor = LoopPredictor()
        assert predictor.trip_count_for(0x1234) is None
        assert predictor.current_iteration_for(0x1234) is None

    def test_storage_bits_positive(self):
        assert LoopPredictor(LoopPredictorConfig(entries=16)).storage_bits() > 0

    def test_no_prediction_before_confidence(self):
        predictor = LoopPredictor()
        record = _loop_back(0x800, True)
        assert predictor.predict(record) is None


class TestWormholePredictor:
    def _nested_loop_records(self, trip, outers, rng=None, diagonal=True):
        """Emit (record, is_target) pairs for a diagonal-correlated loop nest."""
        rng = rng or random.Random(9)
        previous_row = [rng.random() < 0.5 for _ in range(trip)]
        records = []
        for _ in range(outers):
            current_row = []
            for inner in range(trip):
                if diagonal and inner > 0:
                    outcome = previous_row[inner - 1]
                else:
                    outcome = rng.random() < 0.5
                current_row.append(outcome)
                records.append((conditional_branch(0x9000, 0x9040, outcome), True))
                records.append((_loop_back(0xA000, inner < trip - 1), False))
            previous_row = current_row
        return records

    def _drive(self, records, loop_config=None, wh_config=None):
        loop_predictor = LoopPredictor(loop_config or LoopPredictorConfig())
        wormhole = WormholePredictor(loop_predictor, wh_config or WormholePredictorConfig())
        used = 0
        correct = 0
        target_total = 0
        for record, is_target in records:
            prediction = wormhole.predict(record)
            if is_target:
                target_total += 1
                if prediction is not None:
                    used += 1
                    correct += prediction == record.taken
            # A weak main predictor: always predict taken.
            main_mispredicted = record.taken is False
            loop_predictor.update(record)
            wormhole.update(record, main_mispredicted)
        return used, correct, target_total

    def test_captures_diagonal_correlation(self):
        records = self._nested_loop_records(trip=12, outers=30)
        used, correct, total = self._drive(records)
        assert used > total * 0.3
        assert correct / used > 0.9

    def test_silent_without_constant_trip_count(self):
        rng = random.Random(4)
        records = []
        for _ in range(30):
            trip = rng.randint(6, 14)
            for inner in range(trip):
                records.append((conditional_branch(0x9000, 0x9040, rng.random() < 0.5), True))
                records.append((_loop_back(0xA000, inner < trip - 1), False))
        used, _, _ = self._drive(records)
        assert used == 0

    def test_entry_count_is_bounded(self):
        loop_predictor = LoopPredictor()
        wormhole = WormholePredictor(loop_predictor, WormholePredictorConfig(entries=4))
        rng = random.Random(1)
        # Train the loop predictor on a constant-trip loop, then mispredict
        # many distinct branches inside it.
        for outer in range(40):
            for inner in range(8):
                pc = 0x9000 + 0x40 * (outer % 10)
                record = conditional_branch(pc, pc + 0x40, rng.random() < 0.5)
                wormhole.update(record, main_mispredicted=True)
                back = _loop_back(0xA000, inner < 7)
                loop_predictor.update(back)
                wormhole.update(back, main_mispredicted=False)
        assert len(wormhole.entries) <= 4

    def test_no_prediction_for_backward_branches(self):
        loop_predictor = LoopPredictor()
        wormhole = WormholePredictor(loop_predictor)
        assert wormhole.predict(_loop_back(0xA000, True)) is None

    def test_storage_bits_scale_with_entries(self):
        small = WormholePredictor(LoopPredictor(), WormholePredictorConfig(entries=4))
        large = WormholePredictor(LoopPredictor(), WormholePredictorConfig(entries=8))
        assert large.storage_bits() == 2 * small.storage_bits()
