"""Tests for speculative IMLI state management (repro.core.speculative)."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.core.imli import IMLIState
from repro.core.imli_oh import IMLIOuterHistoryComponent
from repro.core.speculative import (
    IMLICheckpoint,
    SpeculativeIMLITracker,
    checkpoint_cost_bits,
)


class TestIMLICheckpoint:
    def test_bits_without_pipe(self):
        assert IMLICheckpoint(imli_count=5).bits(imli_counter_bits=10) == 10

    def test_bits_with_pipe(self):
        checkpoint = IMLICheckpoint(imli_count=5, pipe=tuple([0] * 16))
        assert checkpoint.bits(imli_counter_bits=10) == 26

    def test_checkpoint_cost_helper(self):
        imli = IMLIState(counter_bits=10)
        assert checkpoint_cost_bits(imli) == 10
        oh = IMLIOuterHistoryComponent(tracked_branches=16)
        assert checkpoint_cost_bits(imli, oh) == 26


class TestSpeculativeIMLITracker:
    def test_speculation_follows_predictions(self):
        tracker = SpeculativeIMLITracker()
        tracker.speculate(is_backward=True, predicted_taken=True)
        tracker.speculate(is_backward=True, predicted_taken=True)
        assert tracker.count == 2

    def test_recovery_restores_and_replays_actual_outcome(self):
        tracker = SpeculativeIMLITracker()
        tracker.speculate(True, True)  # count == 1
        checkpoint = tracker.checkpoint()
        tracker.speculate(True, True)  # predicted taken -> 2
        # The branch actually exits the loop: recover and apply the real outcome.
        tracker.recover(checkpoint, is_backward=True, actual_taken=False)
        assert tracker.count == 0

    def test_recovery_with_outer_history_restores_pipe(self):
        oh = IMLIOuterHistoryComponent()
        tracker = SpeculativeIMLITracker(outer_history=oh)
        checkpoint = tracker.checkpoint()
        oh.pipe[0] = 1  # wrong-path pollution
        tracker.recover(checkpoint, is_backward=False, actual_taken=True)
        assert oh.pipe[0] == 0

    def test_checkpoint_bits_match_paper_scale(self):
        """10-bit IMLI counter + 16-bit PIPE vector = 26 bits per checkpoint."""
        tracker = SpeculativeIMLITracker(
            counter_bits=10, outer_history=IMLIOuterHistoryComponent(tracked_branches=16)
        )
        assert tracker.checkpoint_bits() == 26

    @given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), max_size=150))
    def test_recovery_always_resynchronises_with_committed_state(self, events):
        """After checkpoint recovery the speculative counter equals the committed one.

        ``events`` is a list of (is_backward, actual_taken, predicted_taken)
        triples; whenever prediction != actual we recover from the checkpoint
        taken before the branch, which must resynchronise exactly.
        """
        committed = IMLIState()
        tracker = SpeculativeIMLITracker()
        for is_backward, actual, predicted in events:
            checkpoint = tracker.checkpoint()
            tracker.speculate(is_backward, predicted)
            committed.observe(is_backward, actual)
            if predicted != actual:
                tracker.recover(checkpoint, is_backward, actual)
            assert tracker.count == committed.count

    def test_long_random_speculation_with_recovery(self):
        rng = random.Random(1)
        committed = IMLIState()
        tracker = SpeculativeIMLITracker()
        for _ in range(2000):
            is_backward = rng.random() < 0.3
            actual = rng.random() < 0.8
            predicted = actual if rng.random() < 0.9 else not actual
            checkpoint = tracker.checkpoint()
            tracker.speculate(is_backward, predicted)
            committed.observe(is_backward, actual)
            if predicted != actual:
                tracker.recover(checkpoint, is_backward, actual)
            assert tracker.count == committed.count
