"""Integration tests for the paper's headline claims, at test scale.

These tests exercise complete predictor composites over the synthetic
kernels and check the *qualitative* results of the paper:

* IMLI-SIC captures same-iteration correlation that the base global-history
  predictors miss, even when the inner trip count varies (where the
  wormhole predictor is blind).
* IMLI-OH captures the wormhole correlation (Out[N][M] ~ Out[N-1][M-1]),
  like the WH predictor but without long per-branch local histories.
* The IMLI components barely disturb benchmarks without such correlation.
* Adding local history on top of IMLI buys less than adding it to the base.
"""

from __future__ import annotations

import pytest

from repro.predictors.composites import build_named
from repro.sim.engine import simulate
from repro.sim.runner import SuiteRunner


def _mpki(configuration, trace):
    return simulate(build_named(configuration, profile="small"), trace).mpki


class TestIMLISICClaims:
    def test_sic_improves_same_iteration_kernel(self, sic_trace):
        base = _mpki("tage-gsc", sic_trace)
        sic = _mpki("tage-gsc+sic", sic_trace)
        assert sic < base * 0.9

    def test_sic_improves_gehl_too(self, sic_trace):
        base = _mpki("gehl", sic_trace)
        sic = _mpki("gehl+sic", sic_trace)
        assert sic < base * 0.9

    def test_wormhole_cannot_help_variable_trip_counts(self, sic_trace):
        """The SIC kernel uses a varying trip count: WH stays silent (Section 4.2.2)."""
        base = _mpki("tage-gsc", sic_trace)
        wormhole = _mpki("tage-gsc+wh", sic_trace)
        assert wormhole == pytest.approx(base, rel=0.05)

    def test_sic_also_predicts_loop_exits(self, spec2k6_04_trace):
        """Adding the loop predictor on top of IMLI-SIC brings little (Section 4.2.2)."""
        base = _mpki("tage-gsc", spec2k6_04_trace)
        loop_only = _mpki("tage-gsc+loop", spec2k6_04_trace)
        sic = _mpki("tage-gsc+sic", spec2k6_04_trace)
        sic_loop = _mpki("tage-gsc+sic+loop", spec2k6_04_trace)
        benefit_without_sic = base - loop_only
        benefit_with_sic = sic - sic_loop
        assert benefit_with_sic <= benefit_without_sic + 0.2


class TestIMLIOHClaims:
    def test_oh_improves_wormhole_kernel(self, wormhole_trace):
        base = _mpki("tage-gsc", wormhole_trace)
        oh = _mpki("tage-gsc+oh", wormhole_trace)
        assert oh < base * 0.85

    def test_oh_matches_wormhole_predictor(self, wormhole_trace):
        """IMLI-OH captures the same correlation as WH (Section 4.3)."""
        wormhole = _mpki("tage-gsc+wh", wormhole_trace)
        oh = _mpki("tage-gsc+oh", wormhole_trace)
        base = _mpki("tage-gsc", wormhole_trace)
        wh_gain = base - wormhole
        oh_gain = base - oh
        assert oh_gain > 0.45 * wh_gain

    def test_full_imli_improves_spec2k6_12(self, spec2k6_12_trace):
        base = _mpki("tage-gsc", spec2k6_12_trace)
        imli = _mpki("tage-gsc+imli", spec2k6_12_trace)
        assert imli < base * 0.9


class TestNeutralityClaims:
    def test_imli_is_nearly_neutral_on_easy_code(self, easy_trace):
        """Benchmarks without loop correlation neither benefit nor suffer."""
        base = _mpki("tage-gsc", easy_trace)
        imli = _mpki("tage-gsc+imli", easy_trace)
        assert imli <= base * 1.15 + 0.3

    def test_imli_is_nearly_neutral_on_local_code(self, local_trace):
        base = _mpki("gehl", local_trace)
        imli = _mpki("gehl+imli", local_trace)
        assert imli <= base * 1.15 + 0.3


class TestLocalHistoryInteraction:
    @pytest.fixture(scope="class")
    def runner(self, request):
        from repro.workloads.suites import generate_suite

        traces = generate_suite(
            "cbp4like",
            target_conditional_branches=1500,
            benchmarks=["SPEC2K6-04", "SPEC2K6-12", "SPEC2K6-02", "SPEC2K6-00"],
        )
        return SuiteRunner(traces, profile="small")

    def test_local_benefit_shrinks_with_imli(self, runner):
        """Section 5: local history buys less once IMLI components are present."""
        base = runner.run("tage-gsc").average_mpki
        local = runner.run("tage-gsc+l").average_mpki
        imli = runner.run("tage-gsc+imli").average_mpki
        imli_local = runner.run("tage-gsc+imli+l").average_mpki
        assert (imli - imli_local) < (base - local)

    def test_combined_configuration_is_best(self, runner):
        base = runner.run("tage-gsc").average_mpki
        imli_local = runner.run("tage-gsc+imli+l").average_mpki
        assert imli_local < base

    def test_record_configuration_improves_tage_sc_l(self, runner):
        """Section 5: TAGE-SC-L + IMLI beats TAGE-SC-L."""
        tage_sc_l = runner.run("tage-sc-l").average_mpki
        with_imli = runner.run("tage-sc-l+imli").average_mpki
        assert with_imli < tage_sc_l * 1.02  # must not regress; normally improves
