"""Equivalence tests for the columnar fast simulation path.

The engine promises that the fast path (columnar iteration driving the
combined ``predict_update`` protocol) and the reference path (record views
driving ``predict()`` / ``update()``) are bit-identical.  These tests pin
that promise for every registered composite configuration on benchmarks
from both synthetic suites, plus the protocol edge cases.
"""

from __future__ import annotations

import pytest

from repro.predictors.composites import build_named, configuration_names
from repro.predictors.simple import (
    AlwaysTakenPredictor,
    BimodalPredictor,
)
from repro.sim.engine import simulate, supports_fast_path
from repro.workloads.suites import generate_benchmark, get_benchmark

#: One deliberately hard benchmark per suite (they exercise IMLI, wormhole
#: and noise kernels together, so every component sees real traffic).
_BENCHMARKS = [("cbp4like", "SPEC2K6-12"), ("cbp3like", "MM07")]


@pytest.fixture(scope="module")
def suite_traces():
    return {
        (suite, name): generate_benchmark(
            get_benchmark(suite, name), target_conditional_branches=400
        )
        for suite, name in _BENCHMARKS
    }


def _assert_identical(reference, fast):
    assert reference.mispredictions == fast.mispredictions
    assert reference.conditional_branches == fast.conditional_branches
    assert reference.instructions == fast.instructions
    assert reference.storage_bits == fast.storage_bits
    assert reference.per_pc_mispredictions == fast.per_pc_mispredictions


@pytest.mark.parametrize("configuration", configuration_names())
@pytest.mark.parametrize("suite,benchmark_name", _BENCHMARKS)
class TestCompositeEquivalence:
    def test_fast_path_matches_reference(
        self, suite_traces, configuration, suite, benchmark_name
    ):
        trace = suite_traces[(suite, benchmark_name)]
        reference = simulate(
            build_named(configuration, profile="small"), trace, use_fast_path=False
        )
        fast = simulate(
            build_named(configuration, profile="small"), trace, use_fast_path=True
        )
        _assert_identical(reference, fast)


class TestFastPathProtocol:
    def test_all_composites_support_fast_path(self, suite_traces):
        trace = next(iter(suite_traces.values()))
        for configuration in configuration_names():
            predictor = build_named(configuration, profile="small")
            assert supports_fast_path(predictor, trace), configuration

    def test_bimodal_supports_fast_path(self, suite_traces):
        trace = next(iter(suite_traces.values()))
        assert supports_fast_path(BimodalPredictor(), trace)

    def test_non_opt_in_predictor_falls_back(self, suite_traces):
        trace = next(iter(suite_traces.values()))
        predictor = AlwaysTakenPredictor()
        assert not supports_fast_path(predictor, trace)
        # Auto mode silently uses the reference path ...
        result = simulate(predictor, trace)
        assert result.conditional_branches == trace.conditional_count
        # ... while an explicit fast-path request is an error.
        with pytest.raises(ValueError):
            simulate(predictor, trace, use_fast_path=True)

    def test_warmup_and_per_pc_equivalence(self, suite_traces):
        trace = next(iter(suite_traces.values()))
        reference = simulate(
            build_named("tage-gsc+imli", profile="small"),
            trace,
            warmup_fraction=0.25,
            track_per_pc=True,
            use_fast_path=False,
        )
        fast = simulate(
            build_named("tage-gsc+imli", profile="small"),
            trace,
            warmup_fraction=0.25,
            track_per_pc=True,
            use_fast_path=True,
        )
        _assert_identical(reference, fast)
        assert fast.per_pc_mispredictions  # misses actually got attributed

    def test_bimodal_equivalence_with_per_pc(self, suite_traces):
        trace = next(iter(suite_traces.values()))
        reference = simulate(
            BimodalPredictor(), trace, track_per_pc=True, use_fast_path=False
        )
        fast = simulate(
            BimodalPredictor(), trace, track_per_pc=True, use_fast_path=True
        )
        _assert_identical(reference, fast)
