"""Tests for the trace model: BranchRecord, Trace, serialisation, statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.trace.branch import BranchKind, BranchRecord, conditional_branch
from repro.trace.stats import compute_statistics
from repro.trace.trace import Trace, load_trace, save_trace


class TestBranchRecord:
    def test_conditional_constructor(self):
        record = conditional_branch(pc=0x100, target=0x140, taken=True)
        assert record.is_conditional
        assert not record.is_backward
        assert record.kind is BranchKind.CONDITIONAL

    def test_backward_detection(self):
        record = conditional_branch(pc=0x200, target=0x100, taken=True)
        assert record.is_backward

    def test_unconditional_must_be_taken(self):
        with pytest.raises(ValueError):
            BranchRecord(pc=0x100, target=0x200, taken=False, kind=BranchKind.UNCONDITIONAL)

    def test_negative_pc_rejected(self):
        with pytest.raises(ValueError):
            conditional_branch(pc=-1, target=0, taken=True)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            conditional_branch(pc=1, target=2, taken=True, instruction_gap=-1)

    def test_kind_is_conditional_flag(self):
        assert BranchKind.CONDITIONAL.is_conditional
        assert not BranchKind.CALL.is_conditional
        assert not BranchKind.RETURN.is_conditional

    def test_records_are_immutable(self):
        record = conditional_branch(pc=0x100, target=0x140, taken=True)
        with pytest.raises(AttributeError):
            record.taken = False  # type: ignore[misc]


class TestTrace:
    def _simple_trace(self) -> Trace:
        trace = Trace(name="example", metadata={"seed": "1"})
        trace.append(conditional_branch(0x100, 0x140, True, instruction_gap=4))
        trace.append(conditional_branch(0x100, 0x140, False, instruction_gap=4))
        trace.append(BranchRecord(pc=0x180, target=0x200, taken=True, kind=BranchKind.CALL))
        trace.append(conditional_branch(0x200, 0x180, True, instruction_gap=4))
        return trace

    def test_lengths_and_counts(self):
        trace = self._simple_trace()
        assert len(trace) == 4
        assert trace.conditional_count == 3

    def test_instruction_count(self):
        trace = self._simple_trace()
        expected = sum(record.instruction_gap + 1 for record in trace)
        assert trace.instruction_count == expected

    def test_static_branches(self):
        static = self._simple_trace().static_branches()
        assert static[0x100] == 2
        assert static[0x200] == 1
        assert 0x180 not in static  # calls are not conditional

    def test_taken_rate(self):
        assert self._simple_trace().taken_rate() == pytest.approx(2 / 3)

    def test_slice(self):
        trace = self._simple_trace()
        part = trace.slice(1, 3)
        assert len(part) == 2
        assert part.name == trace.name

    def test_indexing_and_iteration(self):
        trace = self._simple_trace()
        assert trace[0].pc == 0x100
        assert [record.pc for record in trace][-1] == 0x200

    def test_extend(self):
        trace = Trace(name="x")
        trace.extend([conditional_branch(1, 2, True)] * 3)
        assert len(trace) == 3

    def test_empty_trace_taken_rate(self):
        assert Trace(name="empty").taken_rate() == 0.0


class TestTraceSerialisation:
    def test_roundtrip(self, tmp_path):
        trace = Trace(name="roundtrip", metadata={"kernel": "sic", "seed": "42"})
        trace.append(conditional_branch(0x100, 0x140, True))
        trace.append(BranchRecord(pc=0x180, target=0x100, taken=True, kind=BranchKind.UNCONDITIONAL))
        trace.append(conditional_branch(0x200, 0x100, False))
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.metadata == trace.metadata
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert original == restored

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(path)

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**20),
                st.integers(min_value=0, max_value=2**20),
                st.booleans(),
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, rows):
        import tempfile
        from pathlib import Path

        trace = Trace(name="prop")
        for pc, target, taken in rows:
            trace.append(conditional_branch(pc, target, taken))
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "prop.txt"
            save_trace(trace, path)
            assert [r.pc for r in load_trace(path)] == [r.pc for r in trace]


class TestTraceStatistics:
    def test_statistics_on_simple_loop(self, simple_loop_records):
        trace = Trace(name="loops", records=list(simple_loop_records))
        stats = compute_statistics(trace)
        assert stats.conditional_branches == 15
        assert stats.static_conditional_branches == 1
        assert stats.backward_branch_fraction == 1.0
        # Three loops of five iterations each.
        assert stats.mean_inner_loop_trip_count == pytest.approx(5.0)

    def test_statistics_fields_consistent(self, sic_trace):
        stats = compute_statistics(sic_trace)
        assert stats.total_branches == len(sic_trace)
        assert stats.conditional_branches <= stats.total_branches
        assert 0.0 <= stats.taken_rate <= 1.0
        assert stats.instructions == sic_trace.instruction_count
        assert stats.as_dict()["conditional_branches"] == stats.conditional_branches

    def test_empty_trace(self):
        stats = compute_statistics(Trace(name="empty"))
        assert stats.conditional_branches == 0
        assert stats.taken_rate == 0.0
        assert stats.mean_inner_loop_trip_count == 0.0
