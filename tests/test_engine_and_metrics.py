"""Tests for the simulation engine, metrics and suite runner."""

from __future__ import annotations

import pytest

from repro.predictors.simple import AlwaysTakenPredictor, BimodalPredictor
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import (
    average_mpki,
    most_affected,
    most_improved,
    mpki_by_trace,
    mpki_delta,
    mpki_reduction_percent,
)
from repro.sim.runner import SuiteRunner
from repro.trace.branch import BranchKind, BranchRecord, conditional_branch
from repro.trace.trace import Trace


def _tiny_trace(name="tiny"):
    trace = Trace(name=name)
    for index in range(20):
        trace.append(conditional_branch(0x100, 0x140, taken=index % 2 == 0, instruction_gap=9))
    trace.append(BranchRecord(pc=0x200, target=0x240, taken=True, kind=BranchKind.CALL))
    return trace


class TestSimulate:
    def test_counts_and_mpki(self):
        trace = _tiny_trace()
        result = simulate(AlwaysTakenPredictor(), trace)
        assert result.conditional_branches == 20
        assert result.mispredictions == 10
        assert result.instructions == trace.instruction_count
        assert result.mpki == pytest.approx(1000.0 * 10 / trace.instruction_count)
        assert result.misprediction_rate == pytest.approx(0.5)
        assert result.accuracy == pytest.approx(0.5)

    def test_summary_mentions_names(self):
        result = simulate(AlwaysTakenPredictor(), _tiny_trace("bench-x"))
        assert "bench-x" in result.summary()
        assert "always-taken" in result.summary()

    def test_warmup_excludes_early_branches(self):
        trace = _tiny_trace()
        full = simulate(AlwaysTakenPredictor(), trace, warmup_fraction=0.0)
        warm = simulate(AlwaysTakenPredictor(), trace, warmup_fraction=0.5)
        assert warm.conditional_branches == 10
        assert warm.mispredictions <= full.mispredictions

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            simulate(AlwaysTakenPredictor(), _tiny_trace(), warmup_fraction=1.0)

    def test_per_pc_tracking(self):
        result = simulate(AlwaysTakenPredictor(), _tiny_trace(), track_per_pc=True)
        assert result.per_pc_mispredictions == {0x100: 10}

    def test_empty_trace(self):
        result = simulate(AlwaysTakenPredictor(), Trace(name="empty"))
        assert result.mpki == 0.0
        assert result.accuracy == 1.0

    def test_storage_reported(self):
        result = simulate(BimodalPredictor(entries=64), _tiny_trace())
        assert result.storage_bits == 128


class TestMetrics:
    def _results(self):
        return [
            SimulationResult("a", "p", 1000, 10, 10000, 0),
            SimulationResult("b", "p", 1000, 30, 10000, 0),
        ]

    def test_average_mpki(self):
        assert average_mpki(self._results()) == pytest.approx((1.0 + 3.0) / 2)

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_mpki([])

    def test_mpki_by_trace(self):
        assert mpki_by_trace(self._results()) == {"a": pytest.approx(1.0), "b": pytest.approx(3.0)}

    def test_mpki_delta(self):
        baseline = {"a": 2.0, "b": 3.0}
        candidate = {"a": 1.5, "b": 3.5}
        assert mpki_delta(baseline, candidate) == {"a": pytest.approx(0.5), "b": pytest.approx(-0.5)}

    def test_mpki_delta_requires_same_traces(self):
        with pytest.raises(ValueError):
            mpki_delta({"a": 1.0}, {"b": 1.0})

    def test_reduction_percent(self):
        assert mpki_reduction_percent(2.0, 1.5) == pytest.approx(25.0)
        assert mpki_reduction_percent(0.0, 1.0) == 0.0

    def test_most_improved(self):
        baseline = {"a": 2.0, "b": 3.0, "c": 1.0}
        candidate = {"a": 1.0, "b": 2.9, "c": 1.0}
        assert most_improved(baseline, candidate, 2) == [("a", pytest.approx(1.0)), ("b", pytest.approx(0.1))]

    def test_most_affected(self):
        baseline = {"a": 2.0, "b": 3.0, "c": 1.0}
        candidates = [{"a": 1.0, "b": 3.0, "c": 1.0}, {"a": 2.0, "b": 3.4, "c": 1.0}]
        assert most_affected(baseline, candidates, 2) == ["a", "b"]


class TestSuiteRunner:
    def _runner(self):
        traces = [_tiny_trace("t1"), _tiny_trace("t2")]
        return SuiteRunner(traces, profile="small")

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            SuiteRunner([])

    def test_run_with_custom_factory(self):
        runner = self._runner()
        run = runner.run("always", factory=AlwaysTakenPredictor)
        assert run.configuration == "always"
        assert len(run.results) == 2
        assert run.average_mpki > 0
        assert run.mpki_by_trace().keys() == {"t1", "t2"}

    def test_results_are_memoised(self):
        runner = self._runner()
        first = runner.run("always", factory=AlwaysTakenPredictor)
        second = runner.run("always", factory=AlwaysTakenPredictor)
        assert first is second

    def test_invalidate(self):
        runner = self._runner()
        first = runner.run("always", factory=AlwaysTakenPredictor)
        runner.invalidate("always")
        second = runner.run("always", factory=AlwaysTakenPredictor)
        assert first is not second

    def test_run_many(self):
        runner = self._runner()
        runs = runner.run_many(
            ["always", "bimodal"],
            factories={"always": AlwaysTakenPredictor, "bimodal": BimodalPredictor},
        )
        assert set(runs) == {"always", "bimodal"}

    def test_named_configuration_from_registry(self, easy_trace):
        runner = SuiteRunner([easy_trace], profile="small")
        run = runner.run("tage-gsc")
        assert run.storage_bits > 0
        assert run.result_for(easy_trace.name).trace_name == easy_trace.name
        with pytest.raises(KeyError):
            run.result_for("missing")

    def test_trace_names(self):
        assert self._runner().trace_names() == ["t1", "t2"]

    def test_memoisation_keyed_on_track_per_pc(self):
        runner = self._runner()
        plain = runner.run("always", factory=AlwaysTakenPredictor)
        tracked = runner.run(
            "always", factory=AlwaysTakenPredictor, track_per_pc=True
        )
        # A run cached without per-PC data must not satisfy a tracked request.
        assert plain is not tracked
        assert not any(result.per_pc_mispredictions for result in plain.results)
        assert all(result.per_pc_mispredictions for result in tracked.results)
        # Both variants are memoised independently.
        assert runner.run("always", factory=AlwaysTakenPredictor) is plain
        assert (
            runner.run("always", factory=AlwaysTakenPredictor, track_per_pc=True)
            is tracked
        )

    def test_invalidate_drops_both_tracking_variants(self):
        runner = self._runner()
        plain = runner.run("always", factory=AlwaysTakenPredictor)
        tracked = runner.run("always", factory=AlwaysTakenPredictor, track_per_pc=True)
        runner.invalidate("always")
        assert runner.run("always", factory=AlwaysTakenPredictor) is not plain
        assert (
            runner.run("always", factory=AlwaysTakenPredictor, track_per_pc=True)
            is not tracked
        )

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            SuiteRunner([_tiny_trace()], max_workers=0)


class TestParallelSuiteRunner:
    def _traces(self):
        from repro.workloads.suites import generate_suite

        return generate_suite(
            "cbp4like",
            target_conditional_branches=200,
            benchmarks=["SPEC2K6-04", "SPEC2K6-12", "MM-4"],
        )

    def test_parallel_results_match_serial(self):
        traces = self._traces()
        serial = SuiteRunner(traces, profile="small")
        parallel = SuiteRunner(traces, profile="small", max_workers=2)
        configurations = ["tage-gsc", "tage-gsc+sic"]

        def _factoryless(runner):
            return runner.run_many(configurations)

        serial_runs = _factoryless(serial)
        parallel_runs = _factoryless(parallel)
        for configuration in configurations:
            serial_results = serial_runs[configuration].results
            parallel_results = parallel_runs[configuration].results
            assert [r.trace_name for r in serial_results] == [
                r.trace_name for r in parallel_results
            ]
            assert [r.mispredictions for r in serial_results] == [
                r.mispredictions for r in parallel_results
            ]
            assert [r.instructions for r in serial_results] == [
                r.instructions for r in parallel_results
            ]

    def test_parallel_run_is_memoised(self):
        parallel = SuiteRunner(self._traces(), profile="small", max_workers=2)
        first = parallel.run("tage-gsc")
        second = parallel.run("tage-gsc")
        assert first is second

    def test_custom_factories_fall_back_in_process(self):
        parallel = SuiteRunner(self._traces(), profile="small", max_workers=2)
        runs = parallel.run_many(
            ["always"], factories={"always": AlwaysTakenPredictor}
        )
        assert len(runs["always"].results) == 3
