"""Tests for the persistent result store (repro.store) and its wiring.

Covers the store lifecycle (hit / miss / corrupt-record recovery),
concurrent writers sharing one store, resume semantics (an interrupted
sweep completed from the store is bit-identical to a cold run), and the
trace-fingerprint keying that keeps regenerated traces from being served
stale results.
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import time

import pytest

from repro.api import Experiment, PredictorSpec
from repro.api.registry import default_registry
from repro.sim.engine import SimulationResult, simulate
from repro.sim.runner import SuiteRunner
from repro.store import ResultStore, profile_content
from repro.trace.branch import conditional_branch
from repro.trace.trace import Trace


def _result(**overrides) -> SimulationResult:
    fields = dict(
        trace_name="trace-a",
        predictor_name="cfg-a",
        conditional_branches=1000,
        mispredictions=37,
        instructions=10000,
        storage_bits=4096,
        per_pc_mispredictions={0x4000: 30, 0x4040: 7},
    )
    fields.update(overrides)
    return SimulationResult(**fields)


def _key(salt: str = "", track: bool = False) -> str:
    return ResultStore.cell_key(
        f'{{"configuration": "cfg-a{salt}"}}', "profile-content", "fingerprint", track
    )


class TestStoreLifecycle:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = _key()
        store.put(key, _result(), trace_fingerprint="fingerprint")
        loaded = store.get(key)
        assert loaded == _result()
        assert isinstance(next(iter(loaded.per_pc_mispredictions)), int)
        assert store.hits == 1 and store.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(_key()) is None
        assert store.misses == 1
        assert _key() not in store
        assert len(store) == 0

    def test_gzip_records_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store", compress=True)
        key = _key()
        path = store.put(key, _result())
        assert path.name.endswith(".json.gz")
        assert store.get(key) == _result()
        # A plain-format reader of the same directory still finds it.
        assert ResultStore(tmp_path / "store").get(key) == _result()

    def test_corrupt_record_is_removed_and_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = _key()
        path = store.put(key, _result())
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(key) is None  # corrupt -> miss
        assert not path.exists()  # ...and removed, so the cell self-heals
        store.put(key, _result())
        assert store.get(key) == _result()

    def test_truncated_gzip_record_is_removed(self, tmp_path):
        store = ResultStore(tmp_path / "store", compress=True)
        key = _key()
        path = store.put(key, _result())
        path.write_bytes(gzip.compress(b'{"version": 1')[:-4])
        assert store.get(key) is None
        assert not path.exists()

    def test_record_under_wrong_key_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        source = store.put(_key(), _result())
        impostor = store._paths_for(_key("other"))[0]
        impostor.parent.mkdir(parents=True, exist_ok=True)
        impostor.write_bytes(source.read_bytes())
        assert store.get(_key("other")) is None

    def test_track_per_pc_gets_its_own_cell(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key(track=False), _result(per_pc_mispredictions={}))
        assert store.get(_key(track=True)) is None

    def test_cell_key_depends_on_every_component(self):
        base = ResultStore.cell_key("spec", "profile", "trace", False)
        assert ResultStore.cell_key("spec2", "profile", "trace", False) != base
        assert ResultStore.cell_key("spec", "profile2", "trace", False) != base
        assert ResultStore.cell_key("spec", "profile", "trace2", False) != base
        assert ResultStore.cell_key("spec", "profile", "trace", True) != base
        assert ResultStore.cell_key("spec", "profile", "trace", False) == base

    def test_gc_removes_only_old_records(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        old_path = store.put(_key("old"), _result())
        store.put(_key("new"), _result())
        stale = time.time() - 3600
        os.utime(old_path, (stale, stale))
        assert store.gc(older_than_seconds=60) == 1
        assert store.get(_key("old")) is None
        assert store.get(_key("new")) == _result()

    def test_export_and_records_skip_nothing_on_clean_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(_key("1"), _result(), label="one")
        store.put(_key("2"), _result(), label="two")
        exported = store.export()
        assert {record["label"] for record in exported} == {"one", "two"}
        assert all("age_seconds" in record for record in exported)
        assert sorted(store.keys()) == sorted([_key("1"), _key("2")])

    def test_non_json_spec_metadata_does_not_fail_put(self, tmp_path):
        class Odd:
            def __repr__(self):
                return "Odd()"

        store = ResultStore(tmp_path / "store")
        key = _key()
        store.put(key, _result(), spec={"overrides": {"weird": Odd()}})
        assert store.get(key) == _result()
        assert store.get_record(key)["spec"]["overrides"]["weird"] == "Odd()"

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert ResultStore.from_env() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", "0")
        assert ResultStore.from_env() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", "off")
        assert ResultStore.from_env() is None
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "env-store"))
        store = ResultStore.from_env()
        assert store is not None and store.root == tmp_path / "env-store"
        # resolve(): False beats the environment, instances pass through,
        # None and True both honour the environment variable.
        assert ResultStore.resolve(False) is None
        assert ResultStore.resolve(store) is store
        assert ResultStore.resolve(None).root == store.root
        assert ResultStore.resolve(True).root == store.root


class TestTraceFingerprint:
    def test_deterministic_and_content_addressed(self):
        records = [conditional_branch(pc=0x10, target=0x20, taken=bool(i % 2))
                   for i in range(16)]
        one = Trace(name="t", records=records)
        two = Trace(name="t", records=records)
        assert one.fingerprint() == two.fingerprint()

    def test_changes_with_content_and_name(self):
        records = [conditional_branch(pc=0x10, target=0x20, taken=True)]
        base = Trace(name="t", records=records)
        renamed = Trace(name="u", records=records)
        assert base.fingerprint() != renamed.fingerprint()
        extended = Trace(name="t", records=records)
        before = extended.fingerprint()
        extended.append(conditional_branch(pc=0x30, target=0x40, taken=False))
        assert extended.fingerprint() != before  # mutation invalidates


def _easy_trace(name: str = "store-kernel", flip: bool = False) -> Trace:
    return Trace(
        name=name,
        records=[
            conditional_branch(pc=0x100 + 16 * (i % 8), target=0x400,
                               taken=(i % 3 == 0) ^ flip)
            for i in range(600)
        ],
    )


class TestRunnerStoreIntegration:
    SPECS = ["tage-gsc", "tage-gsc+sic"]

    def test_fresh_runner_reuses_stored_cells(self, tmp_path):
        trace = _easy_trace()
        first = SuiteRunner([trace], profile="small", store=tmp_path / "store")
        cold = first.run_specs(
            [PredictorSpec.from_named(name, profile="small") for name in self.SPECS]
        )
        assert first.store.misses == 2 and first.store.hits == 0

        warm_runner = SuiteRunner([trace], profile="small", store=tmp_path / "store")
        warm = warm_runner.run_specs(
            [PredictorSpec.from_named(name, profile="small") for name in self.SPECS]
        )
        assert warm_runner.store.hits == 2 and warm_runner.store.misses == 0
        for label in self.SPECS:
            assert (
                warm[label].mpki_by_trace() == cold[label].mpki_by_trace()
            )

    def test_store_results_identical_serial_and_parallel(self, tmp_path):
        trace_a = _easy_trace("a")
        trace_b = _easy_trace("b", flip=True)
        specs = [PredictorSpec.from_named(n, profile="small") for n in self.SPECS]
        serial = SuiteRunner([trace_a, trace_b], profile="small").run_specs(specs)
        parallel = SuiteRunner(
            [trace_a, trace_b], profile="small", max_workers=2,
            store=tmp_path / "store",
        )
        try:
            filled = parallel.run_specs(specs)
            # Every cell was computed and persisted by the pool...
            assert parallel.store.misses == 4
            resumed_runner = SuiteRunner(
                [trace_a, trace_b], profile="small", max_workers=2,
                store=tmp_path / "store",
            )
            resumed = resumed_runner.run_specs(specs)
            # ...and a second parallel runner fills everything from disk
            # without spinning up its pool.
            assert resumed_runner.store.hits == 4
            assert resumed_runner._pool is None
        finally:
            parallel.close()
        for label in self.SPECS:
            mispredictions = [r.mispredictions for r in serial[label].results]
            assert [r.mispredictions for r in filled[label].results] == mispredictions
            assert [r.mispredictions for r in resumed[label].results] == mispredictions

    def test_regenerated_trace_invalidates_store_and_memo(self, tmp_path):
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        original = _easy_trace()
        runner = SuiteRunner([original], profile="small", store=tmp_path / "store")
        first = runner.run_spec(spec)

        # Same benchmark name, different content -- as after a generator
        # edit invalidated the REPRO_TRACE_CACHE entry and the trace was
        # regenerated.  Neither the persistent store nor a fresh memo may
        # serve the old run.
        regenerated = _easy_trace(flip=True)
        assert regenerated.name == original.name
        assert regenerated.fingerprint() != original.fingerprint()
        runner2 = SuiteRunner([regenerated], profile="small", store=tmp_path / "store")
        second = runner2.run_spec(spec)
        assert runner2.store.hits == 0  # store keyed on content, not name
        assert runner2.store.misses == 1  # the cell was recomputed
        assert second.results[0] == simulate(spec.build(), _easy_trace(flip=True))
        assert first.results[0].trace_name == second.results[0].trace_name

    def test_in_place_mutation_invalidates_memo(self):
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        trace = _easy_trace()
        runner = SuiteRunner([trace], profile="small")
        first = runner.run_spec(spec)
        for i in range(200):
            trace.append(
                conditional_branch(pc=0x900, target=0x400, taken=bool(i % 2))
            )
        second = runner.run_spec(spec)
        assert second is not first
        assert second.results[0].conditional_branches == 800

    def test_factory_runs_bypass_the_store(self, tmp_path):
        from repro.predictors.simple import BimodalPredictor

        runner = SuiteRunner(
            [_easy_trace()], profile="small", store=tmp_path / "store"
        )
        runner.run("custom", factory=lambda: BimodalPredictor(entries=64))
        assert len(runner.store) == 0

    def test_concurrent_writers_share_one_store(self, tmp_path):
        """Two concurrent writers (same cells) settle on one clean store."""
        store_dir = tmp_path / "store"
        specs = [PredictorSpec.from_named(n, profile="small") for n in self.SPECS]
        outcomes = {}

        def run(worker: int) -> None:
            runner = SuiteRunner(
                [_easy_trace()], profile="small", store=ResultStore(store_dir)
            )
            outcomes[worker] = runner.run_specs(specs)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ResultStore(store_dir)) == 2  # one record per cell
        for label in self.SPECS:
            assert (
                outcomes[0][label].mpki_by_trace()
                == outcomes[1][label].mpki_by_trace()
            )
        # every persisted record is readable and self-describing
        reader = ResultStore(store_dir)
        for key in reader.keys():
            assert reader.get(key) is not None


class TestResumeBitIdentical:
    """A sweep killed mid-run and resumed must equal an uninterrupted run."""

    BENCHMARKS = ["SPEC2K6-00"]
    LENGTH = 400

    def _experiment(self, specs, store) -> Experiment:
        return Experiment(
            specs,
            suite="cbp4like",
            benchmarks=self.BENCHMARKS,
            length=self.LENGTH,
            profile="small",
            store=store,
        )

    def test_partial_then_resumed_run_matches_cold_run(self, tmp_path):
        base = PredictorSpec.from_named("tage-gsc+oh", profile="small")
        full = [base] + base.sweep(oh_update_delay=[15, 63])

        # Uninterrupted cold run, no store: the reference output.
        cold = self._experiment(full, store=False).run(baseline=base)

        # "Killed mid-run": only the first two specs completed before the
        # interruption, leaving their cells in the store.
        store_dir = tmp_path / "store"
        self._experiment(full[:2], store=ResultStore(store_dir)).run()

        # Resumed run over the full grid: recomputes only the missing
        # cells and reproduces the cold run byte for byte.
        resumed_store = ResultStore(store_dir)
        resumed = self._experiment(full, store=resumed_store).run(baseline=base)
        assert resumed_store.hits == 2 * len(self.BENCHMARKS)
        assert resumed_store.misses == 1 * len(self.BENCHMARKS)
        assert resumed.to_json() == cold.to_json()
        assert resumed.to_csv() == cold.to_csv()

    def test_store_key_uses_resolved_spec_content(self, tmp_path):
        # A named spec and its resolved explicit-options form describe the
        # same predictor and must share one store cell.
        trace = _easy_trace()
        named = PredictorSpec.from_named("tage-gsc", profile="small")
        resolved = named.resolve()
        store = ResultStore(tmp_path / "store")
        SuiteRunner([trace], profile="small", store=store).run_spec(named)
        reuse = ResultStore(tmp_path / "store")
        run = SuiteRunner([trace], profile="small", store=reuse).run_spec(resolved)
        assert reuse.hits == 1 and reuse.misses == 0
        assert run.results[0].predictor_name == resolved.label

    def test_reregistered_profile_invalidates_cells(self, tmp_path):
        import dataclasses

        trace = _easy_trace()
        registry = default_registry()
        small = registry.resolve_profile("small")
        registry.register_profile("store-prof", small, overwrite=True)
        try:
            spec = PredictorSpec.from_named("tage-gsc", profile="store-prof")
            SuiteRunner(
                [trace], profile="store-prof", store=ResultStore(tmp_path / "s")
            ).run_spec(spec)
            # Same profile *name*, different geometry: cells must miss.
            registry.register_profile(
                "store-prof",
                dataclasses.replace(small, sic_entries=64),
                overwrite=True,
            )
            reuse = ResultStore(tmp_path / "s")
            SuiteRunner(
                [trace], profile="store-prof", store=reuse
            ).run_spec(spec)
            assert reuse.hits == 0 and reuse.misses == 1
        finally:
            registry._profiles.pop("store-prof", None)
            registry._touch()

    def test_profile_content_is_stable(self):
        profile = default_registry().resolve_profile("small")
        assert profile_content(profile) == profile_content(profile)
        other = default_registry().resolve_profile("default")
        assert profile_content(profile) != profile_content(other)

    def test_spec_content_hash_is_label_independent(self):
        plain = PredictorSpec.from_named("tage-gsc", profile="small")
        named = PredictorSpec.from_named("tage-gsc", profile="small", label="mine")
        assert plain.content_hash() == named.content_hash()
        assert plain.content() == named.content()
        other = PredictorSpec.from_named("gehl", profile="small")
        assert plain.content_hash() != other.content_hash()

    def test_simulate_equivalence_of_stored_results(self, tmp_path):
        # The stored record reproduces simulate() exactly, per-PC included.
        trace = _easy_trace()
        spec = PredictorSpec.from_named("tage-gsc", profile="small")
        store = ResultStore(tmp_path / "store")
        runner = SuiteRunner([trace], profile="small", store=store)
        stored = runner.run_spec(spec, track_per_pc=True).results[0]
        direct = simulate(spec.build(), trace, track_per_pc=True)
        assert stored == direct
        reuse_runner = SuiteRunner(
            [trace], profile="small", store=ResultStore(tmp_path / "store")
        )
        reloaded = reuse_runner.run_spec(spec, track_per_pc=True).results[0]
        assert reloaded == direct


class TestStoreCLI:
    def test_sweep_store_resume_and_gc(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        argv = [
            "sweep", "--base", "tage-gsc+oh", "--param", "oh_update_delay=7,63",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
            "--store", str(store_dir),
        ]
        json1, json2 = tmp_path / "r1.json", tmp_path / "r2.json"
        assert main(argv + ["--json", str(json1)]) == 0
        first = capsys.readouterr()
        assert "3 cell(s)" not in first.err  # nothing to reuse yet
        assert main(argv + ["--resume", "--json", str(json2)]) == 0
        second = capsys.readouterr()
        assert "3 cell(s) reused, 0 computed" in second.err
        assert json1.read_bytes() == json2.read_bytes()

        assert main(["store", "ls", "--store", str(store_dir)]) == 0
        listing = capsys.readouterr()
        assert "3 record(s)" in listing.err
        assert "tage-gsc+oh[oh_update_delay=63]" in listing.out

        export_path = tmp_path / "export.json"
        assert main([
            "store", "export", "--store", str(store_dir),
            "--output", str(export_path),
        ]) == 0
        capsys.readouterr()
        assert len(json.loads(export_path.read_text())) == 3

        assert main([
            "store", "gc", "--older-than", "1d", "--store", str(store_dir)
        ]) == 0
        assert "removed 0 record(s)" in capsys.readouterr().err
        assert main([
            "store", "gc", "--older-than", "0s", "--store", str(store_dir)
        ]) == 0
        assert "removed 3 record(s)" in capsys.readouterr().err
        assert len(ResultStore(store_dir)) == 0

    def test_resume_without_store_is_an_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert main([
            "sweep", "--base", "tage-gsc", "--resume",
            "--benchmarks", "SPEC2K6-00", "--length", "300",
        ]) == 2
        assert "--resume needs a result store" in capsys.readouterr().err

    def test_store_commands_without_store_are_an_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert main(["store", "ls"]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_gc_rejects_bad_duration(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "store", "gc", "--older-than", "soon", "--store", str(tmp_path)
        ]) == 2
        assert "invalid duration" in capsys.readouterr().err

    def test_store_honours_environment_variable(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        store_dir = tmp_path / "env-store"
        monkeypatch.setenv("REPRO_RESULT_STORE", str(store_dir))
        argv = [
            "simulate", "--configurations", "tage-gsc",
            "--benchmarks", "SPEC2K6-00", "--length", "300", "--profile", "small",
        ]
        assert main(argv) == 0
        assert "1 computed" in capsys.readouterr().err
        assert main(argv) == 0
        assert "1 cell(s) reused" in capsys.readouterr().err


class TestDurationParsing:
    @pytest.mark.parametrize(
        ("raw", "seconds"),
        [("90", 90.0), ("90s", 90.0), ("45m", 2700.0), ("12h", 43200.0),
         ("30d", 2592000.0), ("2w", 1209600.0), ("1.5h", 5400.0)],
    )
    def test_valid(self, raw, seconds):
        from repro.cli import _parse_duration

        assert _parse_duration(raw) == seconds

    @pytest.mark.parametrize("raw", ["", "soon", "-5s", "h", "5y"])
    def test_invalid(self, raw):
        from repro.cli import _parse_duration

        with pytest.raises(ValueError):
            _parse_duration(raw)
