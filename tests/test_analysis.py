"""Tests for the reporting helpers (tables, figures) and the experiment registry."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    run_experiment,
)
from repro.analysis.figures import format_bar_chart, format_grouped_bar_chart
from repro.analysis.tables import format_key_values, format_mpki_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "mpki"], [["a", 1.2345], ["bench-b", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.234" in text or "1.235" in text
        assert "bench-b" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_mpki_table_layout(self):
        text = format_mpki_table(
            ["base", "base+i"],
            {"cbp4like": {"base": 2.5, "base+i": 2.3}},
            storage_kbits={"base": 228.0, "base+i": 234.0},
            title="Table 1",
        )
        assert "Table 1" in text
        assert "size (Kbits)" in text
        assert "cbp4like" in text
        assert "2.300" in text

    def test_key_values(self):
        text = format_key_values({"alpha": 1.0, "beta": "x"}, title="Facts")
        assert "Facts" in text
        assert "alpha" in text and "beta" in text

    def test_key_values_empty(self):
        assert format_key_values({}, title="Empty") == "Empty"


class TestFigures:
    def test_bar_chart_renders_bars(self):
        text = format_bar_chart({"a": 1.0, "b": -0.5}, title="Fig", value_label="delta")
        assert "Fig" in text
        assert "#" in text
        assert "-" in text

    def test_bar_chart_limit_and_sort(self):
        values = {f"b{i}": float(i) for i in range(10)}
        text = format_bar_chart(values, sort_descending=True, limit=3)
        assert "b9" in text and "b0" not in text

    def test_bar_chart_empty(self):
        assert format_bar_chart({}, title="Nothing") == "Nothing"

    def test_grouped_bar_chart(self):
        groups = {
            "bench1": {"imli-sic": 0.5, "imli-sic+oh": 0.7},
            "bench2": {"imli-sic": 0.1, "imli-sic+oh": 0.05},
        }
        text = format_grouped_bar_chart(groups, series_order=["imli-sic", "imli-sic+oh"], title="G")
        assert "bench1" in text and "bench2" in text
        assert "imli-sic+oh" in text

    def test_grouped_bar_chart_limit(self):
        groups = {f"bench{i}": {"x": float(i)} for i in range(6)}
        text = format_grouped_bar_chart(groups, series_order=["x"], limit=2)
        assert "bench5" in text and "bench0" not in text


class TestExperimentRegistry:
    EXPECTED_IDS = {
        "base-predictors", "wormhole", "imli-sic",
        "fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "fig15",
        "table1", "table2", "delayed-update", "record", "storage-speculation",
    }

    def test_every_paper_table_and_figure_is_registered(self):
        assert self.EXPECTED_IDS == set(experiment_ids())

    def test_every_experiment_has_a_callable(self):
        for experiment_id, function in EXPERIMENTS.items():
            assert callable(function), experiment_id

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", {})

    def test_experiment_result_report_includes_paper_values(self):
        result = ExperimentResult(
            experiment_id="x", title="Demo", text="body",
            paper={"reference": 1.23},
        )
        report = result.report()
        assert "[x] Demo" in report
        assert "Paper reference values" in report
        assert "body" in report


class TestExperimentsOnTinySuites:
    """Run a representative subset of experiments end to end on tiny traces."""

    @pytest.fixture(scope="class")
    def runners(self):
        from repro.sim.runner import SuiteRunner
        from repro.workloads.suites import generate_suite

        subset4 = ["SPEC2K6-04", "SPEC2K6-12", "MM-4", "SPEC2K6-00"]
        subset3 = ["CLIENT02", "WS04", "MM07", "INT01"]
        traces4 = generate_suite("cbp4like", target_conditional_branches=1200, benchmarks=subset4)
        traces3 = generate_suite("cbp3like", target_conditional_branches=1200, benchmarks=subset3)
        return {
            "cbp4like": SuiteRunner(traces4, profile="small"),
            "cbp3like": SuiteRunner(traces3, profile="small"),
        }

    def test_base_predictor_experiment(self, runners):
        result = run_experiment("base-predictors", runners)
        assert result.experiment_id == "base-predictors"
        assert "tage-gsc" in result.text
        assert "gehl" in result.text
        averages = result.measured["average_mpki"]
        assert set(averages) == {"cbp4like", "cbp3like"}
        assert all(value > 0 for value in averages["cbp4like"].values())

    def test_table1_experiment(self, runners):
        result = run_experiment("table1", runners)
        averages = result.measured["average_mpki"]["cbp4like"]
        assert set(averages) == {"tage-gsc", "tage-gsc+l", "tage-gsc+imli", "tage-gsc+imli+l"}
        # The shape of Table 1: every augmented configuration beats the base.
        assert averages["tage-gsc+imli"] < averages["tage-gsc"]
        assert averages["tage-gsc+imli+l"] < averages["tage-gsc"]
        assert "size (Kbits)" in result.text

    def test_fig9_experiment(self, runners):
        result = run_experiment("fig9", runners)
        grouped = result.measured["per_benchmark_reduction"]
        assert "SPEC2K6-04" in grouped
        assert set(grouped["SPEC2K6-04"]) == {"imli-sic", "imli-sic+oh"}

    def test_storage_experiment_needs_no_simulation(self, runners):
        result = run_experiment("storage-speculation", runners)
        assert result.measured["imli_cost_bits"]["total"] > 0
        assert "checkpoint" in result.text.lower()
