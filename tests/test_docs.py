"""Documentation sanity: internal doc links must resolve.

Runs the same checker CI runs (``tools/check_doc_links.py``), so a
renamed file with a dangling ``docs/*.md`` reference fails tier-1
locally, not just the lint job.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_internal_doc_links_resolve():
    checker = _checker()
    assert checker.check() == []


def test_checker_sees_the_real_docs():
    checker = _checker()
    documents = {path.name for path in checker._documents()}
    assert "README.md" in documents
    assert {"API.md", "ENGINE.md", "PERFORMANCE.md", "DISTRIBUTED.md"} <= documents


def test_checker_detects_breakage(tmp_path, monkeypatch):
    checker = _checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/REAL.md) and [broken](docs/GONE.md) and `docs/GONE.md`\n"
    )
    (docs / "REAL.md").write_text("see [nothing](#anchor) and https://example.com\n")
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    broken = checker.check()
    assert [(str(doc), target) for doc, _, target in broken] == [
        ("README.md", "docs/GONE.md"),
        ("README.md", "docs/GONE.md"),
    ]


def test_main_exit_status():
    checker = _checker()
    assert checker.main() == 0
